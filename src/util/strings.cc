#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace pdgf {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(s.substr(start));
      break;
    }
    pieces.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) pieces.emplace_back(s.substr(start, i - start));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string StrPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Repeat(std::string_view piece, size_t count) {
  std::string out;
  out.reserve(piece.size() * count);
  for (size_t i = 0; i < count; ++i) out.append(piece);
  return out;
}

}  // namespace pdgf
