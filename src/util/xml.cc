#include "util/xml.h"

#include <cctype>

namespace pdgf {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

// Streaming parser with position/line tracking.
class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : input_(input) {}

  StatusOr<XmlDocument> Parse() {
    SkipMisc();
    if (pos_ >= input_.size() || input_[pos_] != '<') {
      return Error("expected root element");
    }
    PDGF_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root, ParseElement());
    SkipMisc();
    if (pos_ != input_.size()) {
      return Error("content after root element");
    }
    return XmlDocument(std::move(root));
  }

 private:
  Status Error(const std::string& message) const {
    return ParseError("XML line " + std::to_string(line_) + ": " + message);
  }

  void Advance() {
    if (pos_ < input_.size() && input_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      Advance();
    }
  }

  // Skips whitespace, comments, the XML declaration and DOCTYPE-ish
  // constructs between top-level items.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (pos_ + 3 < input_.size() && input_.substr(pos_, 4) == "<!--") {
        SkipComment();
        continue;
      }
      if (pos_ + 1 < input_.size() && input_.substr(pos_, 2) == "<?") {
        while (pos_ < input_.size() &&
               !(input_[pos_] == '?' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '>')) {
          Advance();
        }
        Advance();
        Advance();
        continue;
      }
      if (pos_ + 1 < input_.size() && input_.substr(pos_, 2) == "<!") {
        while (pos_ < input_.size() && input_[pos_] != '>') Advance();
        Advance();
        continue;
      }
      return;
    }
  }

  void SkipComment() {
    pos_ += 4;  // "<!--"
    while (pos_ + 2 < input_.size() && input_.substr(pos_, 3) != "-->") {
      Advance();
    }
    pos_ += 3;
  }

  StatusOr<std::string> ParseName() {
    if (pos_ >= input_.size() || !IsNameStartChar(input_[pos_])) {
      return Error("expected name");
    }
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (!entity.empty() && entity[0] == '#') {
        long code = 0;
        if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
          code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
        }
        if (code <= 0 || code > 0x10FFFF) return Error("bad character reference");
        // Encode as UTF-8.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (code >> 18)));
          out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Error("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi;
    }
    return out;
  }

  StatusOr<std::unique_ptr<XmlElement>> ParseElement() {
    // At '<'.
    Advance();
    PDGF_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto element = std::make_unique<XmlElement>(name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) return Error("unterminated start tag");
      if (input_[pos_] == '/') {
        Advance();
        if (pos_ >= input_.size() || input_[pos_] != '>') {
          return Error("expected '>' after '/'");
        }
        Advance();
        return element;
      }
      if (input_[pos_] == '>') {
        Advance();
        break;
      }
      PDGF_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (pos_ >= input_.size() || input_[pos_] != '=') {
        return Error("expected '=' after attribute name '" + attr_name + "'");
      }
      Advance();
      SkipWhitespace();
      if (pos_ >= input_.size() ||
          (input_[pos_] != '"' && input_[pos_] != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = input_[pos_];
      Advance();
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != quote) Advance();
      if (pos_ >= input_.size()) return Error("unterminated attribute value");
      PDGF_ASSIGN_OR_RETURN(
          std::string value,
          DecodeEntities(input_.substr(start, pos_ - start)));
      Advance();  // closing quote
      element->SetAttribute(std::move(attr_name), std::move(value));
    }
    // Content.
    while (true) {
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != '<') Advance();
      if (pos_ > start) {
        PDGF_ASSIGN_OR_RETURN(
            std::string text,
            DecodeEntities(input_.substr(start, pos_ - start)));
        element->AppendText(text);
      }
      if (pos_ >= input_.size()) {
        return Error("unterminated element <" + name + ">");
      }
      if (pos_ + 3 < input_.size() && input_.substr(pos_, 4) == "<!--") {
        SkipComment();
        continue;
      }
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
        // End tag.
        pos_ += 2;
        PDGF_ASSIGN_OR_RETURN(std::string end_name, ParseName());
        if (end_name != name) {
          return Error("mismatched end tag </" + end_name + "> for <" + name +
                       ">");
        }
        SkipWhitespace();
        if (pos_ >= input_.size() || input_[pos_] != '>') {
          return Error("expected '>' in end tag");
        }
        Advance();
        return element;
      }
      PDGF_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child, ParseElement());
      element->AdoptChild(std::move(child));
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

const std::string* XmlElement::FindAttribute(std::string_view name) const {
  for (const auto& [attr_name, attr_value] : attributes_) {
    if (attr_name == name) return &attr_value;
  }
  return nullptr;
}

std::string XmlElement::AttributeOr(std::string_view name,
                                    std::string_view default_value) const {
  const std::string* value = FindAttribute(name);
  return value != nullptr ? *value : std::string(default_value);
}

void XmlElement::SetAttribute(std::string name, std::string value) {
  for (auto& [attr_name, attr_value] : attributes_) {
    if (attr_name == name) {
      attr_value = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(name), std::move(value));
}

XmlElement* XmlElement::AddChild(std::string name) {
  children_.push_back(std::make_unique<XmlElement>(std::move(name)));
  return children_.back().get();
}

const XmlElement* XmlElement::FindChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

XmlElement* XmlElement::FindChild(std::string_view name) {
  for (auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::FindChildren(
    std::string_view name) const {
  std::vector<const XmlElement*> result;
  for (const auto& child : children_) {
    if (child->name() == name) result.push_back(child.get());
  }
  return result;
}

std::string XmlElement::ChildTextOr(std::string_view name,
                                    std::string_view default_value) const {
  const XmlElement* child = FindChild(name);
  return child != nullptr ? child->text() : std::string(default_value);
}

void XmlEscape(std::string_view in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '&':
        out->append("&amp;");
        break;
      case '"':
        out->append("&quot;");
        break;
      case '\'':
        out->append("&apos;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void XmlElement::Serialize(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->push_back('<');
  out->append(name_);
  for (const auto& [attr_name, attr_value] : attributes_) {
    out->push_back(' ');
    out->append(attr_name);
    out->append("=\"");
    XmlEscape(attr_value, out);
    out->push_back('"');
  }
  std::string_view trimmed_text = text_;
  // Trim pure-formatting whitespace around text for pretty output.
  while (!trimmed_text.empty() &&
         std::isspace(static_cast<unsigned char>(trimmed_text.front()))) {
    trimmed_text.remove_prefix(1);
  }
  while (!trimmed_text.empty() &&
         std::isspace(static_cast<unsigned char>(trimmed_text.back()))) {
    trimmed_text.remove_suffix(1);
  }
  if (children_.empty() && trimmed_text.empty()) {
    out->append("/>\n");
    return;
  }
  out->push_back('>');
  if (children_.empty()) {
    XmlEscape(trimmed_text, out);
    out->append("</");
    out->append(name_);
    out->append(">\n");
    return;
  }
  out->push_back('\n');
  if (!trimmed_text.empty()) {
    out->append(static_cast<size_t>(indent + 1) * 2, ' ');
    XmlEscape(trimmed_text, out);
    out->push_back('\n');
  }
  for (const auto& child : children_) {
    child->Serialize(out, indent + 1);
  }
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append("</");
  out->append(name_);
  out->append(">\n");
}

StatusOr<XmlDocument> XmlDocument::Parse(std::string_view input) {
  XmlParser parser(input);
  return parser.Parse();
}

std::string XmlDocument::Serialize() const {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  if (root_ != nullptr) {
    root_->Serialize(&out, 0);
  }
  return out;
}

}  // namespace pdgf
