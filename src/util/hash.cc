#include "util/hash.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/rng.h"
#include "util/strings.h"

namespace pdgf {
namespace {

// Salts decorrelating the independent hash lanes.
constexpr uint64_t kRowIndexSalt = 0x2545f4914f6cdd1dULL;
constexpr uint64_t kColumnSalt = 0xa0761d6478bd642fULL;
constexpr uint64_t kLengthSalt = 0xe7037ed1a0b428dbULL;

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Word-wise string hash for the column-checksum lane. Value::Hash()
// (FNV-1a) walks strings a byte at a time, which is the dominant cost
// when digesting text-heavy rows in the engine hot path; this absorbs
// 8 bytes per multiply instead and mixes the length up front so
// zero-padding of the tail word cannot collide with real NUL bytes.
uint64_t HashStringWordwise(std::string_view data) {
  uint64_t h = Mix64(data.size() + kLengthSalt);
  size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, data.data() + i, 8);
    h = Mix64(h ^ word);
  }
  if (i < data.size()) {
    uint64_t tail = 0;
    std::memcpy(&tail, data.data() + i, data.size() - i);
    h = Mix64(h ^ tail);
  }
  return h;
}

// Per-value hash feeding the column checksums. Strings take the fast
// word-wise path; everything else is a single Mix64 via Value::Hash().
uint64_t HashValueForDigest(const Value& value) {
  if (value.kind() == Value::Kind::kString) {
    return HashStringWordwise(value.string_value());
  }
  return value.Hash();
}

// Seeded 128-bit hash of one formatted row for the order-insensitive
// accumulators. Unlike ByteStreamHash (two lanes, chunking-invariant —
// needed for incremental sink streams) this sees the whole row at once,
// so a single Mix64 chain suffices and the second half is derived from
// the final state: half the multiplies per byte, which keeps the
// enabled-digest overhead within the <=10% budget on text-heavy rows.
Digest128 HashRowBytes(std::string_view data, uint64_t seed) {
  uint64_t h = Mix64(seed ^ Mix64(data.size() + kLengthSalt));
  size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, data.data() + i, 8);
    h = Mix64(h ^ word);
  }
  if (i < data.size()) {
    uint64_t tail = 0;
    std::memcpy(&tail, data.data() + i, data.size() - i);
    h = Mix64(h ^ tail);
  }
  Digest128 digest;
  digest.lo = h;
  digest.hi = Mix64(h + 0x9e3779b97f4a7c15ULL);
  return digest;
}

}  // namespace

std::string Digest128::Hex() const {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  uint64_t halves[2] = {hi, lo};
  size_t pos = 0;
  for (uint64_t half : halves) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out[pos++] = kDigits[(half >> shift) & 0xf];
    }
  }
  return out;
}

StatusOr<Digest128> Digest128::FromHex(std::string_view hex) {
  if (hex.size() != 32) {
    return InvalidArgumentError("digest hex must be 32 characters, got '" +
                                std::string(hex) + "'");
  }
  Digest128 digest;
  uint64_t halves[2] = {0, 0};
  for (size_t i = 0; i < 32; ++i) {
    int nibble = HexNibble(hex[i]);
    if (nibble < 0) {
      return InvalidArgumentError("invalid digest hex character in '" +
                                  std::string(hex) + "'");
    }
    halves[i / 16] = (halves[i / 16] << 4) | static_cast<uint64_t>(nibble);
  }
  digest.hi = halves[0];
  digest.lo = halves[1];
  return digest;
}

void ByteStreamHash::AbsorbWord(uint64_t word) {
  h1_ = Mix64(h1_ ^ word);
  h2_ = Mix64(h2_ + word + 0x9e3779b97f4a7c15ULL);
}

void ByteStreamHash::Update(std::string_view data) {
  size_t i = 0;
  size_t tail = static_cast<size_t>(length_ % 8);
  length_ += data.size();
  // Fill the pending partial word first.
  if (tail != 0) {
    while (tail < 8 && i < data.size()) {
      pending_ |= static_cast<uint64_t>(
                      static_cast<unsigned char>(data[i++]))
                  << (8 * tail);
      ++tail;
    }
    if (tail < 8) return;  // still partial
    AbsorbWord(pending_);
    pending_ = 0;
  }
  // Whole words.
  for (; i + 8 <= data.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, data.data() + i, 8);
    AbsorbWord(word);
  }
  // New tail.
  uint64_t shift = 0;
  for (; i < data.size(); ++i, shift += 8) {
    pending_ |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
                << shift;
  }
}

Digest128 ByteStreamHash::Finish() const {
  uint64_t h1 = h1_;
  uint64_t h2 = h2_;
  if (length_ % 8 != 0) {
    // Fold the partial word; its zero-padding is disambiguated from real
    // zero bytes by the length term below.
    h1 = Mix64(h1 ^ pending_);
    h2 = Mix64(h2 + pending_ + 0x9e3779b97f4a7c15ULL);
  }
  Digest128 digest;
  digest.lo = Mix64(h1 ^ Mix64(length_ ^ kLengthSalt));
  digest.hi = Mix64(h2 ^ Mix64(length_ + kLengthSalt));
  return digest;
}

Digest128 Hash128Bytes(std::string_view data, uint64_t seed) {
  ByteStreamHash hash;
  if (seed != 0) {
    char seed_bytes[8];
    std::memcpy(seed_bytes, &seed, 8);
    hash.Update(std::string_view(seed_bytes, 8));
  }
  hash.Update(data);
  return hash.Finish();
}

void TableDigest::AddRowBytes(uint64_t row_index,
                              std::string_view row_bytes) {
  // The row hash covers the formatted bytes, seeded with the global row
  // index so a row generated at the wrong coordinate changes the digest
  // even if its bytes happen to match another row's.
  Digest128 row_hash =
      HashRowBytes(row_bytes, Mix64(row_index + kRowIndexSalt));
  sum_lo_ += row_hash.lo;
  sum_hi_ += row_hash.hi;
  xor_lo_ ^= row_hash.lo;
  xor_hi_ ^= row_hash.hi;
  ++rows_;
  bytes_ += row_bytes.size();
}

void TableDigest::AddColumnValue(size_t column, const Value& value) {
  if (column_sums_.size() <= column) {
    column_sums_.resize(column + 1, 0);
  }
  column_sums_[column] += Mix64(HashValueForDigest(value) ^ kColumnSalt);
}

void TableDigest::AddRow(uint64_t row_index, std::string_view row_bytes,
                         const std::vector<Value>& values) {
  AddRowBytes(row_index, row_bytes);
  if (column_sums_.size() < values.size()) {
    column_sums_.resize(values.size(), 0);
  }
  for (size_t c = 0; c < values.size(); ++c) {
    column_sums_[c] += Mix64(HashValueForDigest(values[c]) ^ kColumnSalt);
  }
}

void TableDigest::Merge(const TableDigest& other) {
  rows_ += other.rows_;
  bytes_ += other.bytes_;
  sum_lo_ += other.sum_lo_;
  sum_hi_ += other.sum_hi_;
  xor_lo_ ^= other.xor_lo_;
  xor_hi_ ^= other.xor_hi_;
  if (column_sums_.size() < other.column_sums_.size()) {
    column_sums_.resize(other.column_sums_.size(), 0);
  }
  for (size_t c = 0; c < other.column_sums_.size(); ++c) {
    column_sums_[c] += other.column_sums_[c];
  }
}

Digest128 TableDigest::Value128() const {
  // Deterministic sequential fold of every accumulator.
  ByteStreamHash hash;
  uint64_t fields[] = {rows_, bytes_, sum_lo_, sum_hi_, xor_lo_, xor_hi_};
  char bytes[8];
  for (uint64_t field : fields) {
    std::memcpy(bytes, &field, 8);
    hash.Update(std::string_view(bytes, 8));
  }
  for (uint64_t column_sum : column_sums_) {
    std::memcpy(bytes, &column_sum, 8);
    hash.Update(std::string_view(bytes, 8));
  }
  return hash.Finish();
}

bool TableDigest::operator==(const TableDigest& other) const {
  if (rows_ != other.rows_ || bytes_ != other.bytes_ ||
      sum_lo_ != other.sum_lo_ || sum_hi_ != other.sum_hi_ ||
      xor_lo_ != other.xor_lo_ || xor_hi_ != other.xor_hi_) {
    return false;
  }
  // Column vectors may differ in length when one side saw no rows for the
  // trailing columns; missing entries count as zero.
  size_t columns = std::max(column_sums_.size(), other.column_sums_.size());
  for (size_t c = 0; c < columns; ++c) {
    uint64_t mine = c < column_sums_.size() ? column_sums_[c] : 0;
    uint64_t theirs =
        c < other.column_sums_.size() ? other.column_sums_[c] : 0;
    if (mine != theirs) return false;
  }
  return true;
}

namespace {

std::string Hex64(uint64_t value) {
  static const char kDigits[] = "0123456789abcdef";
  // Shortest lower-case hex rendering (no leading zeros; "0" for zero).
  char buffer[16];
  size_t length = 0;
  do {
    buffer[length++] = kDigits[value & 0xf];
    value >>= 4;
  } while (value != 0);
  std::string out(length, '0');
  for (size_t i = 0; i < length; ++i) out[i] = buffer[length - 1 - i];
  return out;
}

StatusOr<uint64_t> ParseHex64(std::string_view text) {
  if (text.empty() || text.size() > 16) {
    return ParseError("bad hex field in digest state: '" +
                      std::string(text) + "'");
  }
  uint64_t value = 0;
  for (char c : text) {
    int nibble = HexNibble(c);
    if (nibble < 0) {
      return ParseError("bad hex field in digest state: '" +
                        std::string(text) + "'");
    }
    value = (value << 4) | static_cast<uint64_t>(nibble);
  }
  return value;
}

}  // namespace

std::string TableDigest::SerializeState() const {
  std::string out = "1:";
  out += Hex64(rows_) + ":" + Hex64(bytes_) + ":";
  out += Hex64(sum_lo_) + ":" + Hex64(sum_hi_) + ":";
  out += Hex64(xor_lo_) + ":" + Hex64(xor_hi_) + ":";
  for (size_t c = 0; c < column_sums_.size(); ++c) {
    if (c > 0) out += ",";
    out += Hex64(column_sums_[c]);
  }
  return out;
}

StatusOr<TableDigest> TableDigest::DeserializeState(std::string_view text) {
  std::vector<std::string> fields = Split(text, ':');
  if (fields.size() != 8 || fields[0] != "1") {
    return ParseError("bad digest state (want 8 ':' fields, version 1): '" +
                      std::string(text) + "'");
  }
  TableDigest digest;
  PDGF_ASSIGN_OR_RETURN(digest.rows_, ParseHex64(fields[1]));
  PDGF_ASSIGN_OR_RETURN(digest.bytes_, ParseHex64(fields[2]));
  PDGF_ASSIGN_OR_RETURN(digest.sum_lo_, ParseHex64(fields[3]));
  PDGF_ASSIGN_OR_RETURN(digest.sum_hi_, ParseHex64(fields[4]));
  PDGF_ASSIGN_OR_RETURN(digest.xor_lo_, ParseHex64(fields[5]));
  PDGF_ASSIGN_OR_RETURN(digest.xor_hi_, ParseHex64(fields[6]));
  if (!fields[7].empty()) {
    for (const std::string& column : Split(fields[7], ',')) {
      PDGF_ASSIGN_OR_RETURN(uint64_t sum, ParseHex64(column));
      digest.column_sums_.push_back(sum);
    }
  }
  return digest;
}

std::string FormatDigestFixture(const std::vector<TableDigestEntry>& entries,
                                const std::string& header_comment) {
  std::string out;
  if (!header_comment.empty()) {
    for (const std::string& line : Split(header_comment, '\n')) {
      out += "# " + line + "\n";
    }
  }
  for (const TableDigestEntry& entry : entries) {
    out += StrPrintf("%s\t%llu\t%llu\t%s\n", entry.table.c_str(),
                     static_cast<unsigned long long>(entry.rows),
                     static_cast<unsigned long long>(entry.bytes),
                     entry.hex.c_str());
  }
  return out;
}

StatusOr<std::vector<TableDigestEntry>> ParseDigestFixture(
    std::string_view contents) {
  std::vector<TableDigestEntry> entries;
  for (const std::string& line : Split(contents, '\n')) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string> pieces = SplitWhitespace(stripped);
    if (pieces.size() != 4) {
      return ParseError("bad digest fixture line: '" + line + "'");
    }
    TableDigestEntry entry;
    entry.table = pieces[0];
    char* end = nullptr;
    entry.rows = std::strtoull(pieces[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return ParseError("bad row count in digest fixture line: '" + line +
                        "'");
    }
    entry.bytes = std::strtoull(pieces[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return ParseError("bad byte count in digest fixture line: '" + line +
                        "'");
    }
    // Validate the hex eagerly so a corrupted fixture fails loudly.
    PDGF_ASSIGN_OR_RETURN(Digest128 parsed, Digest128::FromHex(pieces[3]));
    (void)parsed;
    entry.hex = pieces[3];
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace pdgf
