#ifndef DBSYNTHPP_UTIL_SIMD_RNG_H_
#define DBSYNTHPP_UTIL_SIMD_RNG_H_

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace pdgf {
namespace simd {

// Batched twins of the scalar seed/draw primitives in util/rng.h,
// evaluated 4 lanes wide under AVX2 (2 under NEON) and dispatched on
// ActiveSimdLevel(). Each kernel is bit-identical to the scalar loop it
// replaces — same constants, same zero-state remap, no FMA contraction —
// so the batch pipeline's digests and wire bytes never depend on the
// dispatch level. Parity is enforced against util/rng.h directly in
// tests/core/simd_test.cc.
//
// The generator hot path composes them per column stripe:
//   DeriveSeedBatch   row index -> field seed   (BatchContext::FillSeeds)
//   FirstDrawBatch    field seed -> first xorshift64* output
//   BoundedFromDraws  draw -> Lemire-mapped [0, bound)
//   UnitDoubleFromDraws  draw -> uniform double in [0, 1)

// out[i] = DeriveSeed(parent, keys[i]).
void DeriveSeedBatch(uint64_t parent, const uint64_t* keys, size_t n,
                     uint64_t* out);

// draws[i] = Xorshift64(seeds[i]).Next() — reseed (with the zero-state
// remap) plus one xorshift64* step.
void FirstDrawBatch(const uint64_t* seeds, size_t n, uint64_t* draws);

// The first two draws of Xorshift64(seeds[i]) (e.g. the histogram
// generator's bucket pick + intra-bucket point).
void DrawPairBatch(const uint64_t* seeds, size_t n, uint64_t* draws1,
                   uint64_t* draws2);

// out[i] = high 64 bits of draws[i] * bound — the Lemire multiply-shift
// map behind Xorshift64::NextBounded. Requires bound > 0 (callers hoist
// the bound==0 / empty-range degenerate cases, which consume no draw).
void BoundedFromDraws(const uint64_t* draws, uint64_t bound, size_t n,
                      uint64_t* out);

// out[i] = (double)(draws[i] >> 11) * 0x1.0p-53, exactly as
// Xorshift64::NextDouble computes it (the conversion is exact: the
// operand is < 2^53).
void UnitDoubleFromDraws(const uint64_t* draws, size_t n, double* out);

namespace internal {
#if defined(__x86_64__) || defined(_M_X64)
void DeriveSeedBatchAvx2(uint64_t parent, const uint64_t* keys, size_t n,
                         uint64_t* out);
void FirstDrawBatchAvx2(const uint64_t* seeds, size_t n, uint64_t* draws);
void DrawPairBatchAvx2(const uint64_t* seeds, size_t n, uint64_t* draws1,
                       uint64_t* draws2);
void BoundedFromDrawsAvx2(const uint64_t* draws, uint64_t bound, size_t n,
                          uint64_t* out);
void UnitDoubleFromDrawsAvx2(const uint64_t* draws, size_t n, double* out);
#endif
}  // namespace internal

}  // namespace simd
}  // namespace pdgf

#endif  // DBSYNTHPP_UTIL_SIMD_RNG_H_
