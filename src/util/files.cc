#include "util/files.h"

#include <errno.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace pdgf {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  FILE* file = fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return IoError("cannot open '" + path + "': " + strerror(errno));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t read_bytes;
  while ((read_bytes = fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read_bytes);
  }
  bool failed = ferror(file) != 0;
  fclose(file);
  if (failed) {
    return IoError("read error on '" + path + "'");
  }
  return contents;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  FILE* file = fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return IoError("cannot create '" + path + "': " + strerror(errno));
  }
  size_t written = fwrite(contents.data(), 1, contents.size(), file);
  bool ok = written == contents.size() && fclose(file) == 0;
  if (!ok) {
    return IoError("write error on '" + path + "'");
  }
  return Status::Ok();
}

Status MakeDirectories(const std::string& path) {
  if (path.empty()) return InvalidArgumentError("empty path");
  std::string partial;
  partial.reserve(path.size());
  size_t i = 0;
  if (path[0] == '/') {
    partial.push_back('/');
    i = 1;
  }
  while (i <= path.size()) {
    if (i == path.size() || path[i] == '/') {
      if (!partial.empty() && partial != "/") {
        if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
          return IoError("mkdir '" + partial + "': " + strerror(errno));
        }
      }
      if (i < path.size()) partial.push_back('/');
    } else {
      partial.push_back(path[i]);
    }
    ++i;
  }
  return Status::Ok();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

StatusOr<int64_t> FileSize(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    return IoError("stat '" + path + "': " + strerror(errno));
  }
  return static_cast<int64_t>(st.st_size);
}

Status RemoveFile(const std::string& path) {
  if (unlink(path.c_str()) != 0 && errno != ENOENT) {
    return IoError("unlink '" + path + "': " + strerror(errno));
  }
  return Status::Ok();
}

std::string JoinPath(std::string_view a, std::string_view b) {
  if (a.empty()) return std::string(b);
  if (b.empty()) return std::string(a);
  std::string out(a);
  if (out.back() == '/') out.pop_back();
  out.push_back('/');
  if (b.front() == '/') b.remove_prefix(1);
  out.append(b);
  return out;
}

StatusOr<std::string> MakeTempDir(const std::string& prefix) {
  const char* base = getenv("TMPDIR");
  std::string tmpl = JoinPath(base != nullptr ? base : "/tmp",
                              prefix + "XXXXXX");
  std::string buffer = tmpl;
  if (mkdtemp(buffer.data()) == nullptr) {
    return IoError("mkdtemp '" + tmpl + "': " + strerror(errno));
  }
  return buffer;
}

}  // namespace pdgf
