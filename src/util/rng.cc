#include "util/rng.h"

#include <cmath>

namespace pdgf {

double Xorshift64::NextGaussian() {
  // Box-Muller transform; consumes exactly two uniform draws.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Xorshift64::NextExponential(double lambda) {
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  if (lambda <= 0.0) lambda = 1.0;
  return -std::log(u) / lambda;
}

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  if (theta_ < 0) theta_ = 0;
  // Rejection-inversion precomputation (Hörmann & Derflinger 1996).
  h_x1_ = Harmonic(1.5) - 1.0;
  h_n_ = Harmonic(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HarmonicInverse(Harmonic(2.5) - std::pow(2.0, -theta_));
}

double ZipfDistribution::Harmonic(double x) const {
  // H(x) = integral of t^-theta dt (antiderivative), the continuous
  // approximation used by rejection-inversion.
  if (theta_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfDistribution::HarmonicInverse(double y) const {
  if (theta_ == 1.0) return std::exp(y);
  return std::pow(1.0 + y * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfDistribution::Sample(Xorshift64* rng) const {
  if (n_ <= 1) return 0;
  while (true) {
    double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    double x = HarmonicInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= s_ ||
        u >= Harmonic(k + 0.5) - std::pow(k, -theta_)) {
      // Ranks are 1-based internally; expose 0-based indices.
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

}  // namespace pdgf
