#ifndef DBSYNTHPP_UTIL_STRINGS_H_
#define DBSYNTHPP_UTIL_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace pdgf {

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Lower/upper-case ASCII copies.
std::string AsciiLower(std::string_view s);
std::string AsciiUpper(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// True if `s` starts with / ends with / contains `piece` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

// Splits on a single character. Keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);
// Splits on any ASCII whitespace run. Drops empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

// printf-style formatting into a std::string.
std::string StrPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Repeats `piece` `count` times.
std::string Repeat(std::string_view piece, size_t count);

}  // namespace pdgf

#endif  // DBSYNTHPP_UTIL_STRINGS_H_
