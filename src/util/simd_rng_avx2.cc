// AVX2 seed/draw kernels: 4-lane twins of util/rng.h. Compiled with
// -mavx2 (src/CMakeLists.txt); reached only through the runtime dispatch
// in simd_rng.cc. Multiplies avoid any FMA/precision shortcuts — lane
// arithmetic is the exact 64-bit integer (and exact int->double) math of
// the scalar path, so outputs are bit-identical by construction.
#include "util/simd_rng.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "util/rng.h"

namespace pdgf {
namespace simd {
namespace internal {
namespace {

// 64x64 -> low 64 multiply per lane (AVX2 has only 32x32 lane products):
// a*b mod 2^64 = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
inline __m256i MulLo64(__m256i a, __m256i b) {
  __m256i a_hi = _mm256_srli_epi64(a, 32);
  __m256i b_hi = _mm256_srli_epi64(b, 32);
  __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                   _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                          _mm256_slli_epi64(cross, 32));
}

// 64x64 -> high 64 multiply per lane, from the four 32-bit partial
// products with explicit carry propagation.
inline __m256i MulHi64(__m256i a, __m256i b) {
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
  __m256i a_hi = _mm256_srli_epi64(a, 32);
  __m256i b_hi = _mm256_srli_epi64(b, 32);
  __m256i lolo = _mm256_mul_epu32(a, b);
  __m256i hilo = _mm256_mul_epu32(a_hi, b);
  __m256i lohi = _mm256_mul_epu32(a, b_hi);
  __m256i hihi = _mm256_mul_epu32(a_hi, b_hi);
  __m256i carry = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(lolo, 32),
                       _mm256_and_si256(hilo, mask32)),
      _mm256_and_si256(lohi, mask32));
  return _mm256_add_epi64(
      _mm256_add_epi64(hihi, _mm256_srli_epi64(carry, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(hilo, 32),
                       _mm256_srli_epi64(lohi, 32)));
}

// splitmix64 finalizer (Mix64), 4 lanes.
inline __m256i Mix64Avx2(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL));
  x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
              _mm256_set1_epi64x(0xbf58476d1ce4e5b9ULL));
  x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
              _mm256_set1_epi64x(0x94d049bb133111ebULL));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

// Xorshift64::Reseed: state = Mix64(seed), zero states remapped.
inline __m256i ReseedState(__m256i seeds) {
  __m256i state = Mix64Avx2(seeds);
  __m256i zero_mask = _mm256_cmpeq_epi64(state, _mm256_setzero_si256());
  return _mm256_blendv_epi8(
      state, _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL), zero_mask);
}

// One xorshift64* step: advances *state, returns the draw.
inline __m256i XorshiftStep(__m256i* state) {
  __m256i x = *state;
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 12));
  x = _mm256_xor_si256(x, _mm256_slli_epi64(x, 25));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  *state = x;
  return MulLo64(x, _mm256_set1_epi64x(0x2545f4914f6cdd1dULL));
}

inline __m256i LoadU64(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void StoreU64(uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

}  // namespace

void DeriveSeedBatchAvx2(uint64_t parent, const uint64_t* keys, size_t n,
                         uint64_t* out) {
  const __m256i parent_v = _mm256_set1_epi64x(parent);
  const __m256i child_salt = _mm256_set1_epi64x(0x632be59bd9b4e019ULL);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i child =
        Mix64Avx2(_mm256_add_epi64(LoadU64(keys + i), child_salt));
    StoreU64(out + i, Mix64Avx2(_mm256_xor_si256(parent_v, child)));
  }
  for (; i < n; ++i) out[i] = DeriveSeed(parent, keys[i]);
}

void FirstDrawBatchAvx2(const uint64_t* seeds, size_t n, uint64_t* draws) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i state = ReseedState(LoadU64(seeds + i));
    StoreU64(draws + i, XorshiftStep(&state));
  }
  for (; i < n; ++i) {
    Xorshift64 rng(seeds[i]);
    draws[i] = rng.Next();
  }
}

void DrawPairBatchAvx2(const uint64_t* seeds, size_t n, uint64_t* draws1,
                       uint64_t* draws2) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i state = ReseedState(LoadU64(seeds + i));
    StoreU64(draws1 + i, XorshiftStep(&state));
    StoreU64(draws2 + i, XorshiftStep(&state));
  }
  for (; i < n; ++i) {
    Xorshift64 rng(seeds[i]);
    draws1[i] = rng.Next();
    draws2[i] = rng.Next();
  }
}

void BoundedFromDrawsAvx2(const uint64_t* draws, uint64_t bound, size_t n,
                          uint64_t* out) {
  const __m256i bound_v = _mm256_set1_epi64x(bound);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    StoreU64(out + i, MulHi64(LoadU64(draws + i), bound_v));
  }
  for (; i < n; ++i) {
    unsigned __int128 product =
        static_cast<unsigned __int128>(draws[i]) * bound;
    out[i] = static_cast<uint64_t>(product >> 64);
  }
}

void UnitDoubleFromDrawsAvx2(const uint64_t* draws, size_t n, double* out) {
  // Exact uint64 -> double for v < 2^53 without AVX-512: split v into
  // hi*2^32 + lo, materialize (2^84 + hi*2^32) and (2^52 + lo) by bit
  // stuffing, and cancel the magic constants. Every step is exact, so
  // the result equals the scalar static_cast<double>(v).
  const __m256i magic_hi = _mm256_castpd_si256(_mm256_set1_pd(0x1.0p84));
  const __m256i magic_lo = _mm256_castpd_si256(_mm256_set1_pd(0x1.0p52));
  const __m256d magic_sum = _mm256_set1_pd(0x1.0p84 + 0x1.0p52);
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_srli_epi64(LoadU64(draws + i), 11);  // < 2^53
    __m256i v_hi = _mm256_or_si256(_mm256_srli_epi64(v, 32), magic_hi);
    __m256i v_lo = _mm256_blend_epi32(v, magic_lo, 0xAA);
    __m256d f = _mm256_sub_pd(_mm256_castsi256_pd(v_hi), magic_sum);
    __m256d value = _mm256_add_pd(f, _mm256_castsi256_pd(v_lo));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(value, scale));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<double>(draws[i] >> 11) * 0x1.0p-53;
  }
}

}  // namespace internal
}  // namespace simd
}  // namespace pdgf

#endif  // x86-64
