#ifndef DBSYNTHPP_UTIL_EXPRESSION_H_
#define DBSYNTHPP_UTIL_EXPRESSION_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace pdgf {

// Evaluates the arithmetic expressions used in PDGF models for property
// values and table sizes, e.g. "6000000 * ${SF}" (paper Listing 1).
//
// Grammar:
//   expr    := term  (('+' | '-') term)*
//   term    := unary (('*' | '/' | '%') unary)*
//   unary   := '-' unary | primary
//   primary := NUMBER | '${' NAME '}' | FUNC '(' expr (',' expr)* ')'
//            | '(' expr ')'
// Functions: ceil floor round abs sqrt log log10 exp pow min max.
//
// `resolver` maps a ${NAME} reference to its numeric value; it returns an
// error status for unknown names (which is propagated).
using VariableResolver =
    std::function<StatusOr<double>(std::string_view name)>;

// Evaluates `expression` to a double.
StatusOr<double> EvaluateExpression(std::string_view expression,
                                    const VariableResolver& resolver);

// Convenience for expressions without variables.
StatusOr<double> EvaluateExpression(std::string_view expression);

// Lists the ${NAME} references appearing in `expression`, in order of
// first appearance (used for dependency-ordering property evaluation).
std::vector<std::string> ExtractVariableReferences(
    std::string_view expression);

}  // namespace pdgf

#endif  // DBSYNTHPP_UTIL_EXPRESSION_H_
