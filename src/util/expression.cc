#include "util/expression.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <vector>

namespace pdgf {
namespace {

// Recursive-descent evaluator over the raw expression text.
class Parser {
 public:
  Parser(std::string_view text, const VariableResolver& resolver)
      : text_(text), resolver_(resolver) {}

  StatusOr<double> Run() {
    PDGF_ASSIGN_OR_RETURN(double value, ParseExpr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return ParseError("unexpected trailing input in expression: '" +
                        std::string(text_.substr(pos_)) + "'");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<double> ParseExpr() {
    PDGF_ASSIGN_OR_RETURN(double value, ParseTerm());
    while (true) {
      if (Consume('+')) {
        PDGF_ASSIGN_OR_RETURN(double rhs, ParseTerm());
        value += rhs;
      } else if (Consume('-')) {
        PDGF_ASSIGN_OR_RETURN(double rhs, ParseTerm());
        value -= rhs;
      } else {
        return value;
      }
    }
  }

  StatusOr<double> ParseTerm() {
    PDGF_ASSIGN_OR_RETURN(double value, ParseUnary());
    while (true) {
      if (Consume('*')) {
        PDGF_ASSIGN_OR_RETURN(double rhs, ParseUnary());
        value *= rhs;
      } else if (Consume('/')) {
        PDGF_ASSIGN_OR_RETURN(double rhs, ParseUnary());
        if (rhs == 0) return InvalidArgumentError("division by zero");
        value /= rhs;
      } else if (Consume('%')) {
        PDGF_ASSIGN_OR_RETURN(double rhs, ParseUnary());
        if (rhs == 0) return InvalidArgumentError("modulo by zero");
        value = std::fmod(value, rhs);
      } else {
        return value;
      }
    }
  }

  StatusOr<double> ParseUnary() {
    if (Consume('-')) {
      PDGF_ASSIGN_OR_RETURN(double value, ParseUnary());
      return -value;
    }
    return ParsePrimary();
  }

  StatusOr<double> ParsePrimary() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return ParseError("unexpected end of expression");
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      PDGF_ASSIGN_OR_RETURN(double value, ParseExpr());
      if (!Consume(')')) return ParseError("missing ')'");
      return value;
    }
    if (c == '$') {
      return ParseVariable();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return ParseNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ParseFunction();
    }
    return ParseError(std::string("unexpected character '") + c +
                      "' in expression");
  }

  StatusOr<double> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return ParseError("bad number: '" + token + "'");
    }
    return value;
  }

  StatusOr<double> ParseVariable() {
    // "${NAME}"
    if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '{') {
      return ParseError("expected '${' in variable reference");
    }
    size_t close = text_.find('}', pos_ + 2);
    if (close == std::string_view::npos) {
      return ParseError("unterminated variable reference");
    }
    std::string_view name = text_.substr(pos_ + 2, close - pos_ - 2);
    pos_ = close + 1;
    if (!resolver_) {
      return InvalidArgumentError("no resolver for variable '" +
                                  std::string(name) + "'");
    }
    return resolver_(name);
  }

  StatusOr<double> ParseFunction() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    if (!Consume('(')) {
      return ParseError("expected '(' after function name '" + name + "'");
    }
    std::vector<double> args;
    if (!Peek(')')) {
      while (true) {
        PDGF_ASSIGN_OR_RETURN(double arg, ParseExpr());
        args.push_back(arg);
        if (!Consume(',')) break;
      }
    }
    if (!Consume(')')) return ParseError("missing ')' in call to " + name);
    return Apply(name, args);
  }

  StatusOr<double> Apply(const std::string& name,
                         const std::vector<double>& args) {
    auto need = [&](size_t n) -> Status {
      if (args.size() != n) {
        return InvalidArgumentError("function " + name + " expects " +
                                    std::to_string(n) + " argument(s)");
      }
      return Status::Ok();
    };
    if (name == "ceil") {
      PDGF_RETURN_IF_ERROR(need(1));
      return std::ceil(args[0]);
    }
    if (name == "floor") {
      PDGF_RETURN_IF_ERROR(need(1));
      return std::floor(args[0]);
    }
    if (name == "round") {
      PDGF_RETURN_IF_ERROR(need(1));
      return std::round(args[0]);
    }
    if (name == "abs") {
      PDGF_RETURN_IF_ERROR(need(1));
      return std::fabs(args[0]);
    }
    if (name == "sqrt") {
      PDGF_RETURN_IF_ERROR(need(1));
      return std::sqrt(args[0]);
    }
    if (name == "log") {
      PDGF_RETURN_IF_ERROR(need(1));
      return std::log(args[0]);
    }
    if (name == "log10") {
      PDGF_RETURN_IF_ERROR(need(1));
      return std::log10(args[0]);
    }
    if (name == "exp") {
      PDGF_RETURN_IF_ERROR(need(1));
      return std::exp(args[0]);
    }
    if (name == "pow") {
      PDGF_RETURN_IF_ERROR(need(2));
      return std::pow(args[0], args[1]);
    }
    if (name == "min") {
      PDGF_RETURN_IF_ERROR(need(2));
      return std::fmin(args[0], args[1]);
    }
    if (name == "max") {
      PDGF_RETURN_IF_ERROR(need(2));
      return std::fmax(args[0], args[1]);
    }
    return InvalidArgumentError("unknown function '" + name + "'");
  }

  std::string_view text_;
  const VariableResolver& resolver_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<double> EvaluateExpression(std::string_view expression,
                                    const VariableResolver& resolver) {
  Parser parser(expression, resolver);
  return parser.Run();
}

StatusOr<double> EvaluateExpression(std::string_view expression) {
  return EvaluateExpression(expression, VariableResolver());
}

std::vector<std::string> ExtractVariableReferences(
    std::string_view expression) {
  std::vector<std::string> names;
  size_t pos = 0;
  while (true) {
    size_t open = expression.find("${", pos);
    if (open == std::string_view::npos) break;
    size_t close = expression.find('}', open + 2);
    if (close == std::string_view::npos) break;
    std::string name(expression.substr(open + 2, close - open - 2));
    bool seen = false;
    for (const std::string& existing : names) {
      if (existing == name) {
        seen = true;
        break;
      }
    }
    if (!seen) names.push_back(std::move(name));
    pos = close + 1;
  }
  return names;
}

}  // namespace pdgf
