#include "util/simd_rng.h"

#include "util/rng.h"

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace pdgf {
namespace simd {
namespace {

// ------------------------------------------------------------- scalar --
// The portable fallbacks call straight into util/rng.h so there is only
// one definition of the arithmetic to keep correct.

void DeriveSeedBatchScalar(uint64_t parent, const uint64_t* keys, size_t n,
                           uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = DeriveSeed(parent, keys[i]);
}

void FirstDrawBatchScalar(const uint64_t* seeds, size_t n, uint64_t* draws) {
  for (size_t i = 0; i < n; ++i) {
    Xorshift64 rng(seeds[i]);
    draws[i] = rng.Next();
  }
}

void DrawPairBatchScalar(const uint64_t* seeds, size_t n, uint64_t* draws1,
                         uint64_t* draws2) {
  for (size_t i = 0; i < n; ++i) {
    Xorshift64 rng(seeds[i]);
    draws1[i] = rng.Next();
    draws2[i] = rng.Next();
  }
}

void BoundedFromDrawsScalar(const uint64_t* draws, uint64_t bound, size_t n,
                            uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    unsigned __int128 product =
        static_cast<unsigned __int128>(draws[i]) * bound;
    out[i] = static_cast<uint64_t>(product >> 64);
  }
}

void UnitDoubleFromDrawsScalar(const uint64_t* draws, size_t n,
                               double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(draws[i] >> 11) * 0x1.0p-53;
  }
}

// --------------------------------------------------------------- NEON --
// 2-lane kernels; 64x64 multiplies are assembled from vmull_u32 partial
// products (aarch64 NEON has no 64-bit lane multiply).
#if defined(__aarch64__)

inline uint64x2_t MulLo64(uint64x2_t a, uint64x2_t b) {
  uint32x2_t a_lo = vmovn_u64(a);
  uint32x2_t b_lo = vmovn_u64(b);
  uint32x2_t a_hi = vshrn_n_u64(a, 32);
  uint32x2_t b_hi = vshrn_n_u64(b, 32);
  uint64x2_t cross = vmlal_u32(vmull_u32(a_lo, b_hi), a_hi, b_lo);
  return vaddq_u64(vmull_u32(a_lo, b_lo), vshlq_n_u64(cross, 32));
}

inline uint64x2_t MulHi64(uint64x2_t a, uint64x2_t b) {
  uint32x2_t a_lo = vmovn_u64(a);
  uint32x2_t b_lo = vmovn_u64(b);
  uint32x2_t a_hi = vshrn_n_u64(a, 32);
  uint32x2_t b_hi = vshrn_n_u64(b, 32);
  uint64x2_t lolo = vmull_u32(a_lo, b_lo);
  uint64x2_t hilo = vmull_u32(a_hi, b_lo);
  uint64x2_t lohi = vmull_u32(a_lo, b_hi);
  uint64x2_t hihi = vmull_u32(a_hi, b_hi);
  uint64x2_t mask32 = vdupq_n_u64(0xffffffffULL);
  uint64x2_t carry =
      vaddq_u64(vaddq_u64(vshrq_n_u64(lolo, 32), vandq_u64(hilo, mask32)),
                vandq_u64(lohi, mask32));
  return vaddq_u64(
      vaddq_u64(hihi, vshrq_n_u64(carry, 32)),
      vaddq_u64(vshrq_n_u64(hilo, 32), vshrq_n_u64(lohi, 32)));
}

inline uint64x2_t Mix64Neon(uint64x2_t x) {
  x = vaddq_u64(x, vdupq_n_u64(0x9e3779b97f4a7c15ULL));
  x = MulLo64(veorq_u64(x, vshrq_n_u64(x, 30)),
              vdupq_n_u64(0xbf58476d1ce4e5b9ULL));
  x = MulLo64(veorq_u64(x, vshrq_n_u64(x, 27)),
              vdupq_n_u64(0x94d049bb133111ebULL));
  return veorq_u64(x, vshrq_n_u64(x, 31));
}

// Reseed semantics of Xorshift64: state = Mix64(seed), zero remapped.
inline uint64x2_t ReseedStateNeon(uint64x2_t seeds) {
  uint64x2_t state = Mix64Neon(seeds);
  uint64x2_t zero_mask = vceqzq_u64(state);
  return vbslq_u64(zero_mask, vdupq_n_u64(0x9e3779b97f4a7c15ULL), state);
}

// One xorshift64* step: advances *state, returns the draw.
inline uint64x2_t XorshiftStepNeon(uint64x2_t* state) {
  uint64x2_t x = *state;
  x = veorq_u64(x, vshrq_n_u64(x, 12));
  x = veorq_u64(x, vshlq_n_u64(x, 25));
  x = veorq_u64(x, vshrq_n_u64(x, 27));
  *state = x;
  return MulLo64(x, vdupq_n_u64(0x2545f4914f6cdd1dULL));
}

void DeriveSeedBatchNeon(uint64_t parent, const uint64_t* keys, size_t n,
                         uint64_t* out) {
  const uint64x2_t parent_v = vdupq_n_u64(parent);
  const uint64x2_t child_salt = vdupq_n_u64(0x632be59bd9b4e019ULL);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t child = Mix64Neon(vaddq_u64(vld1q_u64(keys + i), child_salt));
    vst1q_u64(out + i, Mix64Neon(veorq_u64(parent_v, child)));
  }
  if (i < n) out[i] = DeriveSeed(parent, keys[i]);
}

void FirstDrawBatchNeon(const uint64_t* seeds, size_t n, uint64_t* draws) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t state = ReseedStateNeon(vld1q_u64(seeds + i));
    vst1q_u64(draws + i, XorshiftStepNeon(&state));
  }
  if (i < n) {
    Xorshift64 rng(seeds[i]);
    draws[i] = rng.Next();
  }
}

void DrawPairBatchNeon(const uint64_t* seeds, size_t n, uint64_t* draws1,
                       uint64_t* draws2) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t state = ReseedStateNeon(vld1q_u64(seeds + i));
    vst1q_u64(draws1 + i, XorshiftStepNeon(&state));
    vst1q_u64(draws2 + i, XorshiftStepNeon(&state));
  }
  if (i < n) {
    Xorshift64 rng(seeds[i]);
    draws1[i] = rng.Next();
    draws2[i] = rng.Next();
  }
}

void BoundedFromDrawsNeon(const uint64_t* draws, uint64_t bound, size_t n,
                          uint64_t* out) {
  const uint64x2_t bound_v = vdupq_n_u64(bound);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(out + i, MulHi64(vld1q_u64(draws + i), bound_v));
  }
  for (; i < n; ++i) {
    unsigned __int128 product =
        static_cast<unsigned __int128>(draws[i]) * bound;
    out[i] = static_cast<uint64_t>(product >> 64);
  }
}

void UnitDoubleFromDrawsNeon(const uint64_t* draws, size_t n, double* out) {
  const float64x2_t scale = vdupq_n_f64(0x1.0p-53);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t mantissa = vshrq_n_u64(vld1q_u64(draws + i), 11);
    // vcvtq_f64_u64 is correctly rounded; the operand is < 2^53 so the
    // conversion is exact, matching the scalar cast.
    vst1q_f64(out + i, vmulq_f64(vcvtq_f64_u64(mantissa), scale));
  }
  if (i < n) out[i] = static_cast<double>(draws[i] >> 11) * 0x1.0p-53;
}

#endif  // __aarch64__

}  // namespace

void DeriveSeedBatch(uint64_t parent, const uint64_t* keys, size_t n,
                     uint64_t* out) {
  switch (ActiveSimdLevel()) {
#if defined(__x86_64__) || defined(_M_X64)
    case SimdLevel::kAvx2:
      internal::DeriveSeedBatchAvx2(parent, keys, n, out);
      return;
#endif
#if defined(__aarch64__)
    case SimdLevel::kNeon:
      DeriveSeedBatchNeon(parent, keys, n, out);
      return;
#endif
    default:
      DeriveSeedBatchScalar(parent, keys, n, out);
      return;
  }
}

void FirstDrawBatch(const uint64_t* seeds, size_t n, uint64_t* draws) {
  switch (ActiveSimdLevel()) {
#if defined(__x86_64__) || defined(_M_X64)
    case SimdLevel::kAvx2:
      internal::FirstDrawBatchAvx2(seeds, n, draws);
      return;
#endif
#if defined(__aarch64__)
    case SimdLevel::kNeon:
      FirstDrawBatchNeon(seeds, n, draws);
      return;
#endif
    default:
      FirstDrawBatchScalar(seeds, n, draws);
      return;
  }
}

void DrawPairBatch(const uint64_t* seeds, size_t n, uint64_t* draws1,
                   uint64_t* draws2) {
  switch (ActiveSimdLevel()) {
#if defined(__x86_64__) || defined(_M_X64)
    case SimdLevel::kAvx2:
      internal::DrawPairBatchAvx2(seeds, n, draws1, draws2);
      return;
#endif
#if defined(__aarch64__)
    case SimdLevel::kNeon:
      DrawPairBatchNeon(seeds, n, draws1, draws2);
      return;
#endif
    default:
      DrawPairBatchScalar(seeds, n, draws1, draws2);
      return;
  }
}

void BoundedFromDraws(const uint64_t* draws, uint64_t bound, size_t n,
                      uint64_t* out) {
  switch (ActiveSimdLevel()) {
#if defined(__x86_64__) || defined(_M_X64)
    case SimdLevel::kAvx2:
      internal::BoundedFromDrawsAvx2(draws, bound, n, out);
      return;
#endif
#if defined(__aarch64__)
    case SimdLevel::kNeon:
      BoundedFromDrawsNeon(draws, bound, n, out);
      return;
#endif
    default:
      BoundedFromDrawsScalar(draws, bound, n, out);
      return;
  }
}

void UnitDoubleFromDraws(const uint64_t* draws, size_t n, double* out) {
  switch (ActiveSimdLevel()) {
#if defined(__x86_64__) || defined(_M_X64)
    case SimdLevel::kAvx2:
      internal::UnitDoubleFromDrawsAvx2(draws, n, out);
      return;
#endif
#if defined(__aarch64__)
    case SimdLevel::kNeon:
      UnitDoubleFromDrawsNeon(draws, n, out);
      return;
#endif
    default:
      UnitDoubleFromDrawsScalar(draws, n, out);
      return;
  }
}

}  // namespace simd
}  // namespace pdgf
