#ifndef DBSYNTHPP_UTIL_XML_H_
#define DBSYNTHPP_UTIL_XML_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pdgf {

// A small XML subset sufficient for PDGF model configuration files
// (paper Listing 1): elements, attributes, character data, comments and
// the XML declaration. Namespaces, CDATA, DTDs and processing
// instructions other than the declaration are not supported.
class XmlElement {
 public:
  explicit XmlElement(std::string name) : name_(std::move(name)) {}

  XmlElement(const XmlElement&) = delete;
  XmlElement& operator=(const XmlElement&) = delete;

  const std::string& name() const { return name_; }

  // Attributes (ordered as written).
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  // Returns the attribute value or nullptr.
  const std::string* FindAttribute(std::string_view name) const;
  // Returns the attribute value or `default_value`.
  std::string AttributeOr(std::string_view name,
                          std::string_view default_value) const;
  bool HasAttribute(std::string_view name) const {
    return FindAttribute(name) != nullptr;
  }
  void SetAttribute(std::string name, std::string value);

  // Concatenated character data directly inside this element, with
  // entities decoded; surrounding whitespace preserved.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void AppendText(std::string_view text) { text_.append(text); }

  // Children in document order.
  const std::vector<std::unique_ptr<XmlElement>>& children() const {
    return children_;
  }
  // Adds a child element and returns a pointer to it.
  XmlElement* AddChild(std::string name);
  // Adopts an already-built child element.
  void AdoptChild(std::unique_ptr<XmlElement> child) {
    children_.push_back(std::move(child));
  }
  // First child with the given tag name, or nullptr.
  const XmlElement* FindChild(std::string_view name) const;
  XmlElement* FindChild(std::string_view name);
  // All children with the given tag name.
  std::vector<const XmlElement*> FindChildren(std::string_view name) const;
  // Text of the first child with the given tag, or `default_value`.
  std::string ChildTextOr(std::string_view name,
                          std::string_view default_value) const;

  // Serializes this element (and subtree) with 2-space indentation.
  void Serialize(std::string* out, int indent) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::string text_;
  std::vector<std::unique_ptr<XmlElement>> children_;
};

class XmlDocument {
 public:
  XmlDocument() = default;
  explicit XmlDocument(std::unique_ptr<XmlElement> root)
      : root_(std::move(root)) {}

  XmlDocument(XmlDocument&&) = default;
  XmlDocument& operator=(XmlDocument&&) = default;

  // Parses a document; returns an error with a line number on failure.
  static StatusOr<XmlDocument> Parse(std::string_view input);

  const XmlElement* root() const { return root_.get(); }
  XmlElement* mutable_root() { return root_.get(); }

  // Serializes including an XML declaration.
  std::string Serialize() const;

 private:
  std::unique_ptr<XmlElement> root_;
};

// Escapes &<>"' for use in attribute values / character data.
void XmlEscape(std::string_view in, std::string* out);

}  // namespace pdgf

#endif  // DBSYNTHPP_UTIL_XML_H_
