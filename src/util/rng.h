#ifndef DBSYNTHPP_UTIL_RNG_H_
#define DBSYNTHPP_UTIL_RNG_H_

#include <cstdint>
#include <string_view>

namespace pdgf {

// Pseudo-random primitives underlying PDGF's computation-based generation
// strategy (paper §2): xorshift generators that "behave like hash
// functions". Seeds are derived, not sequential, so any (table, column,
// update, row) coordinate can be evaluated independently — that is what
// makes generation embarrassingly parallel and references computable.
//
// These scalar definitions are the bit-exact contract for the vectorized
// kernels in util/simd_rng.h (AVX2/NEON twins of DeriveSeed, the
// Reseed+Next step, the Lemire bounded map and the unit-double
// conversion). Any change to a constant or an operation here must be
// mirrored there; tests/core/simd_test.cc pins the two implementations
// against each other at every dispatch level.

// splitmix64 finalizer: a full-avalanche 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combines a parent seed with a child coordinate into a child seed.
// This is the edge relation of the seeding hierarchy in Figure 1.
inline uint64_t DeriveSeed(uint64_t parent_seed, uint64_t child_key) {
  return Mix64(parent_seed ^ Mix64(child_key + 0x632be59bd9b4e019ULL));
}

// Stable FNV-1a hash of a name, used to derive table/column seeds from
// identifiers so that model edits (reordering tables) do not shift seeds.
inline uint64_t HashName(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

// "PdgfDefaultRandom": an xorshift64* stream. Extremely cheap per draw
// (three shifts, two xors, one multiply) and stateless to construct from
// any seed, matching the paper's custom xorshift PRNG.
class Xorshift64 {
 public:
  Xorshift64() : state_(0x9e3779b97f4a7c15ULL) {}
  explicit Xorshift64(uint64_t seed) { Reseed(seed); }

  // Re-initializes the stream; a zero seed is remapped (xorshift state
  // must be non-zero).
  void Reseed(uint64_t seed) {
    state_ = Mix64(seed);
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ULL;
  }

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  // Uniform in [0, bound); bound == 0 yields 0. Uses Lemire's
  // multiply-shift rejection-free mapping (bias < 2^-64 * bound,
  // negligible for generation purposes).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 product =
        static_cast<unsigned __int128>(Next()) * bound;
    return static_cast<uint64_t>(product >> 64);
  }

  // Uniform integer in the inclusive range [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    return lo + static_cast<int64_t>(NextBounded(span));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Standard-normal variate (Box-Muller, one value per call; the twin
  // variate is discarded to keep the stream's consumption deterministic:
  // exactly two draws per call).
  double NextGaussian();

  // Exponential variate with rate lambda (one draw).
  double NextExponential(double lambda);

  uint64_t state() const { return state_; }

 private:
  uint64_t state_;
};

// Draws from a bounded Zipf-like (power-law) distribution over
// [0, n): P(k) proportional to 1/(k+1)^theta. Used for skewed reference
// and dictionary sampling. Uses the rejection-inversion method of
// W. Hörmann & G. Derflinger, exact for theta != 1 handled via the
// generalized harmonic approximation.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double theta);

  uint64_t Sample(Xorshift64* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Harmonic(double x) const;     // integral approximation of sum 1/k^theta
  double HarmonicInverse(double y) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_UTIL_RNG_H_
