#ifndef DBSYNTHPP_CLI_CLI_H_
#define DBSYNTHPP_CLI_CLI_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dbsynthpp_cli {

// The command-line front end — the scriptable counterpart of the demo's
// GUI wizard (paper §5, Figures 10-12). Commands:
//
//   generate <model.xml> [--sf X] [--format csv|tsv|json|xml|sql]
//            [--out DIR] [--workers N] [--package-rows N]
//            [--nodes N] [--node-id I] [--update U] [--unsorted]
//   preview  <model.xml> <table> [--rows N] [--sf X]
//   ddl      <model.xml>
//   validate <model.xml> [--sf X]
//   extract  --schema schema.sql --csv-dir DIR --out model.xml
//            [--sample FRACTION] [--artifacts DIR] [--seed S]
//            [--null-marker M] [--explain]
//   query    <model.xml> <SQL> [--sf X] [--update U]
//   workload <model.xml> [--count N] [--seed S]
//   serve    [--port N] [--port-file PATH] [--max-jobs N]
//            [--max-connections N] [--max-workers N]
//   request  (--port N | --port-file PATH) --model tpch [--digests] ...
//   dictionaries
//
// `extract` stands in for the JDBC connection of Figure 3: the source
// database is materialized in MiniDB from a DDL script plus one CSV file
// per table ("<csv-dir>/<table>.csv"), then profiled.

// Executes one CLI invocation. Human-readable output is appended to
// `*output`; the return value is the process exit status (0 on success).
int RunCli(const std::vector<std::string>& args, std::string* output);

// Renders the usage text.
std::string UsageText();

}  // namespace dbsynthpp_cli

#endif  // DBSYNTHPP_CLI_CLI_H_
