#include "cli/cli.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/topology.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/session.h"
#include "core/simcluster.h"
#include "core/stream.h"
#include "core/text/builtin_dictionaries.h"
#include "dbsynth/model_builder.h"
#include "dbsynth/profiler.h"
#include "dbsynth/query_generator.h"
#include "dbsynth/schema_translator.h"
#include "dbsynth/synthesizer.h"
#include "dbsynth/virtual_table.h"
#include "minidb/csv.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "minidb/persistence.h"
#include "minidb/sql.h"
#include "util/files.h"
#include "util/hash.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "workloads/imdb.h"

namespace dbsynthpp_cli {
namespace {

using pdgf::Status;
using pdgf::StatusOr;

// Positional arguments plus --flag[=| ]value options.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool HasFlag(const std::string& name) const {
    return flags.count(name) > 0;
  }
  std::string FlagOr(const std::string& name,
                     const std::string& fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  double NumberFlagOr(const std::string& name, double fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

// Strictly parsed non-negative integer flag (NumberFlagOr's atof happily
// swallows garbage like "two" as 0). `hint` is appended to the error so
// the message says what valid values look like.
StatusOr<int64_t> CountFlagOr(const ParsedArgs& args,
                              const std::string& name, int64_t fallback,
                              int64_t min_value, const char* hint) {
  auto it = args.flags.find(name);
  if (it == args.flags.end()) return fallback;
  const std::string& text = it->second;
  if (text.empty() || text.size() > 18 ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return pdgf::InvalidArgumentError("--" + name +
                                      " expects a non-negative integer " +
                                      hint + ", got '" + text + "'");
  }
  int64_t value = std::atoll(text.c_str());
  if (value < min_value) {
    return pdgf::InvalidArgumentError(
        "--" + name + " must be >= " + std::to_string(min_value) + " " +
        hint + ", got '" + text + "'");
  }
  return value;
}

StatusOr<ParsedArgs> ParseArgs(const std::vector<std::string>& args,
                               size_t start) {
  ParsedArgs parsed;
  for (size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::string name = arg.substr(2);
      std::string value;
      size_t equals = name.find('=');
      if (equals != std::string::npos) {
        value = name.substr(equals + 1);
        name = name.substr(0, equals);
      } else if (name == "unsorted" || name == "explain" ||
                 name == "histograms" || name == "execute" ||
                 name == "digests" || name == "quick" ||
                 name == "trace" || name == "inject-perturbation" ||
                 name == "row-inserts" || name == "snapshot" ||
                 name == "streams") {
        value = "true";  // boolean flags
      } else {
        if (i + 1 >= args.size()) {
          return pdgf::InvalidArgumentError("missing value for --" + name);
        }
        value = args[++i];
      }
      parsed.flags[name] = value;
    } else {
      parsed.positional.push_back(arg);
    }
  }
  return parsed;
}

// Loads a model and creates a session at the --sf override (if any).
StatusOr<std::unique_ptr<pdgf::GenerationSession>> OpenSession(
    const pdgf::SchemaDef& schema, const ParsedArgs& args) {
  std::map<std::string, std::string> overrides;
  if (args.HasFlag("sf")) {
    overrides["SF"] = args.FlagOr("sf", "1");
  }
  return pdgf::GenerationSession::Create(&schema, overrides);
}

int Fail(const Status& status, std::string* output) {
  output->append("error: " + status.ToString() + "\n");
  return 1;
}

// Resolves the model named on the command line: either a bundled model
// (--model tpch|ssb|imdb) or a model file path.
StatusOr<pdgf::SchemaDef> LoadModelArg(const ParsedArgs& args,
                                       const char* command) {
  if (args.HasFlag("model")) {
    return workloads::BuildBundledModel(args.FlagOr("model", ""));
  }
  if (args.positional.empty()) {
    return pdgf::InvalidArgumentError(
        std::string(command) +
        " requires a model file or --model tpch|ssb|imdb");
  }
  return pdgf::LoadSchemaFromFile(args.positional[0]);
}

int CmdGenerate(const ParsedArgs& args, std::string* output) {
  auto schema = LoadModelArg(args, "generate");
  if (!schema.ok()) return Fail(schema.status(), output);
  auto session = OpenSession(*schema, args);
  if (!session.ok()) return Fail(session.status(), output);
  auto formatter = pdgf::MakeFormatter(args.FlagOr("format", "csv"));
  if (!formatter.ok()) return Fail(formatter.status(), output);

  pdgf::GenerationOptions options;
  // --workers 0 sizes to the CPUs this process may actually run on (the
  // affinity mask, which a container/cgroup cpuset shrinks), not the
  // machine's full core count.
  auto workers = CountFlagOr(args, "workers", 1, 0,
                             "(0 sizes to the process affinity mask)");
  if (!workers.ok()) return Fail(workers.status(), output);
  options.worker_count = *workers > 0 ? static_cast<int>(*workers)
                                      : pdgf::AffinityCpuCount();
  options.work_package_rows = static_cast<uint64_t>(
      args.NumberFlagOr("package-rows", 10000));
  options.node_count = static_cast<int>(args.NumberFlagOr("nodes", 1));
  options.node_id = static_cast<int>(args.NumberFlagOr("node-id", 0));
  options.update =
      static_cast<uint64_t>(args.NumberFlagOr("update", 0));
  options.sorted_output = !args.HasFlag("unsorted");
  options.compute_digests = args.HasFlag("digests");
  // Staged-pipeline knobs (validated strictly — a typo here should not
  // silently fall back to defaults).
  auto writer_threads = CountFlagOr(args, "writer-threads", 1, 0,
                                    "(0 writes inline, N uses N async "
                                    "writer threads)");
  if (!writer_threads.ok()) return Fail(writer_threads.status(), output);
  options.writer_threads = static_cast<int>(*writer_threads);
  auto io_buffers = CountFlagOr(args, "io-buffers", 0, 0,
                                "(0 sizes the buffer pool automatically)");
  if (!io_buffers.ok()) return Fail(io_buffers.status(), output);
  options.io_buffers = static_cast<uint64_t>(*io_buffers);
  if (args.HasFlag("scheduler")) {
    auto scheduler = pdgf::ParseSchedulerKind(args.FlagOr("scheduler", ""));
    if (!scheduler.ok()) return Fail(scheduler.status(), output);
    options.scheduler = *scheduler;
  }
  // --numa overrides the DBSYNTHPP_NUMA environment default. Placement
  // never changes output bytes; off|on|interleave produce identical data.
  if (args.HasFlag("numa")) {
    auto numa = pdgf::ParseNumaMode(args.FlagOr("numa", ""));
    if (!numa.ok()) return Fail(numa.status(), output);
    options.numa = *numa;
  }
  // --metrics-out writes the engine observability report (schema in
  // docs/metrics.md); --trace additionally records per-package spans.
  const std::string metrics_path = args.FlagOr("metrics-out", "");
  options.metrics_enabled = !metrics_path.empty() || args.HasFlag("trace");
  options.trace_events = args.HasFlag("trace");

  std::string out_dir = args.FlagOr("out", "generated");
  auto stats =
      GenerateToDirectory(**session, **formatter, out_dir, options);
  if (!stats.ok()) return Fail(stats.status(), output);
  output->append(pdgf::StrPrintf(
      "generated %llu rows, %.2f MB into %s (%.3f s, %.1f MB/s)\n",
      static_cast<unsigned long long>(stats->rows),
      static_cast<double>(stats->bytes) / (1024 * 1024), out_dir.c_str(),
      stats->seconds, stats->megabytes_per_second));
  if (options.compute_digests) {
    for (size_t t = 0; t < stats->table_digests.size(); ++t) {
      const pdgf::TableDigest& digest = stats->table_digests[t];
      output->append(pdgf::StrPrintf(
          "  %-24s %12llu rows  digest=%s\n",
          (*schema).tables[t].name.c_str(),
          static_cast<unsigned long long>(digest.rows()),
          digest.Hex().c_str()));
    }
  }
  if (!metrics_path.empty()) {
    Status written =
        pdgf::WriteStringToFile(metrics_path, stats->metrics.ToJson());
    if (!written.ok()) return Fail(written, output);
    output->append("metrics written to " + metrics_path + "\n");
  }
  return 0;
}

int CmdPreview(const ParsedArgs& args, std::string* output) {
  if (args.positional.size() < 2) {
    return Fail(
        pdgf::InvalidArgumentError("preview requires a model and a table"),
        output);
  }
  auto schema = pdgf::LoadSchemaFromFile(args.positional[0]);
  if (!schema.ok()) return Fail(schema.status(), output);
  auto session = OpenSession(*schema, args);
  if (!session.ok()) return Fail(session.status(), output);
  int table = schema->FindTableIndex(args.positional[1]);
  if (table < 0) {
    return Fail(pdgf::NotFoundError("no table '" + args.positional[1] + "'"),
                output);
  }
  // Header.
  const pdgf::TableDef& table_def =
      schema->tables[static_cast<size_t>(table)];
  for (size_t f = 0; f < table_def.fields.size(); ++f) {
    if (f > 0) output->append(" | ");
    output->append(table_def.fields[f].name);
  }
  output->push_back('\n');
  uint64_t rows = static_cast<uint64_t>(args.NumberFlagOr("rows", 10));
  for (const auto& row : (*session)->Preview(table, rows)) {
    for (size_t f = 0; f < row.size(); ++f) {
      if (f > 0) output->append(" | ");
      output->append(row[f]);
    }
    output->push_back('\n');
  }
  return 0;
}

int CmdDdl(const ParsedArgs& args, std::string* output) {
  auto schema = LoadModelArg(args, "ddl");
  if (!schema.ok()) return Fail(schema.status(), output);
  output->append(dbsynth::TranslateToSqlDdl(*schema));
  return 0;
}

int CmdValidate(const ParsedArgs& args, std::string* output) {
  if (args.positional.empty()) {
    return Fail(pdgf::InvalidArgumentError("validate requires a model file"),
                output);
  }
  auto schema = pdgf::LoadSchemaFromFile(args.positional[0]);
  if (!schema.ok()) return Fail(schema.status(), output);
  auto session = OpenSession(*schema, args);
  if (!session.ok()) return Fail(session.status(), output);
  uint64_t total_rows = 0;
  double total_mb = 0;
  for (size_t t = 0; t < schema->tables.size(); ++t) {
    uint64_t rows = (*session)->TableRows(static_cast<int>(t));
    total_rows += rows;
    // Touch the generators of the first row to surface runtime issues,
    // and estimate the CSV volume from sampled rows.
    std::vector<pdgf::Value> row;
    if (rows > 0) {
      (*session)->GenerateRow(static_cast<int>(t), 0, 0, &row);
    }
    double table_mb = static_cast<double>(rows) *
                      (*session)->EstimateRowBytes(static_cast<int>(t)) /
                      (1024.0 * 1024.0);
    total_mb += table_mb;
    output->append(pdgf::StrPrintf(
        "  %-24s %12llu rows  %zu fields  ~%.1f MB\n",
        schema->tables[t].name.c_str(),
        static_cast<unsigned long long>(rows),
        schema->tables[t].fields.size(), table_mb));
  }
  output->append(pdgf::StrPrintf(
      "model ok: %zu tables, %llu total rows, ~%.1f MB as CSV\n",
      schema->tables.size(),
      static_cast<unsigned long long>(total_rows), total_mb));
  return 0;
}

int CmdExtract(const ParsedArgs& args, std::string* output) {
  std::string ddl_path = args.FlagOr("schema", "");
  std::string csv_dir = args.FlagOr("csv-dir", "");
  std::string out_path = args.FlagOr("out", "model.xml");
  if (ddl_path.empty() || csv_dir.empty()) {
    return Fail(pdgf::InvalidArgumentError(
                    "extract requires --schema and --csv-dir"),
                output);
  }
  // Materialize the source database.
  auto ddl = pdgf::ReadFileToString(ddl_path);
  if (!ddl.ok()) return Fail(ddl.status(), output);
  minidb::Database database;
  auto created = minidb::ExecuteSqlScript(&database, *ddl);
  if (!created.ok()) return Fail(created.status(), output);
  minidb::CsvOptions csv_options;
  csv_options.null_marker = args.FlagOr("null-marker", "");
  for (const std::string& table : database.TableNames()) {
    std::string path = pdgf::JoinPath(csv_dir, table + ".csv");
    if (!pdgf::PathExists(path)) {
      output->append("  (no data file for " + table + ", left empty)\n");
      continue;
    }
    auto loaded = minidb::LoadCsvFileIntoTable(
        path, database.GetTable(table), csv_options);
    if (!loaded.ok()) return Fail(loaded.status(), output);
    output->append(pdgf::StrPrintf(
        "  loaded %-20s %10llu rows\n", table.c_str(),
        static_cast<unsigned long long>(*loaded)));
  }
  // Profile + build the model (Figure 3).
  dbsynth::MiniDbConnection connection(&database);
  dbsynth::ExtractionOptions extraction;
  extraction.extract_histograms = args.HasFlag("histograms");
  double fraction = args.NumberFlagOr("sample", 1.0);
  if (fraction >= 1.0) {
    extraction.sampling.strategy = dbsynth::SamplingSpec::Strategy::kFull;
  } else {
    extraction.sampling.strategy =
        dbsynth::SamplingSpec::Strategy::kFraction;
    extraction.sampling.fraction = fraction;
  }
  auto profile = ProfileDatabase(&connection, extraction);
  if (!profile.ok()) return Fail(profile.status(), output);
  dbsynth::ModelBuildOptions model_options;
  model_options.seed =
      static_cast<uint64_t>(args.NumberFlagOr("seed", 123456789));
  model_options.artifact_dir = args.FlagOr("artifacts", "");
  auto model = BuildModel(*profile, model_options);
  if (!model.ok()) return Fail(model.status(), output);
  if (args.HasFlag("explain")) {
    for (const dbsynth::ModelDecision& decision : model->decisions) {
      output->append(pdgf::StrPrintf(
          "  %-14s %-20s %-28s %s\n", decision.table.c_str(),
          decision.column.c_str(), decision.generator.c_str(),
          decision.reason.c_str()));
    }
  }
  Status saved = pdgf::SaveSchemaToFile(model->schema, out_path);
  if (!saved.ok()) return Fail(saved, output);
  output->append(pdgf::StrPrintf(
      "wrote model with %zu tables to %s (extraction %.1f ms)\n",
      model->schema.tables.size(), out_path.c_str(),
      profile->timings.total() * 1e3));
  return 0;
}

// The full Figure-3 pipeline as one command: materialize the source,
// profile it, build a model, regenerate at --sf, save the synthetic
// database as a directory (schema.sql + CSVs).
int CmdSynthesize(const ParsedArgs& args, std::string* output) {
  std::string ddl_path = args.FlagOr("schema", "");
  std::string csv_dir = args.FlagOr("csv-dir", "");
  std::string out_dir = args.FlagOr("out-dir", "synthetic");
  if (ddl_path.empty() || csv_dir.empty()) {
    return Fail(pdgf::InvalidArgumentError(
                    "synthesize requires --schema and --csv-dir"),
                output);
  }
  auto ddl = pdgf::ReadFileToString(ddl_path);
  if (!ddl.ok()) return Fail(ddl.status(), output);
  minidb::Database source;
  auto created = minidb::ExecuteSqlScript(&source, *ddl);
  if (!created.ok()) return Fail(created.status(), output);
  minidb::CsvOptions csv_options;
  csv_options.null_marker = args.FlagOr("null-marker", "");
  for (const std::string& table : source.TableNames()) {
    std::string path = pdgf::JoinPath(csv_dir, table + ".csv");
    if (!pdgf::PathExists(path)) continue;
    auto loaded = minidb::LoadCsvFileIntoTable(
        path, source.GetTable(table), csv_options);
    if (!loaded.ok()) return Fail(loaded.status(), output);
  }

  dbsynth::MiniDbConnection connection(&source);
  minidb::Database target;
  dbsynth::SynthesizeOptions options;
  options.scale_factor = args.NumberFlagOr("sf", 1.0);
  options.extraction.extract_histograms = args.HasFlag("histograms");
  double fraction = args.NumberFlagOr("sample", 1.0);
  if (fraction >= 1.0) {
    options.extraction.sampling.strategy =
        dbsynth::SamplingSpec::Strategy::kFull;
  } else {
    options.extraction.sampling.strategy =
        dbsynth::SamplingSpec::Strategy::kFraction;
    options.extraction.sampling.fraction = fraction;
  }
  options.model.seed =
      static_cast<uint64_t>(args.NumberFlagOr("seed", 123456789));
  auto report = SynthesizeDatabase(&connection, &target, options);
  if (!report.ok()) return Fail(report.status(), output);

  Status saved = minidb::SaveDatabase(target, out_dir);
  if (!saved.ok()) return Fail(saved, output);
  if (args.HasFlag("model-out")) {
    Status model_saved = pdgf::SaveSchemaToFile(
        report->schema, args.FlagOr("model-out", "model.xml"));
    if (!model_saved.ok()) return Fail(model_saved, output);
  }
  output->append(pdgf::StrPrintf(
      "synthesized %llu rows at SF %.3g into %s (extraction %.1f ms, "
      "generate+load %.1f ms)\n",
      static_cast<unsigned long long>(report->rows_loaded),
      options.scale_factor, out_dir.c_str(),
      report->timings.total() * 1e3, report->generate_seconds * 1e3));
  return 0;
}

// Resolves the storage engine for the load commands. --engine is
// validated strictly (like --scheduler): a typo fails the command
// instead of silently falling back to the heap. The paged engine needs a
// directory for its .pages/.wal files; --data-dir overrides the default.
StatusOr<minidb::EngineConfig> EngineConfigFromArgs(const ParsedArgs& args) {
  minidb::EngineConfig config;
  if (args.HasFlag("engine")) {
    PDGF_ASSIGN_OR_RETURN(config.kind,
                          minidb::ParseEngineKind(args.FlagOr("engine", "")));
  }
  config.data_dir = args.FlagOr("data-dir", "");
  if (config.kind == minidb::EngineKind::kPaged && config.data_dir.empty()) {
    config.data_dir = "minidb_data";
  }
  return config;
}

// Appends one throughput line: `verb` N rows (+ optional MB and MB/s
// when `bytes` > 0) with rows/s over `seconds`.
void AppendLoadStats(const char* verb, uint64_t rows, uint64_t bytes,
                     double seconds, const minidb::EngineConfig& engine,
                     bool bytes_estimated, std::string* output) {
  double safe_seconds = seconds > 0 ? seconds : 1e-9;
  const char* approx = bytes_estimated ? "~" : "";
  if (bytes > 0) {
    output->append(pdgf::StrPrintf(
        "%s %llu rows, %s%.2f MB via engine=%s in %.3f s "
        "(%.0f rows/s, %s%.1f MB/s)\n",
        verb, static_cast<unsigned long long>(rows), approx,
        static_cast<double>(bytes) / (1024 * 1024),
        minidb::EngineKindName(engine.kind), seconds,
        static_cast<double>(rows) / safe_seconds, approx,
        static_cast<double>(bytes) / (1024 * 1024) / safe_seconds));
  } else {
    output->append(pdgf::StrPrintf(
        "%s %llu rows via engine=%s in %.3f s (%.0f rows/s)\n", verb,
        static_cast<unsigned long long>(rows),
        minidb::EngineKindName(engine.kind), seconds,
        static_cast<double>(rows) / safe_seconds));
  }
}

// --digests companion for the load commands: per-table digests of the
// canonical CSV rendering. Byte-identical across storage engines by
// design, so heap and paged runs must print the same lines.
void AppendTableDigests(minidb::Database* database, std::string* output) {
  for (const std::string& name : database->TableNames()) {
    const minidb::Table* table = database->GetTable(name);
    pdgf::Digest128 digest = pdgf::Hash128Bytes(minidb::TableToCsv(*table));
    output->append(pdgf::StrPrintf(
        "  %-24s %12llu rows  digest=%s\n", name.c_str(),
        static_cast<unsigned long long>(table->row_count()),
        digest.Hex().c_str()));
  }
}

// Loads a schema + CSV directory into a (possibly durable) database and
// reports load throughput. The CSV byte counts are exact file sizes, so
// MB/s measures ingest volume, not row width estimates.
int CmdLoad(const ParsedArgs& args, std::string* output) {
  std::string ddl_path = args.FlagOr("schema", "");
  std::string csv_dir = args.FlagOr("csv-dir", "");
  if (ddl_path.empty() || csv_dir.empty()) {
    return Fail(
        pdgf::InvalidArgumentError("load requires --schema and --csv-dir"),
        output);
  }
  auto engine = EngineConfigFromArgs(args);
  if (!engine.ok()) return Fail(engine.status(), output);
  auto ddl = pdgf::ReadFileToString(ddl_path);
  if (!ddl.ok()) return Fail(ddl.status(), output);
  minidb::Database database(*engine);
  auto created = minidb::ExecuteSqlScript(&database, *ddl);
  if (!created.ok()) return Fail(created.status(), output);
  minidb::CsvOptions csv_options;
  csv_options.null_marker = args.FlagOr("null-marker", "");

  uint64_t total_rows = 0;
  uint64_t total_bytes = 0;
  pdgf::Stopwatch total_clock;
  for (const std::string& table : database.TableNames()) {
    std::string path = pdgf::JoinPath(csv_dir, table + ".csv");
    if (!pdgf::PathExists(path)) {
      output->append("  (no data file for " + table + ", left empty)\n");
      continue;
    }
    auto size = pdgf::FileSize(path);
    if (!size.ok()) return Fail(size.status(), output);
    pdgf::Stopwatch table_clock;
    auto loaded = minidb::LoadCsvFileIntoTable(
        path, database.GetTable(table), csv_options);
    if (!loaded.ok()) return Fail(loaded.status(), output);
    double seconds = table_clock.ElapsedSeconds();
    double safe_seconds = seconds > 0 ? seconds : 1e-9;
    total_rows += *loaded;
    total_bytes += static_cast<uint64_t>(*size);
    output->append(pdgf::StrPrintf(
        "  loaded %-20s %10llu rows  %8.2f MB  (%.0f rows/s, %.1f MB/s)\n",
        table.c_str(), static_cast<unsigned long long>(*loaded),
        static_cast<double>(*size) / (1024 * 1024),
        static_cast<double>(*loaded) / safe_seconds,
        static_cast<double>(*size) / (1024 * 1024) / safe_seconds));
  }
  // Durable engines flush here; timing it keeps MB/s honest about the
  // full cost of a durable load.
  Status checkpointed = database.CheckpointAll();
  if (!checkpointed.ok()) return Fail(checkpointed, output);
  AppendLoadStats("loaded", total_rows, total_bytes,
                  total_clock.ElapsedSeconds(), *engine,
                  /*bytes_estimated=*/false, output);
  if (args.HasFlag("digests")) AppendTableDigests(&database, output);
  return 0;
}

// Generator-fed load: creates the model's tables in a fresh database and
// streams generated rows straight into the storage engine — by default
// through the bulk-load fast path (sequential page fills, WAL bypassed,
// PK index built bottom-up at finish), or row-at-a-time Insert with
// --row-inserts for comparison.
int CmdGenerateLoad(const ParsedArgs& args, std::string* output) {
  auto schema = LoadModelArg(args, "generate-load");
  if (!schema.ok()) return Fail(schema.status(), output);
  auto session = OpenSession(*schema, args);
  if (!session.ok()) return Fail(session.status(), output);
  auto engine = EngineConfigFromArgs(args);
  if (!engine.ok()) return Fail(engine.status(), output);
  minidb::Database database(*engine);
  Status created = dbsynth::CreateTargetSchema(*schema, &database);
  if (!created.ok()) return Fail(created, output);

  // Estimated CSV volume (same estimator as `validate`): cheap and
  // engine-independent, reported with a '~' to mark it as such.
  uint64_t estimated_bytes = 0;
  for (size_t t = 0; t < schema->tables.size(); ++t) {
    estimated_bytes += static_cast<uint64_t>(
        static_cast<double>((*session)->TableRows(static_cast<int>(t))) *
        (*session)->EstimateRowBytes(static_cast<int>(t)));
  }

  const bool row_inserts = args.HasFlag("row-inserts");
  pdgf::Stopwatch clock;
  auto loaded = row_inserts
                    ? dbsynth::BulkLoadGeneratedData(**session, &database)
                    : dbsynth::FastLoadGeneratedData(**session, &database);
  if (!loaded.ok()) return Fail(loaded.status(), output);
  Status checkpointed = database.CheckpointAll();
  if (!checkpointed.ok()) return Fail(checkpointed, output);
  AppendLoadStats(row_inserts ? "row-loaded" : "bulk-loaded", *loaded,
                  estimated_bytes, clock.ElapsedSeconds(), *engine,
                  /*bytes_estimated=*/true, output);
  if (args.HasFlag("digests")) AppendTableDigests(&database, output);
  return 0;
}

int CmdQuery(const ParsedArgs& args, std::string* output) {
  auto schema = LoadModelArg(args, "query");
  if (!schema.ok()) return Fail(schema.status(), output);
  // With --model the SELECT is the first positional; with a model file
  // it follows the path.
  const size_t sql_index = args.HasFlag("model") ? 0 : 1;
  if (args.positional.size() <= sql_index) {
    return Fail(
        pdgf::InvalidArgumentError("query requires a SELECT statement"),
        output);
  }
  auto session = OpenSession(*schema, args);
  if (!session.ok()) return Fail(session.status(), output);
  auto result = dbsynth::ExecuteQueryWithoutData(
      **session, args.positional[sql_index],
      static_cast<uint64_t>(args.NumberFlagOr("update", 0)));
  if (!result.ok()) return Fail(result.status(), output);
  output->append(result->ToString());
  return 0;
}

int CmdWorkload(const ParsedArgs& args, std::string* output) {
  if (args.positional.empty()) {
    return Fail(pdgf::InvalidArgumentError("workload requires a model file"),
                output);
  }
  auto schema = pdgf::LoadSchemaFromFile(args.positional[0]);
  if (!schema.ok()) return Fail(schema.status(), output);
  auto session = OpenSession(*schema, args);
  if (!session.ok()) return Fail(session.status(), output);
  dbsynth::QueryWorkloadOptions workload_options;
  workload_options.seed =
      static_cast<uint64_t>(args.NumberFlagOr("seed", 424243));
  dbsynth::QueryGenerator generator(session->get(), workload_options);
  uint64_t count = static_cast<uint64_t>(args.NumberFlagOr("count", 10));
  if (!args.HasFlag("execute")) {
    for (const std::string& sql : generator.Workload(count)) {
      output->append(sql);
      output->append(";\n");
    }
    return 0;
  }
  // Driver mode (the paper's §7 vision: automate the complete
  // benchmarking process): execute every query against the virtual
  // generator stream and report latency and result size.
  output->append(pdgf::StrPrintf("%4s %10s %8s  %s\n", "q#", "ms", "rows",
                                 "query"));
  double total_ms = 0;
  for (uint64_t i = 0; i < count; ++i) {
    std::string sql = generator.Query(i);
    pdgf::Stopwatch stopwatch;
    auto result = dbsynth::ExecuteQueryWithoutData(**session, sql);
    double ms = stopwatch.ElapsedMillis();
    if (!result.ok()) return Fail(result.status(), output);
    total_ms += ms;
    output->append(pdgf::StrPrintf("%4llu %10.2f %8zu  %.80s\n",
                                   static_cast<unsigned long long>(i), ms,
                                   result->rows.size(), sql.c_str()));
  }
  output->append(pdgf::StrPrintf(
      "total: %.1f ms over %llu queries (no data was materialized)\n",
      total_ms, static_cast<unsigned long long>(count)));
  return 0;
}

// Plays a table's CDC update stream locally (core/stream.h): event lines
// go to --out (or the CLI output), followed by a digest summary. The
// digest keys every event by its sequence number, so two runs of the
// same invocation printing the same digest PROVE the stream replays
// identically — the serve daemon's `stream` op emits the same events.
int CmdStream(const ParsedArgs& args, std::string* output) {
  auto schema = LoadModelArg(args, "stream");
  if (!schema.ok()) return Fail(schema.status(), output);
  auto session = OpenSession(*schema, args);
  if (!session.ok()) return Fail(session.status(), output);
  auto formatter = pdgf::MakeFormatter(args.FlagOr("format", "csv"));
  if (!formatter.ok()) return Fail(formatter.status(), output);
  const std::string table_name = args.FlagOr("table", "");
  if (table_name.empty()) {
    return Fail(pdgf::InvalidArgumentError("stream requires --table NAME"),
                output);
  }
  const int table_index = schema->FindTableIndex(table_name);
  if (table_index < 0) {
    return Fail(pdgf::NotFoundError("model has no table '" + table_name +
                                    "'"),
                output);
  }

  pdgf::UpdateStreamOptions options;
  options.snapshot = args.HasFlag("snapshot");
  auto first_update = CountFlagOr(args, "first-update", 1, 1,
                                  "(first time unit to play)");
  if (!first_update.ok()) return Fail(first_update.status(), output);
  options.first_update = static_cast<uint64_t>(*first_update);
  auto last_update = CountFlagOr(args, "last-update", 0, 0,
                                 "(last time unit; 0 plays to the end)");
  if (!last_update.ok()) return Fail(last_update.status(), output);
  options.last_update = static_cast<uint64_t>(*last_update);
  auto max_events =
      CountFlagOr(args, "events", 0, 0, "(stop after N events; 0 = all)");
  if (!max_events.ok()) return Fail(max_events.status(), output);

  pdgf::UpdateStreamGenerator generator(session->get(), table_index,
                                        formatter->get(), options);
  pdgf::TableDigest digest;
  std::string events;
  std::string chunk;
  uint64_t total = 0;
  uint64_t bytes = 0;
  const uint64_t cap = static_cast<uint64_t>(*max_events);
  while (cap == 0 || total < cap) {
    size_t want = 256;
    if (cap > 0) want = static_cast<size_t>(std::min<uint64_t>(want, cap - total));
    chunk.clear();
    const size_t got = generator.NextEvents(&chunk, want);
    if (got == 0) break;
    size_t start = 0;
    for (size_t i = 0; i < got; ++i) {
      size_t end = chunk.find('\n', start) + 1;
      digest.AddRowBytes(total + i,
                         std::string_view(chunk).substr(start, end - start));
      start = end;
    }
    total += got;
    bytes += chunk.size();
    events += chunk;
  }
  if (args.HasFlag("out")) {
    Status written = pdgf::WriteStringToFile(args.FlagOr("out", ""), events);
    if (!written.ok()) return Fail(written, output);
  } else {
    output->append(events);
  }
  output->append(pdgf::StrPrintf(
      "stream %s: %llu events, %llu bytes, digest=%s\n", table_name.c_str(),
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(bytes), digest.Hex().c_str()));
  return 0;
}

// --- verify -----------------------------------------------------------
//
// Determinism proof: generates one model repeatedly under different
// worker counts, package sizes, sink orders and simulated-node splits,
// and demands bit-identical order-insensitive table digests every time
// (plus byte-identical sorted output streams). Optionally compares the
// digests against a committed golden fixture (--golden) or writes one
// (--bless). --inject-perturbation flips one bit of the project seed for
// one run to prove the verifier actually detects divergence.

// One verification configuration of the engine matrix.
struct VerifyConfig {
  const char* label;
  int workers;
  uint64_t package_rows;
  bool sorted;
  pdgf::SchedulerKind scheduler = pdgf::SchedulerKind::kAtomic;
  int writer_threads = 1;  // engine default (async); 0 = inline
  pdgf::NumaMode numa = pdgf::NumaMode::kOff;  // placement under test
};

// Resolves verify's model (LoadModelArg). Called twice when
// --inject-perturbation needs a second, independently built schema.
StatusOr<pdgf::SchemaDef> LoadVerifyModel(const ParsedArgs& args) {
  return LoadModelArg(args, "verify");
}

// Runs one engine configuration against `session`, returning engine
// stats; sorted runs additionally capture per-table stream digests of
// the exact output bytes in `stream_digests` (schema table order).
StatusOr<pdgf::GenerationEngine::Stats> RunVerifyConfig(
    const pdgf::GenerationSession& session,
    const pdgf::RowFormatter& formatter, const VerifyConfig& config,
    std::vector<pdgf::Digest128>* stream_digests,
    bool collect_metrics = false) {
  const pdgf::SchemaDef& schema = session.schema();
  stream_digests->assign(schema.tables.size(), pdgf::Digest128{});
  pdgf::GenerationOptions options;
  options.worker_count = config.workers;
  options.work_package_rows = config.package_rows;
  options.sorted_output = config.sorted;
  options.scheduler = config.scheduler;
  options.writer_threads = config.writer_threads;
  options.numa = config.numa;
  options.compute_digests = true;
  options.metrics_enabled = collect_metrics;
  pdgf::SinkFactory factory =
      [&schema, stream_digests](
          const pdgf::TableDef& table) -> StatusOr<std::unique_ptr<pdgf::Sink>> {
    int index = schema.FindTableIndex(table.name);
    if (index < 0) {
      return pdgf::InternalError("sink for unknown table " + table.name);
    }
    return std::unique_ptr<pdgf::Sink>(new pdgf::DigestingSink(
        nullptr, &(*stream_digests)[static_cast<size_t>(index)]));
  };
  pdgf::GenerationEngine engine(&session, &formatter, factory,
                                options);
  PDGF_RETURN_IF_ERROR(engine.Run());
  return engine.stats();
}

// Index of the first table whose digest differs between the two runs,
// or -1 if they agree on every table (digest, rows and bytes).
int FirstDivergingTable(const std::vector<pdgf::TableDigest>& baseline,
                        const std::vector<pdgf::TableDigest>& candidate) {
  size_t tables = std::max(baseline.size(), candidate.size());
  for (size_t t = 0; t < tables; ++t) {
    if (t >= baseline.size() || t >= candidate.size()) {
      return static_cast<int>(t);
    }
    if (!(baseline[t] == candidate[t])) return static_cast<int>(t);
  }
  return -1;
}

int CmdVerify(const ParsedArgs& args, std::string* output) {
  auto schema = LoadVerifyModel(args);
  if (!schema.ok()) return Fail(schema.status(), output);
  auto session = OpenSession(*schema, args);
  if (!session.ok()) return Fail(session.status(), output);
  auto formatter = pdgf::MakeFormatter(args.FlagOr("format", "csv"));
  if (!formatter.ok()) return Fail(formatter.status(), output);

  // --metrics-out: collect the engine observability report for every
  // configuration of the matrix and export them keyed by config label.
  const std::string metrics_path = args.FlagOr("metrics-out", "");
  const bool collect_metrics = !metrics_path.empty();
  std::vector<std::pair<std::string, std::string>> metric_runs;
  auto collect_run_metrics = [&](const char* label,
                                 const pdgf::GenerationEngine::Stats& stats) {
    if (collect_metrics) {
      metric_runs.emplace_back(label, stats.metrics.ToJson(false));
    }
  };

  // Baseline: single worker, sorted output — the reference ordering.
  const VerifyConfig baseline_config = {"workers=1 pkg=4096 sorted", 1,
                                        4096, true};
  std::vector<pdgf::Digest128> baseline_streams;
  auto baseline = RunVerifyConfig(**session, **formatter, baseline_config,
                                  &baseline_streams, collect_metrics);
  if (!baseline.ok()) return Fail(baseline.status(), output);
  collect_run_metrics(baseline_config.label, *baseline);
  output->append(pdgf::StrPrintf(
      "baseline  %-28s %10llu rows %12llu bytes\n", baseline_config.label,
      static_cast<unsigned long long>(baseline->rows),
      static_cast<unsigned long long>(baseline->bytes)));
  for (size_t t = 0; t < schema->tables.size(); ++t) {
    output->append(pdgf::StrPrintf(
        "  %-24s %s\n", schema->tables[t].name.c_str(),
        baseline->table_digests[t].Hex().c_str()));
  }

  int failures = 0;
  auto report_divergence = [&](const std::string& label, int table,
                               const pdgf::TableDigest& want,
                               const pdgf::TableDigest& got) {
    ++failures;
    const std::string table_name =
        table >= 0 && table < static_cast<int>(schema->tables.size())
            ? schema->tables[static_cast<size_t>(table)].name
            : "<missing table>";
    output->append(pdgf::StrPrintf(
        "FAIL      %-28s first divergence: table %s\n"
        "          expected %s (%llu rows)\n"
        "          got      %s (%llu rows)\n",
        label.c_str(), table_name.c_str(), want.Hex().c_str(),
        static_cast<unsigned long long>(want.rows()), got.Hex().c_str(),
        static_cast<unsigned long long>(got.rows())));
  };

  // Engine matrix: worker counts x package sizes x sink order x
  // scheduler x writer-thread count. Sorted configurations must
  // additionally reproduce the baseline byte stream — including across
  // the inline/async writer boundary and both dispatch policies.
  using pdgf::SchedulerKind;
  std::vector<VerifyConfig> matrix = {
      {"workers=2 pkg=997 sorted", 2, 997, true},
      {"workers=8 pkg=64 sorted", 8, 64, true},
      {"workers=4 pkg=997 sorted inline", 4, 997, true,
       SchedulerKind::kAtomic, 0},
      {"workers=4 pkg=512 sorted striped", 4, 512, true,
       SchedulerKind::kStriped, 1},
      {"workers=8 pkg=64 sorted striped w2", 8, 64, true,
       SchedulerKind::kStriped, 2},
      {"workers=4 pkg=512 sorted numa", 4, 512, true, SchedulerKind::kNuma,
       1, pdgf::NumaMode::kOn},
      {"workers=8 pkg=64 sorted numa ilv w2", 8, 64, true,
       SchedulerKind::kNuma, 2, pdgf::NumaMode::kInterleave},
      {"workers=2 pkg=4096 unsorted", 2, 4096, false},
      {"workers=8 pkg=511 unsorted", 8, 511, false},
      {"workers=4 pkg=511 unsorted striped w2", 4, 511, false,
       SchedulerKind::kStriped, 2},
      {"workers=4 pkg=511 unsorted numa", 4, 511, false,
       SchedulerKind::kNuma, 1, pdgf::NumaMode::kOn},
  };
  if (args.HasFlag("quick")) {
    matrix = {{"workers=2 pkg=997 sorted", 2, 997, true},
              {"workers=2 pkg=997 sorted striped w2", 2, 997, true,
               SchedulerKind::kStriped, 2},
              {"workers=2 pkg=997 sorted numa", 2, 997, true,
               SchedulerKind::kNuma, 1, pdgf::NumaMode::kOn},
              {"workers=4 pkg=4096 unsorted", 4, 4096, false}};
  }
  for (const VerifyConfig& config : matrix) {
    std::vector<pdgf::Digest128> streams;
    auto run = RunVerifyConfig(**session, **formatter, config, &streams,
                               collect_metrics);
    if (!run.ok()) return Fail(run.status(), output);
    collect_run_metrics(config.label, *run);
    int diverged =
        FirstDivergingTable(baseline->table_digests, run->table_digests);
    if (diverged >= 0) {
      report_divergence(config.label, diverged,
                        baseline->table_digests[static_cast<size_t>(
                            std::min<size_t>(diverged,
                                             baseline->table_digests.size() -
                                                 1))],
                        run->table_digests[static_cast<size_t>(
                            std::min<size_t>(diverged,
                                             run->table_digests.size() - 1))]);
      continue;
    }
    bool stream_ok = true;
    if (config.sorted) {
      for (size_t t = 0; t < baseline_streams.size(); ++t) {
        if (!(streams[t] == baseline_streams[t])) {
          ++failures;
          stream_ok = false;
          output->append(pdgf::StrPrintf(
              "FAIL      %-28s sorted byte stream of table %s differs "
              "(expected %s, got %s)\n",
              config.label, schema->tables[t].name.c_str(),
              baseline_streams[t].Hex().c_str(), streams[t].Hex().c_str()));
          break;
        }
      }
    }
    if (stream_ok) {
      output->append(pdgf::StrPrintf("ok        %-28s\n", config.label));
    }
  }

  // Simulated cluster: the meta-scheduler splits every table into
  // node_count contiguous shares; merging the per-node digests must
  // reproduce the single-node digest exactly.
  int cluster_nodes =
      static_cast<int>(args.NumberFlagOr("cluster-nodes", 4));
  if (args.HasFlag("quick")) cluster_nodes = 2;
  {
    pdgf::GenerationOptions cluster_options;
    cluster_options.worker_count = 2;
    cluster_options.work_package_rows = 777;
    // Exercise the staged pipeline under the meta-scheduler too: striped
    // dispatch + two async writer threads per simulated node.
    cluster_options.scheduler = pdgf::SchedulerKind::kStriped;
    cluster_options.writer_threads = 2;
    auto cluster = pdgf::RunSimulatedCluster(**session, **formatter,
                                             cluster_options, cluster_nodes);
    if (!cluster.ok()) return Fail(cluster.status(), output);
    std::string label =
        pdgf::StrPrintf("cluster nodes=%d merged", cluster_nodes);
    int diverged =
        FirstDivergingTable(baseline->table_digests, cluster->table_digests);
    if (diverged >= 0) {
      report_divergence(label, diverged,
                        baseline->table_digests[static_cast<size_t>(diverged)],
                        cluster->table_digests[static_cast<size_t>(diverged)]);
    } else {
      output->append(pdgf::StrPrintf("ok        %-28s\n", label.c_str()));
    }
  }

  // Deliberate divergence: rebuild the model with one seed bit flipped
  // and demand that the verifier notices. Used by tests and by the
  // acceptance checklist to prove verify is not vacuously green.
  if (args.HasFlag("inject-perturbation")) {
    auto perturbed_schema = LoadVerifyModel(args);
    if (!perturbed_schema.ok()) {
      return Fail(perturbed_schema.status(), output);
    }
    perturbed_schema->seed ^= 1;
    auto perturbed_session = OpenSession(*perturbed_schema, args);
    if (!perturbed_session.ok()) {
      return Fail(perturbed_session.status(), output);
    }
    std::vector<pdgf::Digest128> streams;
    auto run = RunVerifyConfig(**perturbed_session, **formatter,
                               baseline_config, &streams);
    if (!run.ok()) return Fail(run.status(), output);
    int diverged =
        FirstDivergingTable(baseline->table_digests, run->table_digests);
    if (diverged >= 0) {
      report_divergence("seed-perturbed run", diverged,
                        baseline->table_digests[static_cast<size_t>(diverged)],
                        run->table_digests[static_cast<size_t>(diverged)]);
    } else {
      ++failures;
      output->append(
          "FAIL      seed-perturbed run produced identical digests — "
          "the verifier cannot detect divergence\n");
    }
  }

  // Golden fixture comparison / blessing.
  if (args.HasFlag("golden")) {
    auto contents = pdgf::ReadFileToString(args.FlagOr("golden", ""));
    if (!contents.ok()) return Fail(contents.status(), output);
    auto entries = pdgf::ParseDigestFixture(*contents);
    if (!entries.ok()) return Fail(entries.status(), output);
    std::map<std::string, pdgf::TableDigestEntry> by_table;
    for (const pdgf::TableDigestEntry& entry : *entries) {
      by_table[entry.table] = entry;
    }
    for (size_t t = 0; t < schema->tables.size(); ++t) {
      const std::string& name = schema->tables[t].name;
      auto it = by_table.find(name);
      if (it == by_table.end()) {
        ++failures;
        output->append("FAIL      golden fixture has no entry for table " +
                       name + "\n");
        continue;
      }
      const pdgf::TableDigest& digest = baseline->table_digests[t];
      if (it->second.hex != digest.Hex() ||
          it->second.rows != digest.rows() ||
          it->second.bytes != digest.bytes()) {
        ++failures;
        output->append(pdgf::StrPrintf(
            "FAIL      golden mismatch for table %s\n"
            "          golden  %s (%llu rows, %llu bytes)\n"
            "          current %s (%llu rows, %llu bytes)\n"
            "          (re-bless with: dbsynthpp verify ... --bless FILE "
            "after auditing the change)\n",
            name.c_str(), it->second.hex.c_str(),
            static_cast<unsigned long long>(it->second.rows),
            static_cast<unsigned long long>(it->second.bytes),
            digest.Hex().c_str(),
            static_cast<unsigned long long>(digest.rows()),
            static_cast<unsigned long long>(digest.bytes())));
      }
    }
    if (failures == 0) {
      output->append(pdgf::StrPrintf("ok        golden fixture %s\n",
                                     args.FlagOr("golden", "").c_str()));
    }
  }
  if (args.HasFlag("bless")) {
    std::vector<pdgf::TableDigestEntry> entries;
    for (size_t t = 0; t < schema->tables.size(); ++t) {
      const pdgf::TableDigest& digest = baseline->table_digests[t];
      entries.push_back({schema->tables[t].name, digest.rows(),
                         digest.bytes(), digest.Hex()});
    }
    std::string header = pdgf::StrPrintf(
        "Golden table digests (model %s, SF %s). Regenerate with\n"
        "dbsynthpp verify ... --bless <this file> and audit the diff.",
        args.HasFlag("model") ? args.FlagOr("model", "").c_str()
                              : args.positional[0].c_str(),
        args.FlagOr("sf", "1").c_str());
    Status written = pdgf::WriteStringToFile(
        args.FlagOr("bless", ""), pdgf::FormatDigestFixture(entries, header));
    if (!written.ok()) return Fail(written, output);
    output->append("blessed   " + args.FlagOr("bless", "") + "\n");
  }

  // CDC update-stream verification (--streams / --stream-golden FILE /
  // --stream-bless FILE): digest every table's event stream, replay it,
  // and demand bit-identical digests. Events are keyed by sequence
  // number, so a reordered replay fails even though the accumulator is
  // commutative.
  if (args.HasFlag("streams") || args.HasFlag("stream-golden") ||
      args.HasFlag("stream-bless")) {
    auto digest_streams = [&]() {
      std::vector<pdgf::TableDigestEntry> entries;
      std::string chunk;
      for (size_t t = 0; t < schema->tables.size(); ++t) {
        // Snapshot inserts included: a static table (TableUpdates <= 1)
        // still produces a non-empty, digestable stream.
        pdgf::UpdateStreamOptions stream_options;
        stream_options.snapshot = true;
        pdgf::UpdateStreamGenerator generator(session->get(),
                                              static_cast<int>(t),
                                              formatter->get(),
                                              stream_options);
        pdgf::TableDigest digest;
        uint64_t events = 0;
        uint64_t bytes = 0;
        while (true) {
          chunk.clear();
          const size_t got = generator.NextEvents(&chunk, 512);
          if (got == 0) break;
          size_t start = 0;
          for (size_t i = 0; i < got; ++i) {
            size_t end = chunk.find('\n', start) + 1;
            digest.AddRowBytes(
                events + i, std::string_view(chunk).substr(start, end - start));
            start = end;
          }
          events += got;
          bytes += chunk.size();
        }
        entries.push_back(
            {schema->tables[t].name, events, bytes, digest.Hex()});
      }
      return entries;
    };
    const std::vector<pdgf::TableDigestEntry> streams = digest_streams();
    const std::vector<pdgf::TableDigestEntry> replayed = digest_streams();
    bool replay_ok = true;
    for (size_t t = 0; t < streams.size(); ++t) {
      if (streams[t].hex != replayed[t].hex ||
          streams[t].rows != replayed[t].rows) {
        ++failures;
        replay_ok = false;
        output->append(pdgf::StrPrintf(
            "FAIL      stream replay of table %s diverged "
            "(first %s, replay %s)\n",
            streams[t].table.c_str(), streams[t].hex.c_str(),
            replayed[t].hex.c_str()));
      }
    }
    if (replay_ok) {
      output->append(pdgf::StrPrintf(
          "ok        stream replay (%zu tables bit-identical)\n",
          streams.size()));
    }
    if (args.HasFlag("stream-golden")) {
      auto contents =
          pdgf::ReadFileToString(args.FlagOr("stream-golden", ""));
      if (!contents.ok()) return Fail(contents.status(), output);
      auto entries = pdgf::ParseDigestFixture(*contents);
      if (!entries.ok()) return Fail(entries.status(), output);
      std::map<std::string, pdgf::TableDigestEntry> by_table;
      for (const pdgf::TableDigestEntry& entry : *entries) {
        by_table[entry.table] = entry;
      }
      bool golden_ok = true;
      for (const pdgf::TableDigestEntry& current : streams) {
        auto it = by_table.find(current.table);
        if (it == by_table.end()) {
          ++failures;
          golden_ok = false;
          output->append(
              "FAIL      stream golden fixture has no entry for table " +
              current.table + "\n");
          continue;
        }
        if (it->second.hex != current.hex ||
            it->second.rows != current.rows ||
            it->second.bytes != current.bytes) {
          ++failures;
          golden_ok = false;
          output->append(pdgf::StrPrintf(
              "FAIL      stream golden mismatch for table %s\n"
              "          golden  %s (%llu events, %llu bytes)\n"
              "          current %s (%llu events, %llu bytes)\n",
              current.table.c_str(), it->second.hex.c_str(),
              static_cast<unsigned long long>(it->second.rows),
              static_cast<unsigned long long>(it->second.bytes),
              current.hex.c_str(),
              static_cast<unsigned long long>(current.rows),
              static_cast<unsigned long long>(current.bytes)));
        }
      }
      if (golden_ok) {
        output->append(
            pdgf::StrPrintf("ok        stream golden fixture %s\n",
                            args.FlagOr("stream-golden", "").c_str()));
      }
    }
    if (args.HasFlag("stream-bless")) {
      std::string header = pdgf::StrPrintf(
          "Golden CDC stream digests (model %s, SF %s); rows = events.\n"
          "Regenerate with dbsynthpp verify ... --stream-bless <this file> "
          "and audit the diff.",
          args.HasFlag("model") ? args.FlagOr("model", "").c_str()
                                : args.positional[0].c_str(),
          args.FlagOr("sf", "1").c_str());
      Status written = pdgf::WriteStringToFile(
          args.FlagOr("stream-bless", ""),
          pdgf::FormatDigestFixture(streams, header));
      if (!written.ok()) return Fail(written, output);
      output->append("blessed   " + args.FlagOr("stream-bless", "") + "\n");
    }
  }

  if (collect_metrics) {
    // One MetricsReport (docs/metrics.md schema) per verify run, keyed
    // by the configuration label.
    std::string json = "{\n  \"schema_version\": 1,\n  \"runs\": [\n";
    for (size_t i = 0; i < metric_runs.size(); ++i) {
      json += "    {\"label\": \"" + metric_runs[i].first +
              "\", \"report\": " + metric_runs[i].second + "}";
      json += i + 1 < metric_runs.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    Status written = pdgf::WriteStringToFile(metrics_path, json);
    if (!written.ok()) return Fail(written, output);
    output->append("metrics written to " + metrics_path + "\n");
  }

  if (failures > 0) {
    output->append(pdgf::StrPrintf("verify FAILED: %d divergence(s)\n",
                                   failures));
    return 1;
  }
  output->append("verify OK: all configurations produced identical digests\n");
  return 0;
}

// Runs the multi-tenant generation daemon (src/serve, docs/serve.md).
// Blocks until a client sends {"op":"shutdown"} (or the process is
// signalled); --port-file is how scripts discover an ephemeral port.
int CmdServe(const ParsedArgs& args, std::string* output) {
  serve::ServeOptions options;
  auto port = CountFlagOr(args, "port", 0, 0, "(0 picks an ephemeral port)");
  if (!port.ok()) return Fail(port.status(), output);
  options.port = static_cast<int>(*port);
  options.port_file = args.FlagOr("port-file", "");
  auto max_jobs =
      CountFlagOr(args, "max-jobs", 4, 1, "(concurrent admitted jobs)");
  if (!max_jobs.ok()) return Fail(max_jobs.status(), output);
  options.max_jobs = static_cast<uint64_t>(*max_jobs);
  auto max_connections = CountFlagOr(args, "max-connections", 32, 1,
                                     "(concurrent client connections)");
  if (!max_connections.ok()) return Fail(max_connections.status(), output);
  options.max_connections = static_cast<uint64_t>(*max_connections);
  auto max_workers = CountFlagOr(args, "max-workers", 4, 1,
                                 "(worker-thread clamp per job)");
  if (!max_workers.ok()) return Fail(max_workers.status(), output);
  options.max_workers_per_job = static_cast<int>(*max_workers);
  auto writer_threads = CountFlagOr(args, "writer-threads", 1, 1,
                                    "(writer threads per job; 1 keeps "
                                    "streams byte-deterministic)");
  if (!writer_threads.ok()) return Fail(writer_threads.status(), output);
  options.writer_threads = static_cast<int>(*writer_threads);
  auto package_rows =
      CountFlagOr(args, "package-rows", 10000, 1, "(rows per work package)");
  if (!package_rows.ok()) return Fail(package_rows.status(), output);
  options.work_package_rows = static_cast<uint64_t>(*package_rows);
  auto timeout = CountFlagOr(args, "request-timeout", 60, 1,
                             "(seconds before an idle client is dropped)");
  if (!timeout.ok()) return Fail(timeout.status(), output);
  options.request_timeout_seconds = static_cast<int>(*timeout);

  serve::Server server(options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started, output);
  server.Wait();
  // Buffered CLI output only surfaces after shutdown; clients discover
  // the port through --port-file, not this line.
  output->append(pdgf::StrPrintf("serve: shut down cleanly (port %d)\n",
                                 server.port()));
  return 0;
}

// Resolves the daemon port for `request`: an explicit --port or the
// --port-file a daemon wrote.
StatusOr<int> ResolveRequestPort(const ParsedArgs& args) {
  if (args.HasFlag("port")) {
    PDGF_ASSIGN_OR_RETURN(
        int64_t port, CountFlagOr(args, "port", 0, 1, "(a TCP port)"));
    return static_cast<int>(port);
  }
  std::string path = args.FlagOr("port-file", "");
  if (path.empty()) {
    return pdgf::InvalidArgumentError(
        "request requires --port N or --port-file PATH");
  }
  PDGF_ASSIGN_OR_RETURN(std::string text, pdgf::ReadFileToString(path));
  std::string trimmed(pdgf::StripWhitespace(text));
  if (trimmed.empty() ||
      trimmed.find_first_not_of("0123456789") != std::string::npos) {
    return pdgf::ParseError("port file " + path + " does not hold a port");
  }
  return std::atoi(trimmed.c_str());
}

// Runs a streaming job line through the client and reports the result
// (shared by the generate, range and stream request paths).
int RunRequestJob(serve::ServeClient* client, const std::string& line,
                  const ParsedArgs& args, std::string* output) {
  auto job = client->RunJob(line);
  if (!job.ok()) return Fail(job.status(), output);
  if (!job->ok) {
    return Fail(Status(pdgf::StatusCode::kInternal,
                       "job failed: " + job->error_code + ": " +
                           job->error_message),
                output);
  }
  output->append(pdgf::StrPrintf(
      "job %llu ok: %llu rows, %.2f MB in %.3f s\n",
      static_cast<unsigned long long>(job->job_id),
      static_cast<unsigned long long>(job->rows),
      static_cast<double>(job->bytes) / (1024 * 1024), job->seconds));
  for (const serve::ReceivedDigest& digest : job->digests) {
    output->append(pdgf::StrPrintf(
        "  %-24s %12llu rows  digest=%s\n", digest.table.c_str(),
        static_cast<unsigned long long>(digest.rows), digest.hex.c_str()));
  }
  if (args.HasFlag("out")) {
    std::string dir = args.FlagOr("out", "");
    std::string ext = args.FlagOr("format", "csv");
    if (ext.rfind("csv,", 0) == 0) ext = "csv";
    for (const auto& [table, payload] : job->table_payload) {
      Status written =
          pdgf::WriteStringToFile(dir + "/" + table + "." + ext, payload);
      if (!written.ok()) return Fail(written, output);
    }
    output->append("payload written to " + dir + "\n");
  }
  return 0;
}

// Builds the shared "op":"range"/"stream" request fields and validates
// the op-specific flags strictly (a flag for the other op is an error,
// not silently ignored).
StatusOr<std::string> BuildOnTheFlyRequest(const std::string& op,
                                           const ParsedArgs& args) {
  if (!args.HasFlag("model")) {
    return pdgf::InvalidArgumentError("--op " + op +
                                      " requires --model tpch|ssb|imdb");
  }
  if (!args.HasFlag("table")) {
    return pdgf::InvalidArgumentError("--op " + op +
                                      " requires --table NAME");
  }
  const char* range_only[] = {"first-row", "row-count"};
  const char* stream_only[] = {"rate", "events", "snapshot"};
  for (const char* flag : range_only) {
    if (op != "range" && args.HasFlag(flag)) {
      return pdgf::InvalidArgumentError(std::string("--") + flag +
                                        " is only valid with --op range");
    }
  }
  for (const char* flag : stream_only) {
    if (op != "stream" && args.HasFlag(flag)) {
      return pdgf::InvalidArgumentError(std::string("--") + flag +
                                        " is only valid with --op stream");
    }
  }
  std::string line = "{\"op\":\"" + op + "\",\"model\":\"" +
                     serve::JsonEscape(args.FlagOr("model", "")) +
                     "\",\"table\":\"" +
                     serve::JsonEscape(args.FlagOr("table", "")) + "\"";
  if (args.HasFlag("sf")) {
    const std::string sf = args.FlagOr("sf", "");
    char* end = nullptr;
    std::strtod(sf.c_str(), &end);
    if (sf.empty() || end != sf.c_str() + sf.size()) {
      return pdgf::InvalidArgumentError("--sf expects a number, got '" + sf +
                                        "'");
    }
    line += ",\"scale_factor\":" + sf;
  }
  line += ",\"format\":\"" + serve::JsonEscape(args.FlagOr("format", "csv")) +
          "\"";
  PDGF_ASSIGN_OR_RETURN(
      int64_t update,
      CountFlagOr(args, "update", 0, 0, "(abstract time unit)"));
  if (update > 0) {
    line += pdgf::StrPrintf(",\"update\":%lld",
                            static_cast<long long>(update));
  }
  if (op == "range") {
    PDGF_ASSIGN_OR_RETURN(
        int64_t first_row,
        CountFlagOr(args, "first-row", 0, 0, "(0-based first row)"));
    PDGF_ASSIGN_OR_RETURN(
        int64_t row_count,
        CountFlagOr(args, "row-count", 0, 1, "(rows to stream)"));
    if (row_count == 0) {
      return pdgf::InvalidArgumentError(
          "--op range requires --row-count N (rows to stream)");
    }
    line += pdgf::StrPrintf(",\"first_row\":%lld,\"row_count\":%lld",
                            static_cast<long long>(first_row),
                            static_cast<long long>(row_count));
  } else {
    PDGF_ASSIGN_OR_RETURN(
        int64_t rate,
        CountFlagOr(args, "rate", 0, 0, "(events per second; 0 = full "
                                        "speed)"));
    PDGF_ASSIGN_OR_RETURN(
        int64_t events,
        CountFlagOr(args, "events", 0, 0, "(stop after N events; 0 = all)"));
    if (rate > 0) {
      line += pdgf::StrPrintf(",\"rate\":%lld", static_cast<long long>(rate));
    }
    if (events > 0) {
      line += pdgf::StrPrintf(",\"events\":%lld",
                              static_cast<long long>(events));
    }
    if (args.HasFlag("snapshot")) line += ",\"snapshot\":true";
  }
  if (args.HasFlag("digests")) line += ",\"digests\":true";
  line += "}";
  return line;
}

// One-shot client for the serve daemon: control ops print the response
// line; generate/range/stream requests stream the job, discarding
// payload bytes unless --out DIR is given.
int CmdRequest(const ParsedArgs& args, std::string* output) {
  // Validate range/stream flags BEFORE dialing the daemon so a bad
  // invocation fails the same way with or without a server running.
  const std::string op = args.FlagOr("op", "");
  pdgf::StatusOr<std::string> onthefly_line = std::string();
  if (op == "range" || op == "stream") {
    onthefly_line = BuildOnTheFlyRequest(op, args);
    if (!onthefly_line.ok()) return Fail(onthefly_line.status(), output);
  } else if (!op.empty()) {
    const char* streaming_only[] = {"table",  "first-row", "row-count",
                                    "rate",   "events",    "snapshot"};
    for (const char* flag : streaming_only) {
      if (args.HasFlag(flag)) {
        return Fail(pdgf::InvalidArgumentError(
                        std::string("--") + flag +
                        " is only valid with --op range|stream"),
                    output);
      }
    }
  }

  auto port = ResolveRequestPort(args);
  if (!port.ok()) return Fail(port.status(), output);
  auto client = serve::ServeClient::Connect(
      *port, args.FlagOr("host", "127.0.0.1"));
  if (!client.ok()) return Fail(client.status(), output);

  if (args.HasFlag("op")) {
    if (op == "range" || op == "stream") {
      return RunRequestJob(&*client, *onthefly_line, args, output);
    }
    std::string line = "{\"op\":\"" + serve::JsonEscape(op) + "\"";
    if (args.HasFlag("job")) {
      auto job = CountFlagOr(args, "job", 0, 1, "(a job id)");
      if (!job.ok()) return Fail(job.status(), output);
      line += pdgf::StrPrintf(",\"job\":%lld",
                              static_cast<long long>(*job));
    }
    line += "}";
    auto response = client->Request(line);
    if (!response.ok()) return Fail(response.status(), output);
    output->append(*response + "\n");
    return 0;
  }

  if (!args.HasFlag("model")) {
    return Fail(pdgf::InvalidArgumentError(
                    "request needs --model tpch|ssb|imdb or --op "
                    "metrics|ping|cancel|shutdown|range|stream"),
                output);
  }
  std::string line =
      "{\"model\":\"" + serve::JsonEscape(args.FlagOr("model", "")) + "\"";
  if (args.HasFlag("sf")) {
    const std::string sf = args.FlagOr("sf", "");
    char* end = nullptr;
    std::strtod(sf.c_str(), &end);
    if (sf.empty() || end != sf.c_str() + sf.size()) {
      return Fail(pdgf::InvalidArgumentError("--sf expects a number, got '" +
                                             sf + "'"),
                  output);
    }
    line += ",\"scale_factor\":" + sf;
  }
  line += ",\"format\":\"" + serve::JsonEscape(args.FlagOr("format", "csv")) +
          "\"";
  auto nodes = CountFlagOr(args, "nodes", 1, 1, "(node count)");
  if (!nodes.ok()) return Fail(nodes.status(), output);
  auto node_id = CountFlagOr(args, "node-id", 0, 0, "(0-based node id)");
  if (!node_id.ok()) return Fail(node_id.status(), output);
  auto workers = CountFlagOr(args, "workers", 1, 1, "(worker threads)");
  if (!workers.ok()) return Fail(workers.status(), output);
  auto update = CountFlagOr(args, "update", 0, 0, "(abstract time unit)");
  if (!update.ok()) return Fail(update.status(), output);
  line += pdgf::StrPrintf(
      ",\"node_count\":%lld,\"node_id\":%lld,\"workers\":%lld",
      static_cast<long long>(*nodes), static_cast<long long>(*node_id),
      static_cast<long long>(*workers));
  if (*update > 0) {
    line += pdgf::StrPrintf(",\"update\":%lld",
                            static_cast<long long>(*update));
  }
  if (args.HasFlag("digests")) line += ",\"digests\":true";
  line += "}";

  return RunRequestJob(&*client, line, args, output);
}

int CmdDictionaries(std::string* output) {
  for (const std::string& name : pdgf::BuiltinDictionaryNames()) {
    const pdgf::Dictionary* dictionary =
        pdgf::FindBuiltinDictionary(name);
    output->append(pdgf::StrPrintf("  %-22s %6zu entries\n", name.c_str(),
                                   dictionary->size()));
  }
  return 0;
}

}  // namespace

std::string UsageText() {
  return
      "dbsynthpp — synthesize big, realistic test data (PDGF + DBSynth)\n"
      "\n"
      "usage: dbsynthpp <command> [args]\n"
      "  generate (<model.xml> | --model tpch|ssb|imdb)\n"
      "           [--sf X] [--format csv|tsv|json|xml|sql]\n"
      "           [--out DIR] [--workers N] [--package-rows N]\n"
      "           [--nodes N --node-id I] [--update U] [--unsorted]\n"
      "           [--digests] [--metrics-out FILE.json] [--trace]\n"
      "           [--writer-threads N] [--scheduler atomic|striped|numa]\n"
      "           [--io-buffers N] [--numa off|on|interleave]\n"
      "  preview  <model.xml> <table> [--rows N] [--sf X]\n"
      "  ddl      (<model.xml> | --model tpch|ssb|imdb)\n"
      "  validate <model.xml> [--sf X]\n"
      "  extract  --schema schema.sql --csv-dir DIR --out model.xml\n"
      "           [--sample FRACTION] [--artifacts DIR] [--seed S]\n"
      "           [--null-marker M] [--explain] [--histograms]\n"
      "  synthesize --schema schema.sql --csv-dir DIR [--out-dir DIR]\n"
      "           [--sf X] [--sample FRACTION] [--histograms]\n"
      "           [--model-out model.xml] [--seed S]\n"
      "  load     --schema schema.sql --csv-dir DIR\n"
      "           [--engine heap|paged] [--data-dir DIR]\n"
      "           [--null-marker M] [--digests]\n"
      "  generate-load (<model.xml> | --model tpch|ssb|imdb) [--sf X]\n"
      "           [--engine heap|paged] [--data-dir DIR]\n"
      "           [--row-inserts] [--digests]\n"
      "  query    (<model.xml> | --model tpch|ssb|imdb) <SQL>\n"
      "           [--sf X] [--update U]\n"
      "  stream   (<model.xml> | --model tpch|ssb|imdb) --table T\n"
      "           [--sf X] [--snapshot] [--first-update U]\n"
      "           [--last-update U] [--events N] [--format F]\n"
      "           [--out FILE]\n"
      "  workload <model.xml> [--count N] [--seed S] [--execute]\n"
      "  verify   (<model.xml> | --model tpch|ssb|imdb) [--sf X]\n"
      "           [--golden FILE] [--bless FILE] [--quick]\n"
      "           [--streams] [--stream-golden FILE]\n"
      "           [--stream-bless FILE]\n"
      "           [--cluster-nodes N] [--inject-perturbation]\n"
      "           [--metrics-out FILE.json]\n"
      "  serve    [--port N] [--port-file PATH] [--max-jobs N]\n"
      "           [--max-connections N] [--max-workers N]\n"
      "           [--writer-threads N] [--package-rows N]\n"
      "           [--request-timeout SECONDS]\n"
      "  request  (--port N | --port-file PATH) [--host H]\n"
      "           (--model tpch|ssb|imdb [--sf X] [--format F]\n"
      "            [--nodes N --node-id I] [--workers N] [--update U]\n"
      "            [--digests] [--out DIR]\n"
      "            | --op metrics|ping|cancel|shutdown [--job N]\n"
      "            | --op range --model M --table T --row-count N\n"
      "              [--first-row N] [--sf X] [--update U] [--digests]\n"
      "            | --op stream --model M --table T [--rate N]\n"
      "              [--events N] [--snapshot] [--update U] [--digests])\n"
      "  dictionaries\n";
}

int RunCli(const std::vector<std::string>& args, std::string* output) {
  if (args.empty()) {
    output->append(UsageText());
    return 2;
  }
  const std::string& command = args[0];
  auto parsed = ParseArgs(args, 1);
  if (!parsed.ok()) return Fail(parsed.status(), output);
  if (command == "generate") return CmdGenerate(*parsed, output);
  if (command == "preview") return CmdPreview(*parsed, output);
  if (command == "ddl") return CmdDdl(*parsed, output);
  if (command == "validate") return CmdValidate(*parsed, output);
  if (command == "extract") return CmdExtract(*parsed, output);
  if (command == "synthesize") return CmdSynthesize(*parsed, output);
  if (command == "load") return CmdLoad(*parsed, output);
  if (command == "generate-load") return CmdGenerateLoad(*parsed, output);
  if (command == "query") return CmdQuery(*parsed, output);
  if (command == "stream") return CmdStream(*parsed, output);
  if (command == "workload") return CmdWorkload(*parsed, output);
  if (command == "verify") return CmdVerify(*parsed, output);
  if (command == "serve") return CmdServe(*parsed, output);
  if (command == "request") return CmdRequest(*parsed, output);
  if (command == "dictionaries") return CmdDictionaries(output);
  if (command == "help" || command == "--help" || command == "-h") {
    output->append(UsageText());
    return 0;
  }
  output->append("unknown command '" + command + "'\n\n" + UsageText());
  return 2;
}

}  // namespace dbsynthpp_cli
