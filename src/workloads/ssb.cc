#include "workloads/ssb.h"

#include "core/generators/generators.h"
#include "core/text/builtin_dictionaries.h"

namespace workloads {

using pdgf::DataType;
using pdgf::Date;
using pdgf::FieldDef;
using pdgf::GeneratorPtr;
using pdgf::PropertyDef;
using pdgf::SchemaDef;
using pdgf::TableDef;

namespace {

FieldDef Field(const char* name, DataType type, int size,
               GeneratorPtr generator, bool primary = false) {
  FieldDef field;
  field.name = name;
  field.type = type;
  field.size = size;
  field.primary = primary;
  field.nullable = !primary;
  field.generator = std::move(generator);
  return field;
}

GeneratorPtr Id(int64_t start = 1) {
  return GeneratorPtr(new pdgf::IdGenerator(start, 1));
}

GeneratorPtr Long(int64_t min, int64_t max) {
  return GeneratorPtr(new pdgf::LongGenerator(min, max));
}

GeneratorPtr Ref(const char* table, const char* field, bool skewed) {
  if (skewed) {
    return GeneratorPtr(new pdgf::DefaultReferenceGenerator(
        table, field, pdgf::DefaultReferenceGenerator::Distribution::kZipf,
        1.0));
  }
  return GeneratorPtr(new pdgf::DefaultReferenceGenerator(table, field));
}

GeneratorPtr Builtin(const char* name, double skew = 0) {
  return GeneratorPtr(new pdgf::DictListGenerator(
      pdgf::FindBuiltinDictionary(name), name,
      pdgf::DictListGenerator::Method::kUniform, skew));
}

GeneratorPtr Money(double min, double max) {
  return GeneratorPtr(new pdgf::DoubleGenerator(min, max, 2));
}

GeneratorPtr Tagged(const char* prefix, int width) {
  std::vector<GeneratorPtr> children;
  children.push_back(GeneratorPtr(
      new pdgf::PaddingGenerator(Id(), width, '0', true)));
  return GeneratorPtr(new pdgf::SequentialGenerator(
      std::move(children), "", std::string(prefix) + "#", ""));
}

}  // namespace

SchemaDef BuildSsbSchema(SsbSkew skew) {
  const bool skewed_refs = skew != SsbSkew::kUniform;
  const bool skewed_values = skew == SsbSkew::kSkewedValues;

  SchemaDef schema;
  schema.name = "ssb";
  schema.seed = 19940525;

  auto property = [&schema](const char* name, const char* expression) {
    PropertyDef def;
    def.name = name;
    def.type = "double";
    def.expression = expression;
    schema.properties.push_back(std::move(def));
  };
  property("SF", "1");
  property("date_size", "2556");  // 7 years, fixed
  property("supplier_size", "2000 * ${SF}");
  property("customer_size", "30000 * ${SF}");
  property("part_size", "200000 * ${SF}");
  property("lineorder_size", "6000000 * ${SF}");

  // date dimension: one row per day from 1992-01-01 ------------------
  {
    TableDef table;
    table.name = "ddate";  // "date" collides with the SQL type keyword
    table.size_expression = "${date_size}";
    table.fields.push_back(
        Field("d_datekey", DataType::kBigInt, 19, Id(0), true));
    // d_date derives from the row: epoch 1992-01-01 is day 8035.
    table.fields.push_back(Field(
        "d_dayofweek", DataType::kInteger, 1,
        GeneratorPtr(new pdgf::FormulaGenerator("(${row} + 3) % 7 + 1", {},
                                                /*round_to_long=*/true))));
    table.fields.push_back(
        Field("d_year", DataType::kInteger, 4,
              GeneratorPtr(new pdgf::FormulaGenerator(
                  "1992 + floor(${row} / 365.25)", {}, true))));
    table.fields.push_back(
        Field("d_month", DataType::kInteger, 2,
              GeneratorPtr(new pdgf::FormulaGenerator(
                  "floor((${row} % 365.25) / 30.44) % 12 + 1", {}, true))));
    schema.tables.push_back(std::move(table));
  }

  // supplier ----------------------------------------------------------
  {
    TableDef table;
    table.name = "supplier";
    table.size_expression = "${supplier_size}";
    table.fields.push_back(
        Field("s_suppkey", DataType::kBigInt, 19, Id(), true));
    table.fields.push_back(
        Field("s_name", DataType::kChar, 25, Tagged("Supplier", 9)));
    table.fields.push_back(
        Field("s_city", DataType::kChar, 10, Builtin("cities")));
    table.fields.push_back(
        Field("s_nation", DataType::kChar, 15, Builtin("nations")));
    table.fields.push_back(
        Field("s_region", DataType::kChar, 12, Builtin("regions")));
    table.fields.push_back(
        Field("s_phone", DataType::kChar, 15,
              GeneratorPtr(new pdgf::PatternStringGenerator(
                  "##-###-###-####"))));
    schema.tables.push_back(std::move(table));
  }

  // customer ----------------------------------------------------------
  {
    TableDef table;
    table.name = "customer";
    table.size_expression = "${customer_size}";
    table.fields.push_back(
        Field("c_custkey", DataType::kBigInt, 19, Id(), true));
    table.fields.push_back(
        Field("c_name", DataType::kVarchar, 25, Tagged("Customer", 9)));
    table.fields.push_back(
        Field("c_city", DataType::kChar, 10, Builtin("cities")));
    table.fields.push_back(
        Field("c_nation", DataType::kChar, 15, Builtin("nations")));
    table.fields.push_back(
        Field("c_region", DataType::kChar, 12, Builtin("regions")));
    table.fields.push_back(Field("c_mktsegment", DataType::kChar, 10,
                                 Builtin("market_segments")));
    schema.tables.push_back(std::move(table));
  }

  // part ---------------------------------------------------------------
  {
    TableDef table;
    table.name = "part";
    table.size_expression = "${part_size}";
    table.fields.push_back(
        Field("p_partkey", DataType::kBigInt, 19, Id(), true));
    {
      std::vector<GeneratorPtr> words;
      words.push_back(Builtin("colors"));
      words.push_back(Builtin("colors"));
      table.fields.push_back(
          Field("p_name", DataType::kVarchar, 22,
                GeneratorPtr(new pdgf::SequentialGenerator(
                    std::move(words), " ", "", ""))));
    }
    {
      std::vector<GeneratorPtr> children;
      children.push_back(Long(1, 5));
      table.fields.push_back(Field(
          "p_mfgr", DataType::kChar, 6,
          GeneratorPtr(new pdgf::SequentialGenerator(std::move(children),
                                                     "", "MFGR#", ""))));
    }
    {
      std::vector<GeneratorPtr> children;
      children.push_back(Long(1, 5));
      children.push_back(Long(1, 5));
      table.fields.push_back(Field(
          "p_category", DataType::kChar, 7,
          GeneratorPtr(new pdgf::SequentialGenerator(std::move(children),
                                                     "", "MFGR#", ""))));
    }
    table.fields.push_back(
        Field("p_color", DataType::kVarchar, 11,
              Builtin("colors", skewed_values ? 0.9 : 0)));
    table.fields.push_back(
        Field("p_size", DataType::kInteger, 2, Long(1, 50)));
    schema.tables.push_back(std::move(table));
  }

  // lineorder (the fact table) -----------------------------------------
  {
    TableDef table;
    table.name = "lineorder";
    table.size_expression = "${lineorder_size}";
    table.fields.push_back(
        Field("lo_orderkey", DataType::kBigInt, 19,
              GeneratorPtr(new pdgf::FormulaGenerator(
                  "floor(${row}/4)+1", {}, true))));
    table.fields.push_back(
        Field("lo_linenumber", DataType::kInteger, 1,
              GeneratorPtr(new pdgf::FormulaGenerator("${row} % 4 + 1", {},
                                                      true))));
    table.fields.push_back(Field("lo_custkey", DataType::kBigInt, 19,
                                 Ref("customer", "c_custkey",
                                     skewed_refs)));
    table.fields.push_back(Field("lo_partkey", DataType::kBigInt, 19,
                                 Ref("part", "p_partkey", skewed_refs)));
    table.fields.push_back(Field("lo_suppkey", DataType::kBigInt, 19,
                                 Ref("supplier", "s_suppkey",
                                     skewed_refs)));
    table.fields.push_back(Field("lo_orderdatekey", DataType::kBigInt, 19,
                                 Ref("ddate", "d_datekey", false)));
    // Values: uniform in the spec; Zipf-clustered in the skewed-values
    // variant (most rows share few quantity/discount points).
    if (skewed_values) {
      auto quantities = std::make_shared<pdgf::Dictionary>();
      for (int q = 1; q <= 50; ++q) {
        quantities->Add(std::to_string(q));
      }
      quantities->Finalize();
      table.fields.push_back(Field(
          "lo_quantity", DataType::kInteger, 2,
          GeneratorPtr(new pdgf::DictListGenerator(
              std::move(quantities), "",
              pdgf::DictListGenerator::Method::kCumulative, 1.2))));
      auto discounts = std::make_shared<pdgf::Dictionary>();
      for (int d = 0; d <= 10; ++d) {
        discounts->Add(std::to_string(d));
      }
      discounts->Finalize();
      table.fields.push_back(Field(
          "lo_discount", DataType::kInteger, 2,
          GeneratorPtr(new pdgf::DictListGenerator(
              std::move(discounts), "",
              pdgf::DictListGenerator::Method::kCumulative, 1.2))));
    } else {
      table.fields.push_back(
          Field("lo_quantity", DataType::kInteger, 2, Long(1, 50)));
      table.fields.push_back(
          Field("lo_discount", DataType::kInteger, 2, Long(0, 10)));
    }
    table.fields.push_back(Field("lo_extendedprice", DataType::kDecimal,
                                 15, Money(900.0, 104950.0)));
    table.fields.push_back(
        Field("lo_revenue", DataType::kDecimal, 15,
              Money(800.0, 104000.0)));
    table.fields.push_back(Field("lo_shipmode", DataType::kChar, 10,
                                 Builtin("ship_modes")));
    schema.tables.push_back(std::move(table));
  }

  return schema;
}

}  // namespace workloads
