#ifndef DBSYNTHPP_WORKLOADS_BIGBENCH_H_
#define DBSYNTHPP_WORKLOADS_BIGBENCH_H_

#include "core/schema.h"

namespace workloads {

// A BigBench-style big-data retail model (paper §4 generates a BigBench
// data set for the Figure-4 scale-out experiment; [7]): structured retail
// tables plus the semi-structured clickstream and unstructured product
// reviews that characterize the benchmark, including the
// structured-to-text references the paper highlights against BDGS
// (§6: "references from structured data into text").
//
// Tables (rows at ${SF} = 1):
//   customer          100000   demographics, semantic generators
//   item               18000   categories, prices
//   store                 12
//   web_page              60
//   web_sales         500000   fact table referencing all dimensions
//   web_clickstreams 2000000   semi-structured click events
//   product_reviews   150000   free-text reviews (Markov) referencing items
pdgf::SchemaDef BuildBigBenchSchema();

}  // namespace workloads

#endif  // DBSYNTHPP_WORKLOADS_BIGBENCH_H_
