#include "workloads/imdb.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/generators/generators.h"
#include "core/text/builtin_dictionaries.h"
#include "core/text/markov_model.h"
#include "minidb/sql.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workloads/ssb.h"
#include "workloads/tpch.h"

namespace workloads {

using pdgf::Status;
using pdgf::Value;

namespace {

constexpr const char* kDdl = R"sql(
CREATE TABLE title (
  title_id BIGINT PRIMARY KEY,
  title VARCHAR(100) NOT NULL,
  production_year INTEGER,
  genre VARCHAR(20),
  runtime_minutes INTEGER,
  plot VARCHAR(2000)
);
CREATE TABLE person (
  person_id BIGINT PRIMARY KEY,
  name VARCHAR(60) NOT NULL,
  birth_year INTEGER,
  gender CHAR(1)
);
CREATE TABLE cast_info (
  cast_id BIGINT PRIMARY KEY,
  title_id BIGINT NOT NULL REFERENCES title(title_id),
  person_id BIGINT NOT NULL REFERENCES person(person_id),
  role VARCHAR(20),
  billing_position INTEGER
);
CREATE TABLE movie_rating (
  rating_id BIGINT PRIMARY KEY,
  title_id BIGINT NOT NULL REFERENCES title(title_id),
  rating DOUBLE,
  votes INTEGER
);
)sql";

const char* const kGenres[] = {"Drama",  "Comedy",   "Action", "Thriller",
                               "Horror", "Romance",  "Sci-Fi", "Documentary",
                               "Crime",  "Animation"};
const char* const kRoles[] = {"actor",   "actress", "director",
                              "producer", "writer",  "composer"};

}  // namespace

Status PopulateImdbDatabase(minidb::Database* database, double scale,
                            uint64_t seed) {
  {
    auto created = minidb::ExecuteSqlScript(database, kDdl);
    if (!created.ok()) return created.status();
  }

  const uint64_t titles = static_cast<uint64_t>(2000 * scale) + 1;
  const uint64_t persons = static_cast<uint64_t>(3000 * scale) + 1;
  const uint64_t casts = static_cast<uint64_t>(8000 * scale) + 1;
  const uint64_t ratings = static_cast<uint64_t>(1600 * scale) + 1;

  pdgf::Xorshift64 rng(seed);
  const pdgf::Dictionary* adjectives =
      pdgf::FindBuiltinDictionary("adjectives");
  const pdgf::Dictionary* nouns = pdgf::FindBuiltinDictionary("nouns");
  const pdgf::Dictionary* first_names =
      pdgf::FindBuiltinDictionary("first_names");
  const pdgf::Dictionary* last_names =
      pdgf::FindBuiltinDictionary("last_names");
  pdgf::MarkovModel plots;
  plots.AddSample(pdgf::BuiltinCommentCorpus());
  plots.Finalize();

  minidb::Table* title = database->GetTable("title");
  for (uint64_t i = 0; i < titles; ++i) {
    minidb::Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i + 1)));
    std::string name = "The " + adjectives->SampleUniform(&rng) + " " +
                       nouns->SampleUniform(&rng);
    if (rng.NextDouble() < 0.2) {
      name += pdgf::StrPrintf(" %d", static_cast<int>(rng.NextInRange(2, 5)));
    }
    row.push_back(Value::String(std::move(name)));
    // 8% of production years unknown.
    row.push_back(rng.NextDouble() < 0.08
                      ? Value::Null()
                      : Value::Int(rng.NextInRange(1920, 2014)));
    row.push_back(
        Value::String(kGenres[rng.NextBounded(std::size(kGenres))]));
    row.push_back(Value::Int(rng.NextInRange(60, 210)));
    // 15% of plots missing; the rest free text.
    row.push_back(rng.NextDouble() < 0.15
                      ? Value::Null()
                      : Value::String(plots.Generate(&rng, 15, 80)));
    PDGF_RETURN_IF_ERROR(title->Insert(std::move(row)));
  }

  minidb::Table* person = database->GetTable("person");
  for (uint64_t i = 0; i < persons; ++i) {
    minidb::Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i + 1)));
    row.push_back(Value::String(first_names->SampleUniform(&rng) + " " +
                                last_names->SampleUniform(&rng)));
    row.push_back(rng.NextDouble() < 0.25
                      ? Value::Null()
                      : Value::Int(rng.NextInRange(1900, 1995)));
    row.push_back(Value::String(rng.NextDouble() < 0.5 ? "M" : "F"));
    PDGF_RETURN_IF_ERROR(person->Insert(std::move(row)));
  }

  minidb::Table* cast_info = database->GetTable("cast_info");
  for (uint64_t i = 0; i < casts; ++i) {
    minidb::Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i + 1)));
    // Popular movies accumulate more cast entries (mild skew via min of
    // two uniforms).
    uint64_t t = std::min(rng.NextBounded(titles), rng.NextBounded(titles));
    row.push_back(Value::Int(static_cast<int64_t>(t + 1)));
    row.push_back(
        Value::Int(static_cast<int64_t>(rng.NextBounded(persons) + 1)));
    row.push_back(Value::String(kRoles[rng.NextBounded(std::size(kRoles))]));
    row.push_back(Value::Int(rng.NextInRange(1, 30)));
    PDGF_RETURN_IF_ERROR(cast_info->Insert(std::move(row)));
  }

  minidb::Table* movie_rating = database->GetTable("movie_rating");
  for (uint64_t i = 0; i < ratings; ++i) {
    minidb::Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i + 1)));
    row.push_back(
        Value::Int(static_cast<int64_t>(rng.NextBounded(titles) + 1)));
    // Ratings cluster around 6.5.
    double r = 6.5 + rng.NextGaussian() * 1.4;
    if (r < 1) r = 1;
    if (r > 10) r = 10;
    row.push_back(Value::Double(r));
    row.push_back(Value::Int(rng.NextInRange(5, 2000000)));
    PDGF_RETURN_IF_ERROR(movie_rating->Insert(std::move(row)));
  }

  return Status::Ok();
}

namespace {

using pdgf::DataType;
using pdgf::FieldDef;
using pdgf::GeneratorPtr;
using pdgf::PropertyDef;
using pdgf::SchemaDef;
using pdgf::TableDef;

FieldDef ModelField(const char* name, DataType type, int size,
                    GeneratorPtr generator, bool primary = false) {
  FieldDef field;
  field.name = name;
  field.type = type;
  field.size = size;
  field.primary = primary;
  field.nullable = !primary;
  field.generator = std::move(generator);
  return field;
}

GeneratorPtr ModelId() { return GeneratorPtr(new pdgf::IdGenerator(1, 1)); }

GeneratorPtr ModelLong(int64_t min, int64_t max) {
  return GeneratorPtr(new pdgf::LongGenerator(min, max));
}

GeneratorPtr ModelRef(const char* table, const char* field) {
  return GeneratorPtr(new pdgf::DefaultReferenceGenerator(table, field));
}

GeneratorPtr ModelBuiltinDict(const char* name) {
  return GeneratorPtr(new pdgf::DictListGenerator(
      pdgf::FindBuiltinDictionary(name), name,
      pdgf::DictListGenerator::Method::kUniform, 0));
}

// Inline dictionary over a fixed entry list (genres, roles, genders).
GeneratorPtr ModelInlineDict(std::vector<const char*> entries) {
  auto dictionary = std::make_shared<pdgf::Dictionary>();
  for (const char* entry : entries) {
    dictionary->Add(entry);
  }
  dictionary->Finalize();
  return GeneratorPtr(new pdgf::DictListGenerator(
      std::move(dictionary), "", pdgf::DictListGenerator::Method::kUniform,
      0));
}

// Shared plot Markov model, trained once on the builtin corpus (same
// pattern as the TPC-H comment model).
std::shared_ptr<const pdgf::MarkovModel> PlotModel() {
  static const auto& model = *new std::shared_ptr<const pdgf::MarkovModel>(
      [] {
        auto m = std::make_shared<pdgf::MarkovModel>();
        m->AddSample(pdgf::BuiltinCommentCorpus());
        m->Finalize();
        return m;
      }());
  return model;
}

}  // namespace

SchemaDef BuildImdbSchema() {
  SchemaDef schema;
  schema.name = "imdb";
  schema.seed = 20150531;

  auto property = [&schema](const char* name, const char* expression) {
    PropertyDef def;
    def.name = name;
    def.type = "double";
    def.expression = expression;
    schema.properties.push_back(std::move(def));
  };
  property("SF", "1");
  property("title_size", "2000 * ${SF}");
  property("person_size", "3000 * ${SF}");
  property("cast_size", "8000 * ${SF}");
  property("rating_size", "1600 * ${SF}");

  // title -------------------------------------------------------------
  {
    TableDef table;
    table.name = "title";
    table.size_expression = "${title_size}";
    table.fields.push_back(
        ModelField("title_id", DataType::kBigInt, 19, ModelId(), true));
    // "The <adjective> <noun>" movie names.
    std::vector<GeneratorPtr> name_parts;
    name_parts.push_back(ModelBuiltinDict("adjectives"));
    name_parts.push_back(ModelBuiltinDict("nouns"));
    table.fields.push_back(ModelField(
        "title", DataType::kVarchar, 100,
        GeneratorPtr(new pdgf::SequentialGenerator(std::move(name_parts),
                                                   " ", "The ", ""))));
    table.fields.push_back(ModelField(
        "production_year", DataType::kInteger, 4,
        GeneratorPtr(new pdgf::NullGenerator(0.08, ModelLong(1920, 2014)))));
    table.fields.push_back(ModelField(
        "genre", DataType::kVarchar, 20,
        ModelInlineDict({"Drama", "Comedy", "Action", "Thriller", "Horror",
                         "Romance", "Sci-Fi", "Documentary", "Crime",
                         "Animation"})));
    table.fields.push_back(ModelField("runtime_minutes", DataType::kInteger,
                                      3, ModelLong(60, 210)));
    table.fields.push_back(ModelField(
        "plot", DataType::kVarchar, 2000,
        GeneratorPtr(new pdgf::NullGenerator(
            0.15, GeneratorPtr(new pdgf::MarkovChainGenerator(
                      PlotModel(), 15, 80))))));
    schema.tables.push_back(std::move(table));
  }

  // person ------------------------------------------------------------
  {
    TableDef table;
    table.name = "person";
    table.size_expression = "${person_size}";
    table.fields.push_back(
        ModelField("person_id", DataType::kBigInt, 19, ModelId(), true));
    table.fields.push_back(ModelField("name", DataType::kVarchar, 60,
                                      GeneratorPtr(new pdgf::NameGenerator())));
    table.fields.push_back(ModelField(
        "birth_year", DataType::kInteger, 4,
        GeneratorPtr(new pdgf::NullGenerator(0.25, ModelLong(1900, 1995)))));
    table.fields.push_back(ModelField("gender", DataType::kChar, 1,
                                      ModelInlineDict({"M", "F"})));
    schema.tables.push_back(std::move(table));
  }

  // cast_info (reference-heavy N:M) ------------------------------------
  {
    TableDef table;
    table.name = "cast_info";
    table.size_expression = "${cast_size}";
    table.fields.push_back(
        ModelField("cast_id", DataType::kBigInt, 19, ModelId(), true));
    // Popular titles accumulate most cast entries: Zipf-skewed computed
    // reference, exercising the Zipf reference path in the digests.
    table.fields.push_back(ModelField(
        "title_id", DataType::kBigInt, 19,
        GeneratorPtr(new pdgf::DefaultReferenceGenerator(
            "title", "title_id",
            pdgf::DefaultReferenceGenerator::Distribution::kZipf, 0.8))));
    table.fields.push_back(ModelField("person_id", DataType::kBigInt, 19,
                                      ModelRef("person", "person_id")));
    table.fields.push_back(ModelField(
        "role", DataType::kVarchar, 20,
        ModelInlineDict({"actor", "actress", "director", "producer",
                         "writer", "composer"})));
    table.fields.push_back(ModelField("billing_position",
                                      DataType::kInteger, 2,
                                      ModelLong(1, 30)));
    schema.tables.push_back(std::move(table));
  }

  // movie_rating -------------------------------------------------------
  {
    TableDef table;
    table.name = "movie_rating";
    table.size_expression = "${rating_size}";
    table.fields.push_back(
        ModelField("rating_id", DataType::kBigInt, 19, ModelId(), true));
    table.fields.push_back(ModelField("title_id", DataType::kBigInt, 19,
                                      ModelRef("title", "title_id")));
    table.fields.push_back(ModelField(
        "rating", DataType::kDouble, 4,
        GeneratorPtr(new pdgf::DoubleGenerator(1.0, 10.0, 1))));
    table.fields.push_back(ModelField("votes", DataType::kInteger, 7,
                                      ModelLong(5, 2000000)));
    schema.tables.push_back(std::move(table));
  }

  return schema;
}

pdgf::StatusOr<pdgf::SchemaDef> BuildBundledModel(std::string_view name) {
  if (pdgf::EqualsIgnoreCase(name, "tpch")) return BuildTpchSchema();
  if (pdgf::EqualsIgnoreCase(name, "ssb")) return BuildSsbSchema();
  if (pdgf::EqualsIgnoreCase(name, "imdb")) return BuildImdbSchema();
  return pdgf::NotFoundError("no bundled model '" + std::string(name) +
                             "' (expected tpch, ssb or imdb)");
}

}  // namespace workloads
