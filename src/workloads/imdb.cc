#include "workloads/imdb.h"

#include "core/text/builtin_dictionaries.h"
#include "core/text/markov_model.h"
#include "minidb/sql.h"
#include "util/rng.h"
#include "util/strings.h"

namespace workloads {

using pdgf::Status;
using pdgf::Value;

namespace {

constexpr const char* kDdl = R"sql(
CREATE TABLE title (
  title_id BIGINT PRIMARY KEY,
  title VARCHAR(100) NOT NULL,
  production_year INTEGER,
  genre VARCHAR(20),
  runtime_minutes INTEGER,
  plot VARCHAR(2000)
);
CREATE TABLE person (
  person_id BIGINT PRIMARY KEY,
  name VARCHAR(60) NOT NULL,
  birth_year INTEGER,
  gender CHAR(1)
);
CREATE TABLE cast_info (
  cast_id BIGINT PRIMARY KEY,
  title_id BIGINT NOT NULL REFERENCES title(title_id),
  person_id BIGINT NOT NULL REFERENCES person(person_id),
  role VARCHAR(20),
  billing_position INTEGER
);
CREATE TABLE movie_rating (
  rating_id BIGINT PRIMARY KEY,
  title_id BIGINT NOT NULL REFERENCES title(title_id),
  rating DOUBLE,
  votes INTEGER
);
)sql";

const char* const kGenres[] = {"Drama",  "Comedy",   "Action", "Thriller",
                               "Horror", "Romance",  "Sci-Fi", "Documentary",
                               "Crime",  "Animation"};
const char* const kRoles[] = {"actor",   "actress", "director",
                              "producer", "writer",  "composer"};

}  // namespace

Status PopulateImdbDatabase(minidb::Database* database, double scale,
                            uint64_t seed) {
  {
    auto created = minidb::ExecuteSqlScript(database, kDdl);
    if (!created.ok()) return created.status();
  }

  const uint64_t titles = static_cast<uint64_t>(2000 * scale) + 1;
  const uint64_t persons = static_cast<uint64_t>(3000 * scale) + 1;
  const uint64_t casts = static_cast<uint64_t>(8000 * scale) + 1;
  const uint64_t ratings = static_cast<uint64_t>(1600 * scale) + 1;

  pdgf::Xorshift64 rng(seed);
  const pdgf::Dictionary* adjectives =
      pdgf::FindBuiltinDictionary("adjectives");
  const pdgf::Dictionary* nouns = pdgf::FindBuiltinDictionary("nouns");
  const pdgf::Dictionary* first_names =
      pdgf::FindBuiltinDictionary("first_names");
  const pdgf::Dictionary* last_names =
      pdgf::FindBuiltinDictionary("last_names");
  pdgf::MarkovModel plots;
  plots.AddSample(pdgf::BuiltinCommentCorpus());
  plots.Finalize();

  minidb::Table* title = database->GetTable("title");
  for (uint64_t i = 0; i < titles; ++i) {
    minidb::Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i + 1)));
    std::string name = "The " + adjectives->SampleUniform(&rng) + " " +
                       nouns->SampleUniform(&rng);
    if (rng.NextDouble() < 0.2) {
      name += pdgf::StrPrintf(" %d", static_cast<int>(rng.NextInRange(2, 5)));
    }
    row.push_back(Value::String(std::move(name)));
    // 8% of production years unknown.
    row.push_back(rng.NextDouble() < 0.08
                      ? Value::Null()
                      : Value::Int(rng.NextInRange(1920, 2014)));
    row.push_back(
        Value::String(kGenres[rng.NextBounded(std::size(kGenres))]));
    row.push_back(Value::Int(rng.NextInRange(60, 210)));
    // 15% of plots missing; the rest free text.
    row.push_back(rng.NextDouble() < 0.15
                      ? Value::Null()
                      : Value::String(plots.Generate(&rng, 15, 80)));
    PDGF_RETURN_IF_ERROR(title->Insert(std::move(row)));
  }

  minidb::Table* person = database->GetTable("person");
  for (uint64_t i = 0; i < persons; ++i) {
    minidb::Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i + 1)));
    row.push_back(Value::String(first_names->SampleUniform(&rng) + " " +
                                last_names->SampleUniform(&rng)));
    row.push_back(rng.NextDouble() < 0.25
                      ? Value::Null()
                      : Value::Int(rng.NextInRange(1900, 1995)));
    row.push_back(Value::String(rng.NextDouble() < 0.5 ? "M" : "F"));
    PDGF_RETURN_IF_ERROR(person->Insert(std::move(row)));
  }

  minidb::Table* cast_info = database->GetTable("cast_info");
  for (uint64_t i = 0; i < casts; ++i) {
    minidb::Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i + 1)));
    // Popular movies accumulate more cast entries (mild skew via min of
    // two uniforms).
    uint64_t t = std::min(rng.NextBounded(titles), rng.NextBounded(titles));
    row.push_back(Value::Int(static_cast<int64_t>(t + 1)));
    row.push_back(
        Value::Int(static_cast<int64_t>(rng.NextBounded(persons) + 1)));
    row.push_back(Value::String(kRoles[rng.NextBounded(std::size(kRoles))]));
    row.push_back(Value::Int(rng.NextInRange(1, 30)));
    PDGF_RETURN_IF_ERROR(cast_info->Insert(std::move(row)));
  }

  minidb::Table* movie_rating = database->GetTable("movie_rating");
  for (uint64_t i = 0; i < ratings; ++i) {
    minidb::Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i + 1)));
    row.push_back(
        Value::Int(static_cast<int64_t>(rng.NextBounded(titles) + 1)));
    // Ratings cluster around 6.5.
    double r = 6.5 + rng.NextGaussian() * 1.4;
    if (r < 1) r = 1;
    if (r > 10) r = 10;
    row.push_back(Value::Double(r));
    row.push_back(Value::Int(rng.NextInRange(5, 2000000)));
    PDGF_RETURN_IF_ERROR(movie_rating->Insert(std::move(row)));
  }

  return Status::Ok();
}

}  // namespace workloads
