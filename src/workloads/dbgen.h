#ifndef DBSYNTHPP_WORKLOADS_DBGEN_H_
#define DBSYNTHPP_WORKLOADS_DBGEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace workloads {

// A hard-coded TPC-H `.tbl` generator in the style of the original TPC
// dbgen: per-table loops, a 48-bit linear-congruential RNG, direct
// snprintf formatting, eager (non-lazy) string assembly, and
// non-transparent parallelization — each parallel instance is an
// independent run that writes its own chunk files (paper §4: "for each
// parallel stream a new instance is started, which writes its own
// files"). It is the comparison baseline of Figure 6 and the §6 example
// of a fast but non-generic, non-adaptable generator.
struct DbgenOptions {
  double scale_factor = 0.01;
  // Output directory; ignored when to_null is set.
  std::string output_dir = "dbgen_out";
  // Non-transparent parallelism: instance `instance_id` of
  // `instance_count` generates its key range into "<table>.tbl.<id>".
  int instance_count = 1;
  int instance_id = 0;
  // Discard bytes instead of writing files (CPU-bound measurement).
  bool to_null = false;
  // Restrict generation to the big tables (orders+lineitem+partsupp),
  // matching quick benchmarking runs.
  bool big_tables_only = false;
};

struct DbgenStats {
  uint64_t rows = 0;
  uint64_t bytes = 0;
  double seconds = 0;
};

// Runs the generator; returns row/byte counts and elapsed time.
pdgf::StatusOr<DbgenStats> RunDbgen(const DbgenOptions& options);

}  // namespace workloads

#endif  // DBSYNTHPP_WORKLOADS_DBGEN_H_
