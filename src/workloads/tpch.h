#ifndef DBSYNTHPP_WORKLOADS_TPCH_H_
#define DBSYNTHPP_WORKLOADS_TPCH_H_

#include "core/schema.h"

namespace workloads {

// The PDGF implementation of the TPC-H data set (paper §4/§5: "our custom
// implementation of the TPC-H data set", structured like the
// auto-generated configuration of Listing 1): all eight tables with the
// standard cardinalities scaled by the ${SF} property, reference
// generators for every foreign key, and Markov-generated comment columns.
//
// Deviations from the official dbgen, documented for honesty:
//  * o_totalprice and l_extendedprice are drawn from the spec's value
//    ranges instead of being aggregated from line items;
//  * partsupp/lineitem key composites are referentially valid but not
//    the exact permutation formulas of the spec;
//  * text fields use this project's dictionaries and Markov corpus.
// The byte volume per row and the schema shape match the spec closely,
// which is what the paper's throughput experiments exercise.
pdgf::SchemaDef BuildTpchSchema();

}  // namespace workloads

#endif  // DBSYNTHPP_WORKLOADS_TPCH_H_
