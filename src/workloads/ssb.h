#ifndef DBSYNTHPP_WORKLOADS_SSB_H_
#define DBSYNTHPP_WORKLOADS_SSB_H_

#include "core/schema.h"

namespace workloads {

// The Star Schema Benchmark data set as a PDGF model. The paper lists
// SSB among PDGF's implemented benchmarks (§2) and cites "Variations of
// the Star Schema Benchmark to Test Data Skew" [19]; the `skew`
// parameter reproduces those variations: reference and value
// distributions switch from the spec's uniform draws to Zipf.
enum class SsbSkew {
  // The original benchmark: uniform foreign keys and values.
  kUniform,
  // Zipf-distributed foreign keys (popular customers/parts/suppliers
  // accumulate most lineorders) — the [19] "skewed references" variant.
  kSkewedReferences,
  // Additionally Zipf-skews categorical values (discounts, quantities
  // cluster on few points) — the [19] "skewed values" variant.
  kSkewedValues,
};

// Tables (rows at ${SF} = 1): date 2556 (fixed, 7 years), supplier
// 2000 * SF, customer 30000 * SF, part 200000 * SF, lineorder
// 6000000 * SF.
pdgf::SchemaDef BuildSsbSchema(SsbSkew skew = SsbSkew::kUniform);

}  // namespace workloads

#endif  // DBSYNTHPP_WORKLOADS_SSB_H_
