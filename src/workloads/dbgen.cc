#include "workloads/dbgen.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/files.h"
#include "util/stopwatch.h"

namespace workloads {
namespace {

// dbgen's RANDOM(): a 48-bit LCG (same multiplier/increment family as the
// original's rnd.c).
class Lcg48 {
 public:
  explicit Lcg48(uint64_t seed) : state_(seed & kMask) {}

  int64_t Next(int64_t low, int64_t high) {
    state_ = (state_ * 0x5DEECE66DULL + 0xB) & kMask;
    if (high <= low) return low;
    return low + static_cast<int64_t>(state_ %
                                      static_cast<uint64_t>(high - low + 1));
  }

 private:
  static constexpr uint64_t kMask = (1ULL << 48) - 1;
  uint64_t state_;
};

const char* const kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                 "HOUSEHOLD", "MACHINERY"};
const char* const kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                   "4-NOT SPECIFIED", "5-LOW"};
const char* const kModes[] = {"AIR", "FOB", "MAIL", "RAIL",
                              "REG AIR", "SHIP", "TRUCK"};
const char* const kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD",
                                  "NONE", "TAKE BACK RETURN"};
const char* const kWords[] = {
    "the", "quick",   "foxes",   "sleep",   "blithely", "regular",
    "deposits", "haggle", "carefully", "final", "requests", "wake",
    "furiously", "across", "silent", "platelets", "express", "ideas",
    "cajole", "accounts", "bold",  "theodolites", "even", "packages"};

// Writer: file-backed or counting-only.
class Out {
 public:
  static pdgf::StatusOr<Out> Make(const DbgenOptions& options,
                                  const std::string& table) {
    Out out;
    if (options.to_null) return out;
    std::string path = pdgf::JoinPath(options.output_dir, table + ".tbl");
    if (options.instance_count > 1) {
      path += "." + std::to_string(options.instance_id + 1);
    }
    out.file_ = fopen(path.c_str(), "wb");
    if (out.file_ == nullptr) {
      return pdgf::IoError("dbgen: cannot create " + path);
    }
    setvbuf(out.file_, nullptr, _IOFBF, 1 << 20);
    return out;
  }

  Out(Out&& other) noexcept : file_(other.file_), bytes_(other.bytes_) {
    other.file_ = nullptr;
  }
  Out(const Out&) = delete;
  Out& operator=(const Out&) = delete;
  Out& operator=(Out&&) = delete;
  ~Out() {
    if (file_ != nullptr) fclose(file_);
  }

  void Write(const char* data, size_t size) {
    if (file_ != nullptr) fwrite(data, 1, size, file_);
    bytes_ += size;
  }

  uint64_t bytes() const { return bytes_; }

 private:
  Out() = default;

  FILE* file_ = nullptr;
  uint64_t bytes_ = 0;
};

// Fills `buffer` with a dbgen-style comment of about `target` chars.
size_t MakeComment(Lcg48* rng, char* buffer, size_t capacity,
                   size_t target) {
  size_t length = 0;
  while (length < target && length + 12 < capacity) {
    const char* word =
        kWords[rng->Next(0, static_cast<int64_t>(std::size(kWords)) - 1)];
    size_t word_length = std::strlen(word);
    if (length > 0) buffer[length++] = ' ';
    std::memcpy(buffer + length, word, word_length);
    length += word_length;
  }
  return length;
}

// Key range of this instance for a table of `rows` rows.
void InstanceRange(uint64_t rows, const DbgenOptions& options,
                   uint64_t* begin, uint64_t* end) {
  uint64_t n = static_cast<uint64_t>(
      options.instance_count < 1 ? 1 : options.instance_count);
  uint64_t i = static_cast<uint64_t>(options.instance_id);
  if (i >= n) i = n - 1;
  *begin = rows * i / n;
  *end = rows * (i + 1) / n;
}

}  // namespace

pdgf::StatusOr<DbgenStats> RunDbgen(const DbgenOptions& options) {
  if (!options.to_null) {
    PDGF_RETURN_IF_ERROR(pdgf::MakeDirectories(options.output_dir));
  }
  pdgf::Stopwatch stopwatch;
  DbgenStats stats;
  double sf = options.scale_factor;
  char line[1024];
  char comment[512];

  const uint64_t suppliers = static_cast<uint64_t>(10000 * sf) + 1;
  const uint64_t parts = static_cast<uint64_t>(200000 * sf) + 1;
  const uint64_t customers = static_cast<uint64_t>(150000 * sf) + 1;
  const uint64_t orders = static_cast<uint64_t>(1500000 * sf) + 1;

  // supplier -----------------------------------------------------------
  if (!options.big_tables_only) {
    PDGF_ASSIGN_OR_RETURN(Out out, Out::Make(options, "supplier"));
    uint64_t begin, end;
    InstanceRange(suppliers, options, &begin, &end);
    for (uint64_t i = begin; i < end; ++i) {
      Lcg48 rng(i * 2 + 17);
      size_t comment_length =
          MakeComment(&rng, comment, sizeof(comment), 60);
      comment[comment_length] = '\0';
      int n = snprintf(
          line, sizeof(line),
          "%" PRIu64 "|Supplier#%09" PRIu64
          "|addr%" PRIu64 "xYzW|%" PRId64 "|%02" PRId64
          "-%03" PRId64 "-%03" PRId64 "-%04" PRId64 "|%" PRId64
          ".%02" PRId64 "|%s\n",
          i + 1, i + 1, i, rng.Next(0, 24), rng.Next(10, 34),
          rng.Next(100, 999), rng.Next(100, 999), rng.Next(1000, 9999),
          rng.Next(-999, 9999), rng.Next(0, 99), comment);
      out.Write(line, static_cast<size_t>(n));
      ++stats.rows;
    }
    stats.bytes += out.bytes();
  }

  // part ---------------------------------------------------------------
  if (!options.big_tables_only) {
    PDGF_ASSIGN_OR_RETURN(Out out, Out::Make(options, "part"));
    uint64_t begin, end;
    InstanceRange(parts, options, &begin, &end);
    for (uint64_t i = begin; i < end; ++i) {
      Lcg48 rng(i * 3 + 29);
      size_t comment_length =
          MakeComment(&rng, comment, sizeof(comment), 12);
      comment[comment_length] = '\0';
      int64_t m = rng.Next(1, 5);
      int n = snprintf(
          line, sizeof(line),
          "%" PRIu64 "|part name %" PRIu64
          "|Manufacturer#%" PRId64 "|Brand#%" PRId64 "%" PRId64
          "|STANDARD PLATED TIN|%" PRId64 "|SM BOX|%" PRIu64
          ".%02" PRIu64 "|%s\n",
          i + 1, i, m, m, rng.Next(1, 5), rng.Next(1, 50),
          (90000 + (i / 10) % 20001 + 100 * (i % 1000)) / 100,
          (90000 + (i / 10) % 20001 + 100 * (i % 1000)) % 100, comment);
      out.Write(line, static_cast<size_t>(n));
      ++stats.rows;
    }
    stats.bytes += out.bytes();
  }

  // partsupp -----------------------------------------------------------
  {
    PDGF_ASSIGN_OR_RETURN(Out out, Out::Make(options, "partsupp"));
    uint64_t begin, end;
    InstanceRange(parts, options, &begin, &end);
    for (uint64_t i = begin; i < end; ++i) {
      for (int s = 0; s < 4; ++s) {
        Lcg48 rng(i * 7 + static_cast<uint64_t>(s) + 3);
        size_t comment_length =
            MakeComment(&rng, comment, sizeof(comment), 120);
        comment[comment_length] = '\0';
        int n = snprintf(line, sizeof(line),
                         "%" PRIu64 "|%" PRId64 "|%" PRId64 "|%" PRId64
                         ".%02" PRId64 "|%s\n",
                         i + 1,
                         rng.Next(1, static_cast<int64_t>(suppliers)),
                         rng.Next(1, 9999), rng.Next(1, 999),
                         rng.Next(0, 99), comment);
        out.Write(line, static_cast<size_t>(n));
        ++stats.rows;
      }
    }
    stats.bytes += out.bytes();
  }

  // customer -----------------------------------------------------------
  if (!options.big_tables_only) {
    PDGF_ASSIGN_OR_RETURN(Out out, Out::Make(options, "customer"));
    uint64_t begin, end;
    InstanceRange(customers, options, &begin, &end);
    for (uint64_t i = begin; i < end; ++i) {
      Lcg48 rng(i * 11 + 41);
      size_t comment_length =
          MakeComment(&rng, comment, sizeof(comment), 70);
      comment[comment_length] = '\0';
      int n = snprintf(
          line, sizeof(line),
          "%" PRIu64 "|Customer#%09" PRIu64 "|addr%" PRIu64
          "IVhzIApeRb|%" PRId64 "|%02" PRId64 "-%03" PRId64 "-%03" PRId64
          "-%04" PRId64 "|%" PRId64 ".%02" PRId64 "|%s|%s\n",
          i + 1, i + 1, i, rng.Next(0, 24), rng.Next(10, 34),
          rng.Next(100, 999), rng.Next(100, 999), rng.Next(1000, 9999),
          rng.Next(-999, 9999), rng.Next(0, 99),
          kSegments[rng.Next(0, 4)], comment);
      out.Write(line, static_cast<size_t>(n));
      ++stats.rows;
    }
    stats.bytes += out.bytes();
  }

  // orders + lineitem (interleaved, exactly like dbgen generates the
  // order with its line items in one pass) --------------------------------
  {
    PDGF_ASSIGN_OR_RETURN(Out orders_out, Out::Make(options, "orders"));
    PDGF_ASSIGN_OR_RETURN(Out lineitem_out, Out::Make(options, "lineitem"));
    uint64_t begin, end;
    InstanceRange(orders, options, &begin, &end);
    for (uint64_t i = begin; i < end; ++i) {
      Lcg48 rng(i * 13 + 7);
      size_t comment_length =
          MakeComment(&rng, comment, sizeof(comment), 48);
      comment[comment_length] = '\0';
      int64_t order_date = rng.Next(0, 2405);  // days since 1992-01-01
      int year = 1992 + static_cast<int>(order_date / 365);
      int month = 1 + static_cast<int>((order_date / 30) % 12);
      int day = 1 + static_cast<int>(order_date % 28);
      int n = snprintf(
          line, sizeof(line),
          "%" PRIu64 "|%" PRId64 "|%c|%" PRId64 ".%02" PRId64
          "|%04d-%02d-%02d|%s|Clerk#%09" PRId64 "|0|%s\n",
          i + 1, rng.Next(1, static_cast<int64_t>(customers)),
          "FOP"[rng.Next(0, 2)], rng.Next(857, 555285), rng.Next(0, 99),
          year, month, day, kPriorities[rng.Next(0, 4)],
          rng.Next(1, 1000), comment);
      orders_out.Write(line, static_cast<size_t>(n));
      ++stats.rows;
      int64_t lines = rng.Next(1, 7);
      for (int64_t l = 0; l < lines; ++l) {
        size_t line_comment_length =
            MakeComment(&rng, comment, sizeof(comment), 26);
        comment[line_comment_length] = '\0';
        int n2 = snprintf(
            line, sizeof(line),
            "%" PRIu64 "|%" PRId64 "|%" PRId64 "|%" PRId64 "|%" PRId64
            "|%" PRId64 ".%02" PRId64 "|0.%02" PRId64 "|0.%02" PRId64
            "|%c|%c|%04d-%02d-%02d|%04d-%02d-%02d|%04d-%02d-%02d|%s|%s|%s\n",
            i + 1, rng.Next(1, static_cast<int64_t>(parts)),
            rng.Next(1, static_cast<int64_t>(suppliers)), l + 1,
            rng.Next(1, 50), rng.Next(900, 104950), rng.Next(0, 99),
            rng.Next(0, 10), rng.Next(0, 8), "RAN"[rng.Next(0, 2)],
            "OF"[rng.Next(0, 1)], year, month, day, year, month, day, year,
            month, day, kInstructs[rng.Next(0, 3)], kModes[rng.Next(0, 6)],
            comment);
        lineitem_out.Write(line, static_cast<size_t>(n2));
        ++stats.rows;
      }
    }
    stats.bytes += orders_out.bytes() + lineitem_out.bytes();
  }

  stats.seconds = stopwatch.ElapsedSeconds();
  return stats;
}

}  // namespace workloads
