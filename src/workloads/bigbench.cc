#include "workloads/bigbench.h"

#include "core/generators/generators.h"
#include "core/text/builtin_dictionaries.h"

namespace workloads {

using pdgf::DataType;
using pdgf::Date;
using pdgf::FieldDef;
using pdgf::GeneratorPtr;
using pdgf::PropertyDef;
using pdgf::SchemaDef;
using pdgf::TableDef;

namespace {

std::shared_ptr<const pdgf::MarkovModel> ReviewModel() {
  static const auto& model = *new std::shared_ptr<const pdgf::MarkovModel>(
      [] {
        auto m = std::make_shared<pdgf::MarkovModel>();
        m->AddSample(pdgf::BuiltinCommentCorpus());
        m->Finalize();
        return m;
      }());
  return model;
}

FieldDef Field(const char* name, DataType type, int size,
               GeneratorPtr generator, bool primary = false) {
  FieldDef field;
  field.name = name;
  field.type = type;
  field.size = size;
  field.primary = primary;
  field.nullable = !primary;
  field.generator = std::move(generator);
  return field;
}

GeneratorPtr Id() { return GeneratorPtr(new pdgf::IdGenerator(1, 1)); }

GeneratorPtr Ref(const char* table, const char* field) {
  return GeneratorPtr(new pdgf::DefaultReferenceGenerator(table, field));
}

GeneratorPtr SkewedRef(const char* table, const char* field, double theta) {
  return GeneratorPtr(new pdgf::DefaultReferenceGenerator(
      table, field, pdgf::DefaultReferenceGenerator::Distribution::kZipf,
      theta));
}

GeneratorPtr Long(int64_t min, int64_t max) {
  return GeneratorPtr(new pdgf::LongGenerator(min, max));
}

GeneratorPtr Money(double min, double max) {
  return GeneratorPtr(new pdgf::DoubleGenerator(min, max, 2));
}

GeneratorPtr Builtin(const char* name) {
  return GeneratorPtr(new pdgf::DictListGenerator(
      pdgf::FindBuiltinDictionary(name), name,
      pdgf::DictListGenerator::Method::kUniform, 0));
}

GeneratorPtr DateIn(int y1, int y2) {
  return GeneratorPtr(new pdgf::DateGenerator(Date::FromCivil(y1, 1, 1),
                                              Date::FromCivil(y2, 12, 31)));
}

}  // namespace

SchemaDef BuildBigBenchSchema() {
  SchemaDef schema;
  schema.name = "bigbench";
  schema.seed = 987654321;

  auto property = [&schema](const char* name, const char* expression) {
    PropertyDef def;
    def.name = name;
    def.type = "double";
    def.expression = expression;
    schema.properties.push_back(std::move(def));
  };
  property("SF", "1");
  property("customer_size", "100000 * ${SF}");
  property("item_size", "18000 * ${SF}");
  property("store_size", "max(12, 12 * ${SF})");
  property("web_page_size", "max(60, 60 * ${SF})");
  property("web_sales_size", "500000 * ${SF}");
  property("web_clickstreams_size", "2000000 * ${SF}");
  property("product_reviews_size", "150000 * ${SF}");

  // customer -------------------------------------------------------------
  {
    TableDef table;
    table.name = "customer";
    table.size_expression = "${customer_size}";
    table.fields.push_back(
        Field("c_customer_sk", DataType::kBigInt, 19, Id(), true));
    table.fields.push_back(Field("c_name", DataType::kVarchar, 50,
                                 GeneratorPtr(new pdgf::NameGenerator())));
    table.fields.push_back(Field("c_email_address", DataType::kVarchar, 60,
                                 GeneratorPtr(new pdgf::EmailGenerator())));
    table.fields.push_back(
        Field("c_address", DataType::kVarchar, 80,
              GeneratorPtr(new pdgf::AddressGenerator())));
    table.fields.push_back(
        Field("c_birth_year", DataType::kInteger, 4, Long(1930, 2005)));
    table.fields.push_back(Field(
        "c_gender", DataType::kChar, 1,
        [] {
          auto dictionary = std::make_shared<pdgf::Dictionary>();
          dictionary->Add("M", 0.49);
          dictionary->Add("F", 0.49);
          dictionary->Add("U", 0.02);
          dictionary->Finalize();
          return GeneratorPtr(new pdgf::DictListGenerator(
              std::move(dictionary), "",
              pdgf::DictListGenerator::Method::kCumulative, 0));
        }()));
    table.fields.push_back(
        Field("c_acctbal", DataType::kDecimal, 15, Money(0, 50000)));
    schema.tables.push_back(std::move(table));
  }

  // item -----------------------------------------------------------------
  {
    TableDef table;
    table.name = "item";
    table.size_expression = "${item_size}";
    table.fields.push_back(
        Field("i_item_sk", DataType::kBigInt, 19, Id(), true));
    {
      std::vector<GeneratorPtr> words;
      words.push_back(Builtin("adjectives"));
      words.push_back(Builtin("colors"));
      words.push_back(Builtin("nouns"));
      table.fields.push_back(
          Field("i_product_name", DataType::kVarchar, 60,
                GeneratorPtr(new pdgf::SequentialGenerator(std::move(words),
                                                           " ", "", ""))));
    }
    table.fields.push_back(Field("i_category", DataType::kVarchar, 20,
                                 Builtin("product_categories")));
    table.fields.push_back(
        Field("i_current_price", DataType::kDecimal, 15, Money(0.5, 999)));
    table.fields.push_back(
        Field("i_wholesale_cost", DataType::kDecimal, 15, Money(0.2, 700)));
    schema.tables.push_back(std::move(table));
  }

  // store ------------------------------------------------------------------
  {
    TableDef table;
    table.name = "store";
    table.size_expression = "${store_size}";
    table.fields.push_back(
        Field("s_store_sk", DataType::kBigInt, 19, Id(), true));
    table.fields.push_back(Field("s_city", DataType::kVarchar, 30,
                                 Builtin("cities")));
    table.fields.push_back(
        Field("s_state", DataType::kChar, 2, Builtin("states")));
    table.fields.push_back(
        Field("s_floor_space", DataType::kInteger, 10,
              Long(5000, 1000000)));
    schema.tables.push_back(std::move(table));
  }

  // web_page ---------------------------------------------------------------
  {
    TableDef table;
    table.name = "web_page";
    table.size_expression = "${web_page_size}";
    table.fields.push_back(
        Field("wp_web_page_sk", DataType::kBigInt, 19, Id(), true));
    table.fields.push_back(Field("wp_url", DataType::kVarchar, 80,
                                 GeneratorPtr(new pdgf::UrlGenerator())));
    table.fields.push_back(
        Field("wp_type", DataType::kVarchar, 12,
              [] {
                auto dictionary = std::make_shared<pdgf::Dictionary>();
                dictionary->Add("order", 2);
                dictionary->Add("product", 5);
                dictionary->Add("search", 3);
                dictionary->Add("review", 1);
                dictionary->Finalize();
                return GeneratorPtr(new pdgf::DictListGenerator(
                    std::move(dictionary), "",
                    pdgf::DictListGenerator::Method::kCumulative, 0));
              }()));
    schema.tables.push_back(std::move(table));
  }

  // web_sales ----------------------------------------------------------------
  {
    TableDef table;
    table.name = "web_sales";
    table.size_expression = "${web_sales_size}";
    table.fields.push_back(
        Field("ws_order_number", DataType::kBigInt, 19, Id(), true));
    table.fields.push_back(Field("ws_item_sk", DataType::kBigInt, 19,
                                 SkewedRef("item", "i_item_sk", 0.8)));
    table.fields.push_back(
        Field("ws_customer_sk", DataType::kBigInt, 19,
              Ref("customer", "c_customer_sk")));
    table.fields.push_back(Field("ws_web_page_sk", DataType::kBigInt, 19,
                                 Ref("web_page", "wp_web_page_sk")));
    table.fields.push_back(
        Field("ws_quantity", DataType::kInteger, 10, Long(1, 20)));
    table.fields.push_back(
        Field("ws_sales_price", DataType::kDecimal, 15, Money(0.5, 999)));
    table.fields.push_back(
        Field("ws_sold_date", DataType::kDate, 10, DateIn(2010, 2014)));
    schema.tables.push_back(std::move(table));
  }

  // web_clickstreams (semi-structured; the big table) -------------------------
  {
    TableDef table;
    table.name = "web_clickstreams";
    table.size_expression = "${web_clickstreams_size}";
    table.fields.push_back(
        Field("wcs_click_sk", DataType::kBigInt, 19, Id(), true));
    table.fields.push_back(
        Field("wcs_user_sk", DataType::kBigInt, 19,
              [] {
                // 5% anonymous sessions: NULL user (paper: big data sets
                // keep every interaction, not just purchases).
                return GeneratorPtr(new pdgf::NullGenerator(
                    0.05, GeneratorPtr(new pdgf::DefaultReferenceGenerator(
                              "customer", "c_customer_sk"))));
              }()));
    table.fields.push_back(Field("wcs_item_sk", DataType::kBigInt, 19,
                                 SkewedRef("item", "i_item_sk", 0.9)));
    table.fields.push_back(Field("wcs_web_page_sk", DataType::kBigInt, 19,
                                 Ref("web_page", "wp_web_page_sk")));
    table.fields.push_back(
        Field("wcs_click_date", DataType::kDate, 10, DateIn(2012, 2014)));
    table.fields.push_back(
        Field("wcs_click_time", DataType::kInteger, 10, Long(0, 86399)));
    schema.tables.push_back(std::move(table));
  }

  // product_reviews (unstructured text referencing structured data) -----------
  {
    TableDef table;
    table.name = "product_reviews";
    table.size_expression = "${product_reviews_size}";
    table.fields.push_back(
        Field("pr_review_sk", DataType::kBigInt, 19, Id(), true));
    table.fields.push_back(Field("pr_item_sk", DataType::kBigInt, 19,
                                 SkewedRef("item", "i_item_sk", 0.7)));
    table.fields.push_back(
        Field("pr_user_sk", DataType::kBigInt, 19,
              Ref("customer", "c_customer_sk")));
    table.fields.push_back(
        Field("pr_review_rating", DataType::kInteger, 1, Long(1, 5)));
    table.fields.push_back(
        Field("pr_review_content", DataType::kVarchar, 2000,
              GeneratorPtr(new pdgf::MarkovChainGenerator(ReviewModel(), 20,
                                                          120))));
    table.fields.push_back(
        Field("pr_review_date", DataType::kDate, 10, DateIn(2010, 2014)));
    schema.tables.push_back(std::move(table));
  }

  return schema;
}

}  // namespace workloads
