#include "workloads/tpch.h"

#include "core/generators/generators.h"
#include "core/text/builtin_dictionaries.h"

namespace workloads {

using pdgf::DataType;
using pdgf::Date;
using pdgf::Dictionary;
using pdgf::FieldDef;
using pdgf::GeneratorPtr;
using pdgf::PropertyDef;
using pdgf::SchemaDef;
using pdgf::TableDef;

namespace {

// Shared Markov generator trained once on the builtin corpus; comment
// columns clone the shared model pointer.
std::shared_ptr<const pdgf::MarkovModel> CommentModel() {
  static const auto& model = *new std::shared_ptr<const pdgf::MarkovModel>(
      [] {
        auto m = std::make_shared<pdgf::MarkovModel>();
        m->AddSample(pdgf::BuiltinCommentCorpus());
        m->Finalize();
        return m;
      }());
  return model;
}

GeneratorPtr Comment(int min_words, int max_words) {
  return GeneratorPtr(
      new pdgf::MarkovChainGenerator(CommentModel(), min_words, max_words));
}

GeneratorPtr NullableComment(double null_probability, int min_words,
                             int max_words) {
  // Listing 1's l_comment: a NullGenerator wrapping the Markov generator.
  return GeneratorPtr(new pdgf::NullGenerator(
      null_probability, Comment(min_words, max_words)));
}

GeneratorPtr Id() { return GeneratorPtr(new pdgf::IdGenerator(1, 1)); }

GeneratorPtr IdFrom(int64_t start) {
  return GeneratorPtr(new pdgf::IdGenerator(start, 1));
}

GeneratorPtr Ref(const char* table, const char* field) {
  return GeneratorPtr(new pdgf::DefaultReferenceGenerator(table, field));
}

GeneratorPtr Long(int64_t min, int64_t max) {
  return GeneratorPtr(new pdgf::LongGenerator(min, max));
}

GeneratorPtr Money(double min, double max) {
  return GeneratorPtr(new pdgf::DoubleGenerator(min, max, 2));
}

GeneratorPtr DateIn(int y1, int m1, int d1, int y2, int m2, int d2) {
  return GeneratorPtr(new pdgf::DateGenerator(Date::FromCivil(y1, m1, d1),
                                              Date::FromCivil(y2, m2, d2)));
}

GeneratorPtr VString(int min_length, int max_length) {
  return GeneratorPtr(
      new pdgf::RandomStringGenerator(min_length, max_length));
}

GeneratorPtr Phone() {
  return GeneratorPtr(new pdgf::PatternStringGenerator("##-###-###-####"));
}

GeneratorPtr Builtin(const char* name,
                     pdgf::DictListGenerator::Method method =
                         pdgf::DictListGenerator::Method::kUniform) {
  return GeneratorPtr(new pdgf::DictListGenerator(
      pdgf::FindBuiltinDictionary(name), name, method, 0));
}

GeneratorPtr InlineDict(std::initializer_list<const char*> values) {
  auto dictionary = std::make_shared<Dictionary>();
  for (const char* value : values) {
    dictionary->Add(value);
  }
  dictionary->Finalize();
  return GeneratorPtr(new pdgf::DictListGenerator(
      std::move(dictionary), "", pdgf::DictListGenerator::Method::kUniform,
      0));
}

GeneratorPtr WeightedDict(
    std::initializer_list<std::pair<const char*, double>> values) {
  auto dictionary = std::make_shared<Dictionary>();
  for (const auto& [value, weight] : values) {
    dictionary->Add(value, weight);
  }
  dictionary->Finalize();
  return GeneratorPtr(new pdgf::DictListGenerator(
      std::move(dictionary), "",
      pdgf::DictListGenerator::Method::kCumulative, 0));
}

// "Prefix#000000001"-style identifiers (Supplier#, Customer#, Clerk#).
GeneratorPtr TaggedId(const char* prefix, GeneratorPtr number, int width) {
  std::vector<GeneratorPtr> children;
  children.push_back(GeneratorPtr(
      new pdgf::PaddingGenerator(std::move(number), width, '0', true)));
  return GeneratorPtr(new pdgf::SequentialGenerator(
      std::move(children), "", std::string(prefix) + "#", ""));
}

FieldDef Field(const char* name, DataType type, int size,
               GeneratorPtr generator, bool primary = false) {
  FieldDef field;
  field.name = name;
  field.type = type;
  field.size = size;
  field.primary = primary;
  field.nullable = !primary;
  field.generator = std::move(generator);
  return field;
}

}  // namespace

SchemaDef BuildTpchSchema() {
  SchemaDef schema;
  schema.name = "tpch";
  schema.seed = 123456789;  // Listing 1's project seed

  auto property = [&schema](const char* name, const char* expression) {
    PropertyDef def;
    def.name = name;
    def.type = "double";
    def.expression = expression;
    schema.properties.push_back(std::move(def));
  };
  property("SF", "1");
  property("region_size", "5");
  property("nation_size", "25");
  property("supplier_size", "10000 * ${SF}");
  property("customer_size", "150000 * ${SF}");
  property("part_size", "200000 * ${SF}");
  property("partsupp_size", "800000 * ${SF}");
  property("orders_size", "1500000 * ${SF}");
  property("lineitem_size", "6000000 * ${SF}");

  // region -------------------------------------------------------------
  {
    TableDef table;
    table.name = "region";
    table.size_expression = "${region_size}";
    table.fields.push_back(Field("r_regionkey", DataType::kBigInt, 19,
                                 IdFrom(0), /*primary=*/true));
    table.fields.push_back(
        Field("r_name", DataType::kChar, 25,
              Builtin("regions", pdgf::DictListGenerator::Method::kByRow)));
    table.fields.push_back(
        Field("r_comment", DataType::kVarchar, 152, Comment(5, 16)));
    schema.tables.push_back(std::move(table));
  }

  // nation -------------------------------------------------------------
  {
    TableDef table;
    table.name = "nation";
    table.size_expression = "${nation_size}";
    table.fields.push_back(Field("n_nationkey", DataType::kBigInt, 19,
                                 IdFrom(0), /*primary=*/true));
    table.fields.push_back(
        Field("n_name", DataType::kChar, 25,
              Builtin("nations", pdgf::DictListGenerator::Method::kByRow)));
    table.fields.push_back(Field("n_regionkey", DataType::kBigInt, 19,
                                 Ref("region", "r_regionkey")));
    table.fields.push_back(
        Field("n_comment", DataType::kVarchar, 152, Comment(5, 16)));
    schema.tables.push_back(std::move(table));
  }

  // supplier -----------------------------------------------------------
  {
    TableDef table;
    table.name = "supplier";
    table.size_expression = "${supplier_size}";
    table.fields.push_back(Field("s_suppkey", DataType::kBigInt, 19, Id(),
                                 /*primary=*/true));
    table.fields.push_back(
        Field("s_name", DataType::kChar, 25, TaggedId("Supplier", Id(), 9)));
    table.fields.push_back(
        Field("s_address", DataType::kVarchar, 40, VString(10, 40)));
    table.fields.push_back(Field("s_nationkey", DataType::kBigInt, 19,
                                 Ref("nation", "n_nationkey")));
    table.fields.push_back(Field("s_phone", DataType::kChar, 15, Phone()));
    table.fields.push_back(Field("s_acctbal", DataType::kDecimal, 15,
                                 Money(-999.99, 9999.99)));
    table.fields.push_back(
        Field("s_comment", DataType::kVarchar, 101, Comment(4, 12)));
    schema.tables.push_back(std::move(table));
  }

  // part ---------------------------------------------------------------
  {
    TableDef table;
    table.name = "part";
    table.size_expression = "${part_size}";
    table.fields.push_back(Field("p_partkey", DataType::kBigInt, 19, Id(),
                                 /*primary=*/true));
    // p_name: five words from the color dictionary.
    {
      std::vector<GeneratorPtr> words;
      for (int i = 0; i < 5; ++i) {
        words.push_back(Builtin("colors"));
      }
      table.fields.push_back(
          Field("p_name", DataType::kVarchar, 55,
                GeneratorPtr(new pdgf::SequentialGenerator(std::move(words),
                                                           " ", "", ""))));
    }
    {
      std::vector<GeneratorPtr> children;
      children.push_back(Long(1, 5));
      table.fields.push_back(Field(
          "p_mfgr", DataType::kChar, 25,
          GeneratorPtr(new pdgf::SequentialGenerator(
              std::move(children), "", "Manufacturer#", ""))));
    }
    {
      std::vector<GeneratorPtr> children;
      children.push_back(Long(1, 5));
      children.push_back(Long(1, 5));
      table.fields.push_back(
          Field("p_brand", DataType::kChar, 10,
                GeneratorPtr(new pdgf::SequentialGenerator(
                    std::move(children), "", "Brand#", ""))));
    }
    {
      std::vector<GeneratorPtr> syllables;
      syllables.push_back(InlineDict(
          {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}));
      syllables.push_back(InlineDict(
          {"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}));
      syllables.push_back(
          InlineDict({"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}));
      table.fields.push_back(
          Field("p_type", DataType::kVarchar, 25,
                GeneratorPtr(new pdgf::SequentialGenerator(
                    std::move(syllables), " ", "", ""))));
    }
    table.fields.push_back(
        Field("p_size", DataType::kInteger, 10, Long(1, 50)));
    {
      std::vector<GeneratorPtr> syllables;
      syllables.push_back(InlineDict({"SM", "LG", "MED", "JUMBO", "WRAP"}));
      syllables.push_back(InlineDict(
          {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}));
      table.fields.push_back(
          Field("p_container", DataType::kChar, 10,
                GeneratorPtr(new pdgf::SequentialGenerator(
                    std::move(syllables), " ", "", ""))));
    }
    // The spec's retail-price formula over the part key.
    table.fields.push_back(Field(
        "p_retailprice", DataType::kDecimal, 15,
        GeneratorPtr(new pdgf::FormulaGenerator(
            "(90000 + floor(floor((${row}+1)/10) % 20001) + "
            "100*((${row}+1) % 1000))/100",
            {}, false))));
    table.fields.push_back(
        Field("p_comment", DataType::kVarchar, 23, Comment(1, 5)));
    schema.tables.push_back(std::move(table));
  }

  // partsupp -----------------------------------------------------------
  {
    TableDef table;
    table.name = "partsupp";
    table.size_expression = "${partsupp_size}";
    // Four rows per part: ps_partkey = row/4 + 1, exactly covering every
    // part (the spec's grouping, without its supplier permutation).
    table.fields.push_back(Field(
        "ps_partkey", DataType::kBigInt, 19,
        GeneratorPtr(new pdgf::FormulaGenerator("floor(${row}/4)+1", {},
                                                /*round_to_long=*/true))));
    table.fields.push_back(Field("ps_suppkey", DataType::kBigInt, 19,
                                 Ref("supplier", "s_suppkey")));
    table.fields.push_back(
        Field("ps_availqty", DataType::kInteger, 10, Long(1, 9999)));
    table.fields.push_back(Field("ps_supplycost", DataType::kDecimal, 15,
                                 Money(1.00, 1000.00)));
    table.fields.push_back(
        Field("ps_comment", DataType::kVarchar, 199, Comment(8, 24)));
    schema.tables.push_back(std::move(table));
  }

  // customer -----------------------------------------------------------
  {
    TableDef table;
    table.name = "customer";
    table.size_expression = "${customer_size}";
    table.fields.push_back(Field("c_custkey", DataType::kBigInt, 19, Id(),
                                 /*primary=*/true));
    table.fields.push_back(
        Field("c_name", DataType::kVarchar, 25,
              TaggedId("Customer", Id(), 9)));
    table.fields.push_back(
        Field("c_address", DataType::kVarchar, 40, VString(10, 40)));
    table.fields.push_back(Field("c_nationkey", DataType::kBigInt, 19,
                                 Ref("nation", "n_nationkey")));
    table.fields.push_back(Field("c_phone", DataType::kChar, 15, Phone()));
    table.fields.push_back(Field("c_acctbal", DataType::kDecimal, 15,
                                 Money(-999.99, 9999.99)));
    table.fields.push_back(Field("c_mktsegment", DataType::kChar, 10,
                                 Builtin("market_segments")));
    table.fields.push_back(
        Field("c_comment", DataType::kVarchar, 117, Comment(5, 14)));
    schema.tables.push_back(std::move(table));
  }

  // orders -------------------------------------------------------------
  {
    TableDef table;
    table.name = "orders";
    table.size_expression = "${orders_size}";
    table.fields.push_back(Field("o_orderkey", DataType::kBigInt, 19, Id(),
                                 /*primary=*/true));
    table.fields.push_back(Field("o_custkey", DataType::kBigInt, 19,
                                 Ref("customer", "c_custkey")));
    table.fields.push_back(Field("o_orderstatus", DataType::kChar, 1,
                                 WeightedDict({{"F", 0.487},
                                               {"O", 0.487},
                                               {"P", 0.026}})));
    table.fields.push_back(Field("o_totalprice", DataType::kDecimal, 15,
                                 Money(857.71, 555285.16)));
    table.fields.push_back(Field("o_orderdate", DataType::kDate, 10,
                                 DateIn(1992, 1, 1, 1998, 8, 2)));
    table.fields.push_back(Field("o_orderpriority", DataType::kChar, 15,
                                 Builtin("order_priorities")));
    table.fields.push_back(
        Field("o_clerk", DataType::kChar, 15,
              TaggedId("Clerk", Long(1, 1000), 9)));
    table.fields.push_back(
        Field("o_shippriority", DataType::kInteger, 10,
              GeneratorPtr(new pdgf::StaticValueGenerator(
                  pdgf::Value::Int(0), /*cache=*/true))));
    table.fields.push_back(
        Field("o_comment", DataType::kVarchar, 79, Comment(4, 12)));
    schema.tables.push_back(std::move(table));
  }

  // lineitem (Listing 1) -------------------------------------------------
  {
    TableDef table;
    table.name = "lineitem";
    table.size_expression = "${lineitem_size}";
    table.fields.push_back(Field("l_orderkey", DataType::kBigInt, 19,
                                 Ref("orders", "o_orderkey")));
    table.fields.push_back(Field("l_partkey", DataType::kBigInt, 19,
                                 Ref("partsupp", "ps_partkey")));
    table.fields.push_back(Field("l_suppkey", DataType::kBigInt, 19,
                                 Ref("supplier", "s_suppkey")));
    table.fields.push_back(
        Field("l_linenumber", DataType::kInteger, 10, Long(1, 7)));
    table.fields.push_back(
        Field("l_quantity", DataType::kDecimal, 15, Money(1, 50)));
    table.fields.push_back(Field("l_extendedprice", DataType::kDecimal, 15,
                                 Money(900.00, 104950.00)));
    table.fields.push_back(
        Field("l_discount", DataType::kDecimal, 15,
              GeneratorPtr(new pdgf::DoubleGenerator(0.0, 0.10, 2))));
    table.fields.push_back(
        Field("l_tax", DataType::kDecimal, 15,
              GeneratorPtr(new pdgf::DoubleGenerator(0.0, 0.08, 2))));
    table.fields.push_back(Field("l_returnflag", DataType::kChar, 1,
                                 WeightedDict({{"R", 0.25},
                                               {"A", 0.25},
                                               {"N", 0.50}})));
    table.fields.push_back(Field("l_linestatus", DataType::kChar, 1,
                                 WeightedDict({{"O", 0.5}, {"F", 0.5}})));
    table.fields.push_back(Field("l_shipdate", DataType::kDate, 10,
                                 DateIn(1992, 1, 2, 1998, 12, 1)));
    table.fields.push_back(Field("l_commitdate", DataType::kDate, 10,
                                 DateIn(1992, 1, 31, 1998, 10, 31)));
    table.fields.push_back(Field("l_receiptdate", DataType::kDate, 10,
                                 DateIn(1992, 1, 3, 1998, 12, 31)));
    table.fields.push_back(Field("l_shipinstruct", DataType::kChar, 25,
                                 InlineDict({"DELIVER IN PERSON",
                                             "COLLECT COD", "NONE",
                                             "TAKE BACK RETURN"})));
    table.fields.push_back(Field("l_shipmode", DataType::kChar, 10,
                                 Builtin("ship_modes")));
    table.fields.push_back(Field("l_comment", DataType::kVarchar, 44,
                                 NullableComment(0.0, 1, 10)));
    schema.tables.push_back(std::move(table));
  }

  return schema;
}

}  // namespace workloads
