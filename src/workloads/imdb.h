#ifndef DBSYNTHPP_WORKLOADS_IMDB_H_
#define DBSYNTHPP_WORKLOADS_IMDB_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "core/schema.h"
#include "minidb/database.h"

namespace workloads {

// Builds and populates an IMDb-style "original" database inside a MiniDB
// instance — the stand-in for the paper's demo source (§5: "the publicly
// available parts of the IMDb database ... hosted in a MySQL database").
// The data is synthesized here with an independent seed and generator set
// so that DBSynth's extraction runs against a database whose content it
// has no prior knowledge of.
//
// Tables: title (movies with production years and free-text plots),
// person (actors/directors), cast_info (N:M with roles, referencing both),
// movie_rating (1:1-ish ratings with NULLs for unrated titles).
//
// `scale` multiplies the base row counts (1.0 => 2000 titles, 3000
// persons, 8000 cast entries, 1600 ratings).
pdgf::Status PopulateImdbDatabase(minidb::Database* database,
                                  double scale = 1.0,
                                  uint64_t seed = 20150531);

// The IMDb demo database as a *PDGF generation model* (as opposed to the
// materialized MiniDB instance above): the same four tables — title,
// person, cast_info, movie_rating — with computed references for the
// foreign keys, Markov-generated plots and ${SF} row-count scaling
// (SF = 1 => 2000 titles, 3000 persons, 8000 cast entries, 1600
// ratings). Used by the determinism verifier (`pdgf verify --model
// imdb`) and the golden-digest fixtures.
pdgf::SchemaDef BuildImdbSchema();

// Builds one of the bundled workload models by name — "tpch", "ssb" or
// "imdb" — shared by the `pdgf verify` CLI verb and the golden-digest
// tests so both resolve names identically. Fails with NotFound for
// unknown names.
pdgf::StatusOr<pdgf::SchemaDef> BuildBundledModel(std::string_view name);

}  // namespace workloads

#endif  // DBSYNTHPP_WORKLOADS_IMDB_H_
