#ifndef DBSYNTHPP_CORE_ENGINE_H_
#define DBSYNTHPP_CORE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/topology.h"
#include "core/metrics/metrics.h"
#include "core/output/formatter.h"
#include "core/output/sink.h"
#include "core/progress.h"
#include "core/schedule.h"
#include "core/session.h"
#include "util/hash.h"

namespace pdgf {

// Controls a generation run (Figure 2: controller, meta scheduler,
// scheduler, workers, output system).
struct GenerationOptions {
  // Worker threads on this node.
  int worker_count = 1;
  // Rows per work package — the scheduler's unit of dispatch.
  uint64_t work_package_rows = 10000;
  // Rows per generation batch inside a work package (core/batch.h). The
  // batch pipeline generates column-at-a-time with hoisted seed
  // derivation, renders through the formatter's AppendBatch kernels and
  // digests column-major. Output bytes and digests are bit-identical to
  // the scalar pipeline for every batch size.
  uint64_t batch_rows = 1024;
  // Forces the legacy scalar per-row pipeline (GenerateRow + AppendRow).
  // Kept for A/B measurement (bench_fig5_scaleup --batch-gate) and the
  // batch/scalar parity suite; produces identical output.
  bool scalar_pipeline = false;
  // When true, completed packages are written in row order, producing the
  // same single sorted file regardless of parallelism (PDGF "writes
  // sorted output into a single file", §4). When false packages are
  // written as they finish (faster, nondeterministic order).
  bool sorted_output = true;
  // Meta-scheduler partitioning: this process generates the node_id-th of
  // node_count shares of every table. Shares are contiguous row ranges;
  // running all node_ids produces the complete data set.
  int node_count = 1;
  int node_id = 0;
  // Abstract time unit to generate. 0 = base data; u > 0 generates the
  // update stream of time unit u (only rows selected by the update black
  // box, with mutable fields regenerated for that unit).
  uint64_t update = 0;
  // When true the engine computes an order-insensitive 128-bit digest per
  // table (util/hash.h) in the generation hot path: each worker folds the
  // rows it generates into private partial digests which are merged at
  // join time, so the result is independent of scheduling, worker count,
  // node partitioning and sink mode. Off by default: disabled runs pay
  // nothing.
  bool compute_digests = false;
  // When true each worker keeps thread-private phase timers / counters
  // (core/metrics) which are merged at join into Stats::metrics. Off by
  // default: disabled runs pay only dead branches in the hot path — no
  // clock reads, no allocation, no shared-state traffic.
  bool metrics_enabled = false;
  // When true (requires metrics_enabled) workers additionally record one
  // scoped trace event per completed work package, up to
  // trace_capacity_per_worker events each; excess events are shed and
  // counted, never buffered unboundedly.
  bool trace_events = false;
  uint64_t trace_capacity_per_worker = 4096;
  // Sorted-output backpressure: at most this many out-of-order packages
  // are parked per table before delivering workers block until the gap
  // closes (or the run aborts). 0 = auto (max(8, 2 x worker_count)).
  // Bounds memory that was previously unbounded when one package
  // stalled while other workers kept delivering. With writer threads the
  // same bound becomes the writer stage's per-table reorder window.
  uint64_t reorder_buffer_packages = 0;
  // Package dispatch policy (core/schedule.h): the shared atomic counter
  // (default) or per-worker stripes with head-stealing. Output bytes and
  // digests are identical for every policy.
  SchedulerKind scheduler = SchedulerKind::kAtomic;
  // Writer threads for the async writer stage (core/output/writer.h):
  // workers hand formatted packages to per-sink writer threads instead
  // of writing inline, so sink latency no longer stalls generation.
  // 0 = legacy inline writes (A/B baseline). Output is byte-identical
  // either way; thread count is clamped to the table count.
  int writer_threads = 1;
  // Formatted-byte buffers circulating between workers and the writer
  // stage (async mode only). 0 = auto; values below the deadlock-safe
  // floor (worker_count + 1 + tables x (reorder window - 1) in sorted
  // mode) are raised to it.
  uint64_t io_buffers = 0;
  // NUMA placement (common/topology.h). Placement is pure optimization:
  // output bytes and digests are identical in every mode.
  //   kOff        — no pinning, single-domain buffer pool (historical).
  //   kOn         — workers pinned in contiguous proportional blocks per
  //                 node, per-node pool domains, writer threads routed to
  //                 the node generating the bulk of their tables' packages
  //                 (the kNuma scheduler's stripe split).
  //   kInterleave — workers pinned round-robin across nodes (bandwidth
  //                 interleaving); pool domains and writer routing as kOn.
  // Defaults to the DBSYNTHPP_NUMA environment override (on when unset).
  // On a single-node topology every mode degenerates to kOff behaviour.
  NumaMode numa = ActiveNumaMode();
  // Topology override for tests (Topology::ForTest); null = the detected
  // system topology. Borrowed; must outlive the run.
  const Topology* topology = nullptr;
};

// Creates the sink for a table. Invoked once per table at run start.
using SinkFactory = std::function<StatusOr<std::unique_ptr<Sink>>(
    const TableDef& table)>;

// Executes a generation run: schedules work packages over worker
// threads, formats rows, and writes them to per-table sinks.
class GenerationEngine {
 public:
  struct Stats {
    uint64_t rows = 0;
    uint64_t bytes = 0;
    double seconds = 0;
    double megabytes_per_second = 0;
    uint64_t packages = 0;
    // One digest per schema table (schema order); empty unless
    // GenerationOptions::compute_digests was set.
    std::vector<TableDigest> table_digests;
    // Per-phase / per-worker / per-table observability report; only
    // populated (metrics.enabled == true) when
    // GenerationOptions::metrics_enabled was set.
    MetricsReport metrics;
  };

  GenerationEngine(const GenerationSession* session,
                   const RowFormatter* formatter, SinkFactory sink_factory,
                   GenerationOptions options);

  // Runs to completion. `progress` may be null. Returns the first error
  // encountered (generation stops early on error). Invalid options (e.g.
  // worker_count < 1) fail with InvalidArgument before any sink is
  // opened.
  Status Run(ProgressTracker* progress = nullptr);

  const Stats& stats() const { return stats_; }

 private:
  const GenerationSession* session_;
  const RowFormatter* formatter_;
  SinkFactory sink_factory_;
  GenerationOptions options_;
  Stats stats_;
};

// Convenience helpers -------------------------------------------------

// Generates one table single-threaded into a string (tests, previews).
StatusOr<std::string> GenerateTableToString(const GenerationSession& session,
                                            int table_index,
                                            const RowFormatter& formatter,
                                            uint64_t update = 0);

// Generates every table of `session` through `formatter` into files named
// "<dir>/<table>.<ext>". Returns engine stats.
StatusOr<GenerationEngine::Stats> GenerateToDirectory(
    const GenerationSession& session, const RowFormatter& formatter,
    const std::string& directory, GenerationOptions options,
    ProgressTracker* progress = nullptr);

// Generates every table, discarding the bytes (CPU-bound measurement).
// NodeShare and WorkPackage now live in core/schedule.h (included above).
StatusOr<GenerationEngine::Stats> GenerateToNull(
    const GenerationSession& session, const RowFormatter& formatter,
    GenerationOptions options, ProgressTracker* progress = nullptr);

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_ENGINE_H_
