#ifndef DBSYNTHPP_CORE_CONFIG_H_
#define DBSYNTHPP_CORE_CONFIG_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/generator_registry.h"
#include "core/schema.h"

namespace pdgf {

// (De)serialization of generation models to the XML configuration format
// of paper Listing 1:
//
//   <schema name="tpch">
//     <seed>123456789</seed>
//     <rng name="PdgfDefaultRandom"/>
//     <property name="SF" type="double">1</property>
//     <table name="lineitem">
//       <size>${lineitem_size}</size>
//       <field name="l_orderkey" size="19" type="BIGINT" primary="true">
//         <gen_IdGenerator/>
//       </field>
//       ...
//     </table>
//   </schema>
//
// Optional per-table children: <updates>expr</updates> and
// <update_fraction>0.1</update_fraction>. Optional field attributes:
// nullable="false", mutable="true", scale="2".

// Parses a model from XML text. `context.base_dir` resolves relative
// artifact paths (Markov model / dictionary files).
StatusOr<SchemaDef> LoadSchemaFromXml(std::string_view xml,
                                      const ConfigLoadContext& context = {});

// Loads a model file; artifact paths resolve relative to its directory.
StatusOr<SchemaDef> LoadSchemaFromFile(const std::string& path);

// Serializes a model (round-trips through LoadSchemaFromXml).
std::string SchemaToXml(const SchemaDef& schema);

Status SaveSchemaToFile(const SchemaDef& schema, const std::string& path);

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_CONFIG_H_
