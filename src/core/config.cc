#include "core/config.h"

#include <cstdlib>

#include "core/generator.h"
#include "util/files.h"
#include "util/strings.h"
#include "util/xml.h"

namespace pdgf {
namespace {

StatusOr<FieldDef> ParseField(const XmlElement& element,
                              const ConfigLoadContext& context) {
  FieldDef field;
  field.name = element.AttributeOr("name", "");
  if (field.name.empty()) {
    return ParseError("<field> requires a name attribute");
  }
  std::string type_name = element.AttributeOr("type", "VARCHAR");
  PDGF_ASSIGN_OR_RETURN(field.type, ParseDataType(type_name));
  field.size = std::atoi(element.AttributeOr("size", "0").c_str());
  field.scale = std::atoi(element.AttributeOr("scale", "2").c_str());
  field.primary = element.AttributeOr("primary", "false") == "true";
  field.nullable = element.AttributeOr("nullable", "true") != "false";
  field.mutable_across_updates =
      element.AttributeOr("mutable", "false") == "true";
  // The generator is the first child that the registry knows.
  const GeneratorRegistry& registry = GeneratorRegistry::Global();
  for (const auto& child : element.children()) {
    if (registry.Contains(child->name())) {
      PDGF_ASSIGN_OR_RETURN(field.generator,
                            registry.Create(*child, context));
      break;
    }
  }
  if (field.generator == nullptr) {
    return ParseError("field '" + field.name +
                      "' has no recognized generator element");
  }
  return field;
}

StatusOr<TableDef> ParseTable(const XmlElement& element,
                              const ConfigLoadContext& context) {
  TableDef table;
  table.name = element.AttributeOr("name", "");
  if (table.name.empty()) {
    return ParseError("<table> requires a name attribute");
  }
  table.size_expression =
      std::string(StripWhitespace(element.ChildTextOr("size", "1")));
  table.updates_expression =
      std::string(StripWhitespace(element.ChildTextOr("updates", "1")));
  std::string fraction =
      std::string(StripWhitespace(element.ChildTextOr("update_fraction", "")));
  if (!fraction.empty()) {
    table.update_fraction = std::strtod(fraction.c_str(), nullptr);
  }
  for (const XmlElement* field_element : element.FindChildren("field")) {
    PDGF_ASSIGN_OR_RETURN(FieldDef field,
                          ParseField(*field_element, context));
    table.fields.push_back(std::move(field));
  }
  if (table.fields.empty()) {
    return ParseError("table '" + table.name + "' has no fields");
  }
  return table;
}

}  // namespace

StatusOr<SchemaDef> LoadSchemaFromXml(std::string_view xml,
                                      const ConfigLoadContext& context) {
  PDGF_ASSIGN_OR_RETURN(XmlDocument document, XmlDocument::Parse(xml));
  const XmlElement* root = document.root();
  if (root == nullptr || root->name() != "schema") {
    return ParseError("model root element must be <schema>");
  }
  SchemaDef schema;
  schema.name = root->AttributeOr("name", "model");
  std::string seed_text =
      std::string(StripWhitespace(root->ChildTextOr("seed", "123456789")));
  schema.seed = std::strtoull(seed_text.c_str(), nullptr, 10);
  const XmlElement* rng = root->FindChild("rng");
  if (rng != nullptr) {
    schema.rng_name = rng->AttributeOr("name", "PdgfDefaultRandom");
  }
  if (schema.rng_name != "PdgfDefaultRandom") {
    return InvalidArgumentError("unknown rng '" + schema.rng_name + "'");
  }
  for (const XmlElement* property : root->FindChildren("property")) {
    PropertyDef def;
    def.name = property->AttributeOr("name", "");
    if (def.name.empty()) {
      return ParseError("<property> requires a name attribute");
    }
    def.type = property->AttributeOr("type", "double");
    def.expression = std::string(StripWhitespace(property->text()));
    schema.properties.push_back(std::move(def));
  }
  for (const XmlElement* table_element : root->FindChildren("table")) {
    PDGF_ASSIGN_OR_RETURN(TableDef table,
                          ParseTable(*table_element, context));
    if (schema.FindTable(table.name) != nullptr) {
      return ParseError("duplicate table '" + table.name + "'");
    }
    schema.tables.push_back(std::move(table));
  }
  if (schema.tables.empty()) {
    return ParseError("model defines no tables");
  }
  return schema;
}

StatusOr<SchemaDef> LoadSchemaFromFile(const std::string& path) {
  PDGF_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  ConfigLoadContext context;
  size_t slash = path.rfind('/');
  if (slash != std::string::npos) {
    context.base_dir = path.substr(0, slash);
  }
  return LoadSchemaFromXml(contents, context);
}

std::string SchemaToXml(const SchemaDef& schema) {
  XmlDocument document(std::make_unique<XmlElement>("schema"));
  XmlElement* root = document.mutable_root();
  root->SetAttribute("name", schema.name);
  root->AddChild("seed")->set_text(std::to_string(schema.seed));
  root->AddChild("rng")->SetAttribute("name", schema.rng_name);
  for (const PropertyDef& property : schema.properties) {
    XmlElement* element = root->AddChild("property");
    element->SetAttribute("name", property.name);
    element->SetAttribute("type", property.type);
    element->set_text(property.expression);
  }
  for (const TableDef& table : schema.tables) {
    XmlElement* table_element = root->AddChild("table");
    table_element->SetAttribute("name", table.name);
    table_element->AddChild("size")->set_text(table.size_expression);
    if (table.updates_expression != "1") {
      table_element->AddChild("updates")->set_text(table.updates_expression);
      table_element->AddChild("update_fraction")
          ->set_text(StrPrintf("%.17g", table.update_fraction));
    }
    for (const FieldDef& field : table.fields) {
      XmlElement* field_element = table_element->AddChild("field");
      field_element->SetAttribute("name", field.name);
      if (field.size > 0) {
        field_element->SetAttribute("size", std::to_string(field.size));
      }
      field_element->SetAttribute("type", DataTypeName(field.type));
      if (field.type == DataType::kDecimal) {
        field_element->SetAttribute("scale", std::to_string(field.scale));
      }
      field_element->SetAttribute("primary",
                                  field.primary ? "true" : "false");
      if (!field.nullable) field_element->SetAttribute("nullable", "false");
      if (field.mutable_across_updates) {
        field_element->SetAttribute("mutable", "true");
      }
      if (field.generator != nullptr) {
        field.generator->WriteConfig(field_element);
      }
    }
  }
  return document.Serialize();
}

Status SaveSchemaToFile(const SchemaDef& schema, const std::string& path) {
  return WriteStringToFile(path, SchemaToXml(schema));
}

}  // namespace pdgf
