#include "core/metrics/metrics.h"

#include <algorithm>

#include "util/strings.h"

namespace pdgf {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kRowGeneration:
      return "row_generation";
    case Phase::kFormatting:
      return "formatting";
    case Phase::kDigesting:
      return "digesting";
    case Phase::kSinkWait:
      return "sink_wait";
    case Phase::kSinkWrite:
      return "sink_write";
    case Phase::kWriterWrite:
      return "writer_write";
    case Phase::kWriterIdle:
      return "writer_idle";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

WorkerMetrics::WorkerMetrics(size_t table_count, size_t trace_capacity)
    : table_rows_(table_count, 0),
      table_bytes_(table_count, 0),
      table_packages_(table_count, 0),
      trace_capacity_(trace_capacity) {
  trace_.reserve(trace_capacity);
}

void WorkerMetrics::AddTrace(const char* name, int table_index,
                             uint64_t sequence, int64_t start_nanos,
                             int64_t duration_nanos) {
  if (trace_capacity_ == 0) return;
  if (trace_.size() >= trace_capacity_) {
    ++dropped_trace_events_;
    return;
  }
  TraceEvent event;
  event.name = name;
  event.table_index = table_index;
  event.sequence = sequence;
  event.start_nanos = start_nanos;
  event.duration_nanos = duration_nanos;
  trace_.push_back(event);
}

void MetricsReport::MergeWorker(const WorkerMetrics& worker) {
  WorkerReport report;
  report.worker = static_cast<int>(workers.size());
  report.node = worker.node();
  report.active_seconds = static_cast<double>(worker.active_nanos()) * 1e-9;
  for (int p = 0; p < kPhaseCount; ++p) {
    report.phase_seconds[p] =
        static_cast<double>(worker.phase_nanos(static_cast<Phase>(p))) *
        1e-9;
    phase_seconds[p] += report.phase_seconds[p];
  }
  // Tables were sized identically across workers by the engine.
  if (tables.size() < worker.table_rows().size()) {
    tables.resize(worker.table_rows().size());
  }
  for (size_t t = 0; t < worker.table_rows().size(); ++t) {
    tables[t].rows += worker.table_rows()[t];
    tables[t].bytes += worker.table_bytes()[t];
    tables[t].packages += worker.table_packages()[t];
    report.rows += worker.table_rows()[t];
    report.bytes += worker.table_bytes()[t];
    report.packages += worker.table_packages()[t];
  }
  for (const TraceEvent& event : worker.trace()) {
    TraceEvent tagged = event;
    tagged.worker = report.worker;
    trace.push_back(tagged);
  }
  dropped_trace_events += worker.dropped_trace_events();
  // Per-node rollup (workers merge in completion order, so the node is
  // carried in the accumulator, not derived from the merge index).
  if (report.node >= 0) {
    if (nodes.size() <= static_cast<size_t>(report.node)) {
      nodes.resize(static_cast<size_t>(report.node) + 1);
      for (size_t n = 0; n < nodes.size(); ++n) {
        nodes[n].node = static_cast<int>(n);
      }
    }
    NodeReport& node = nodes[static_cast<size_t>(report.node)];
    node.workers += 1;
    node.rows += report.rows;
    node.bytes += report.bytes;
    node.packages += report.packages;
  }
  workers.push_back(report);
}

void MetricsReport::Finalize() {
  worker_count = static_cast<int>(workers.size());
  std::stable_sort(trace.begin(), trace.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_nanos < b.start_nanos;
                   });
  if (wall_seconds > 0) {
    rows_per_second = static_cast<double>(rows) / wall_seconds;
    megabytes_per_second =
        static_cast<double>(bytes) / (1024.0 * 1024.0) / wall_seconds;
  }
}

namespace {

void AppendEscapedJson(std::string_view in, std::string* out) {
  out->push_back('"');
  for (char c : in) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrPrintf("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Tiny stateful JSON writer: tracks nesting/indentation and comma
// placement so the emit code below reads linearly.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  void BeginObject() { Open('{'); }
  void EndObject() { CloseScope('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { CloseScope(']'); }

  void Key(const char* name) {
    Separator();
    AppendEscapedJson(name, &out_);
    out_.append(pretty_ ? ": " : ":");
    pending_value_ = true;
  }

  void String(std::string_view value) {
    Separator();
    AppendEscapedJson(value, &out_);
  }
  void Number(uint64_t value) {
    Separator();
    out_.append(std::to_string(value));
  }
  void Number(int64_t value) {
    Separator();
    out_.append(std::to_string(value));
  }
  void Number(int value) {
    Separator();
    out_.append(std::to_string(value));
  }
  void Number(double value) {
    Separator();
    out_.append(StrPrintf("%.9g", value));
  }
  void Bool(bool value) {
    Separator();
    out_.append(value ? "true" : "false");
  }

  std::string Take() {
    if (pretty_) out_.push_back('\n');
    return std::move(out_);
  }

 private:
  void Open(char c) {
    Separator();
    out_.push_back(c);
    ++depth_;
    first_in_scope_ = true;
  }

  void CloseScope(char c) {
    --depth_;
    if (pretty_ && !first_in_scope_) {
      out_.push_back('\n');
      Indent();
    }
    out_.push_back(c);
    first_in_scope_ = false;
  }

  // Emits the comma/newline owed before a new key or array element; a
  // value directly after its key owes nothing.
  void Separator() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!first_in_scope_) out_.push_back(',');
    if (pretty_ && depth_ > 0) {
      out_.push_back('\n');
      Indent();
    }
    first_in_scope_ = false;
  }

  void Indent() { out_.append(static_cast<size_t>(depth_) * 2, ' '); }

  bool pretty_;
  std::string out_;
  int depth_ = 0;
  bool first_in_scope_ = true;
  bool pending_value_ = false;
};

void EmitPhases(JsonWriter* json, const double (&seconds)[kPhaseCount]) {
  json->BeginObject();
  for (int p = 0; p < kPhaseCount; ++p) {
    json->Key(PhaseName(static_cast<Phase>(p)));
    json->Number(seconds[p]);
  }
  json->EndObject();
}

}  // namespace

std::string MetricsReport::ToJson(bool pretty) const {
  JsonWriter json(pretty);
  json.BeginObject();
  json.Key("schema_version");
  json.Number(kSchemaVersion);
  json.Key("enabled");
  json.Bool(enabled);
  json.Key("wall_seconds");
  json.Number(wall_seconds);
  json.Key("rows");
  json.Number(rows);
  json.Key("bytes");
  json.Number(bytes);
  json.Key("packages");
  json.Number(packages);
  json.Key("rows_per_second");
  json.Number(rows_per_second);
  json.Key("megabytes_per_second");
  json.Number(megabytes_per_second);
  json.Key("worker_count");
  json.Number(worker_count);
  json.Key("simd_dispatch");
  json.String(simd_dispatch);
  json.Key("numa_mode");
  json.String(numa_mode);
  json.Key("topology");
  json.String(topology);
  json.Key("phase_seconds");
  EmitPhases(&json, phase_seconds);
  json.Key("workers");
  json.BeginArray();
  for (const WorkerReport& worker : workers) {
    json.BeginObject();
    json.Key("worker");
    json.Number(worker.worker);
    json.Key("node");
    json.Number(worker.node);
    json.Key("active_seconds");
    json.Number(worker.active_seconds);
    json.Key("rows");
    json.Number(worker.rows);
    json.Key("bytes");
    json.Number(worker.bytes);
    json.Key("packages");
    json.Number(worker.packages);
    json.Key("phase_seconds");
    EmitPhases(&json, worker.phase_seconds);
    json.EndObject();
  }
  json.EndArray();
  json.Key("tables");
  json.BeginArray();
  for (const TableReport& table : tables) {
    json.BeginObject();
    json.Key("name");
    json.String(table.name);
    json.Key("rows");
    json.Number(table.rows);
    json.Key("bytes");
    json.Number(table.bytes);
    json.Key("packages");
    json.Number(table.packages);
    json.Key("reorder_buffer_high_water");
    json.Number(table.reorder_buffer_high_water);
    json.Key("reorder_buffer_capacity");
    json.Number(table.reorder_buffer_capacity);
    json.EndObject();
  }
  json.EndArray();
  json.Key("writer_threads");
  json.BeginArray();
  for (const WriterThreadReport& writer : writer_threads) {
    json.BeginObject();
    json.Key("writer");
    json.Number(writer.writer);
    json.Key("write_seconds");
    json.Number(writer.write_seconds);
    json.Key("idle_seconds");
    json.Number(writer.idle_seconds);
    json.Key("packages");
    json.Number(writer.packages);
    json.Key("bytes");
    json.Number(writer.bytes);
    json.Key("queue_high_water");
    json.Number(writer.queue_high_water);
    json.EndObject();
  }
  json.EndArray();
  json.Key("buffer_pool");
  json.BeginObject();
  json.Key("capacity");
  json.Number(buffer_pool.capacity);
  json.Key("allocations");
  json.Number(buffer_pool.allocations);
  json.Key("peak_in_flight");
  json.Number(buffer_pool.peak_in_flight);
  json.Key("node_domains");
  json.Number(buffer_pool.node_domains);
  json.Key("cross_node_acquires");
  json.Number(buffer_pool.cross_node_acquires);
  json.EndObject();
  json.Key("nodes");
  json.BeginArray();
  for (const NodeReport& node : nodes) {
    json.BeginObject();
    json.Key("node");
    json.Number(node.node);
    json.Key("workers");
    json.Number(node.workers);
    json.Key("rows");
    json.Number(node.rows);
    json.Key("bytes");
    json.Number(node.bytes);
    json.Key("packages");
    json.Number(node.packages);
    json.Key("steals");
    json.Number(node.steals);
    json.EndObject();
  }
  json.EndArray();
  if (!trace.empty() || dropped_trace_events > 0) {
    json.Key("dropped_trace_events");
    json.Number(dropped_trace_events);
    json.Key("trace");
    json.BeginArray();
    for (const TraceEvent& event : trace) {
      json.BeginObject();
      json.Key("name");
      json.String(event.name);
      json.Key("worker");
      json.Number(event.worker);
      json.Key("table_index");
      json.Number(event.table_index);
      json.Key("sequence");
      json.Number(event.sequence);
      json.Key("start_us");
      json.Number(static_cast<double>(event.start_nanos) * 1e-3);
      json.Key("duration_us");
      json.Number(static_cast<double>(event.duration_nanos) * 1e-3);
      json.EndObject();
    }
    json.EndArray();
  }
  json.EndObject();
  return json.Take();
}

std::string ServeCounters::ToJson(bool pretty) const {
  JsonWriter json(pretty);
  json.BeginObject();
  json.Key("jobs_accepted");
  json.Number(jobs_accepted);
  json.Key("jobs_completed");
  json.Number(jobs_completed);
  json.Key("jobs_failed");
  json.Number(jobs_failed);
  json.Key("jobs_cancelled");
  json.Number(jobs_cancelled);
  json.Key("jobs_rejected");
  json.Number(jobs_rejected);
  json.Key("bytes_streamed");
  json.Number(bytes_streamed);
  json.Key("rows_streamed");
  json.Number(rows_streamed);
  json.Key("stream_events");
  json.Number(stream_events);
  json.Key("streams_active");
  json.Number(streams_active);
  json.Key("queue_depth");
  json.Number(queue_depth);
  json.Key("active_connections");
  json.Number(active_connections);
  json.Key("connections_accepted");
  json.Number(connections_accepted);
  json.Key("connections_rejected");
  json.Number(connections_rejected);
  json.Key("requests_malformed");
  json.Number(requests_malformed);
  json.Key("requests_truncated");
  json.Number(requests_truncated);
  json.Key("max_jobs");
  json.Number(max_jobs);
  json.Key("max_connections");
  json.Number(max_connections);
  json.EndObject();
  return json.Take();
}

}  // namespace pdgf
