#ifndef DBSYNTHPP_CORE_METRICS_METRICS_H_
#define DBSYNTHPP_CORE_METRICS_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pdgf {

// Observability for the generation hot path (ISSUE 2 tentpole).
//
// Design constraints, in order:
//   1. Compiled-in but cheap: a metrics-disabled run must pay only dead
//      branches — no clock reads, no allocation, no shared-state writes.
//   2. No new contention: every accumulator is thread-private
//      (WorkerMetrics lives on each worker's stack) and is merged into
//      the engine-level MetricsReport exactly once, at worker join —
//      the same join discipline the digest subsystem uses.
//   3. Stable export: MetricsReport::ToJson() emits schema_version 2
//      (v1 + additive writer-stage fields), documented in
//      docs/metrics.md; benchmarks and CI gates parse it.

// Phases of the generation hot path. The engine attributes worker busy
// time to exactly one phase at a time, so per-worker phase totals sum to
// (approximately) that worker's active time, and summed over workers to
// worker_count x wall time on a saturated run.
enum class Phase {
  kRowGeneration = 0,  // GenerationSession::GenerateRow (value synthesis)
  kFormatting,         // RowFormatter::AppendRow (bytes from values)
  kDigesting,          // TableDigest::AddRow (determinism proof hashing)
  kSinkWait,           // blocked on the table output lock / reorder space
                       // / writer-stage window / buffer pool
  kSinkWrite,          // bytes flowing into the sink (worker, inline mode)
  kWriterWrite,        // bytes flowing into the sink (writer thread)
  kWriterIdle,         // writer thread waiting for work (per-thread
                       // reports only; not folded into busy totals)
  kCount
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

// Stable snake_case identifier used as the JSON key ("row_generation",
// "sink_wait", ...).
const char* PhaseName(Phase phase);

// Nanoseconds on the monotonic clock; all trace timestamps are relative
// to an epoch captured by the engine at run start.
inline int64_t MetricsNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One named span on a worker's timeline (a completed work package, a
// footer write, ...). `name` must point at a string with static storage
// duration — trace recording must not allocate per event.
struct TraceEvent {
  const char* name = "";
  int table_index = -1;      // -1: not table-scoped
  uint64_t sequence = 0;     // package sequence within its table
  int64_t start_nanos = 0;   // relative to the run epoch
  int64_t duration_nanos = 0;
  int worker = -1;           // filled in at merge time
};

// Thread-private accumulator: one per worker, on the worker's stack.
// Never shared while the run is live; merged under a mutex at join.
class WorkerMetrics {
 public:
  // `table_count` sizes the per-table counters; `trace_capacity` bounds
  // the trace buffer (0 disables tracing — AddTrace becomes a no-op).
  explicit WorkerMetrics(size_t table_count, size_t trace_capacity = 0);

  void AddPhase(Phase phase, int64_t nanos) {
    phase_nanos_[static_cast<size_t>(phase)] += nanos;
  }

  void AddTablePackage(size_t table_index, uint64_t rows, uint64_t bytes) {
    table_rows_[table_index] += rows;
    table_bytes_[table_index] += bytes;
    ++table_packages_[table_index];
  }

  // Records a span; sheds (and counts) events past `trace_capacity` so a
  // long run cannot grow the buffer without bound.
  void AddTrace(const char* name, int table_index, uint64_t sequence,
                int64_t start_nanos, int64_t duration_nanos);

  void set_active_nanos(int64_t nanos) { active_nanos_ = nanos; }
  // Home topology node of the owning worker (0 when placement is off).
  void set_node(int node) { node_ = node; }
  int node() const { return node_; }

  int64_t phase_nanos(Phase phase) const {
    return phase_nanos_[static_cast<size_t>(phase)];
  }
  int64_t active_nanos() const { return active_nanos_; }
  const std::vector<uint64_t>& table_rows() const { return table_rows_; }
  const std::vector<uint64_t>& table_bytes() const { return table_bytes_; }
  const std::vector<uint64_t>& table_packages() const {
    return table_packages_;
  }
  const std::vector<TraceEvent>& trace() const { return trace_; }
  uint64_t dropped_trace_events() const { return dropped_trace_events_; }

 private:
  int64_t phase_nanos_[kPhaseCount] = {};
  int64_t active_nanos_ = 0;
  int node_ = 0;
  std::vector<uint64_t> table_rows_;
  std::vector<uint64_t> table_bytes_;
  std::vector<uint64_t> table_packages_;
  size_t trace_capacity_;
  std::vector<TraceEvent> trace_;
  uint64_t dropped_trace_events_ = 0;
};

// RAII helper recording one TraceEvent over its lifetime. Cheap to
// construct against a null target (disabled path: two pointer tests, no
// clock read).
class ScopedTrace {
 public:
  ScopedTrace(WorkerMetrics* metrics, const char* name, int table_index = -1,
              uint64_t sequence = 0, int64_t epoch_nanos = 0)
      : metrics_(metrics),
        name_(name),
        table_index_(table_index),
        sequence_(sequence),
        epoch_nanos_(epoch_nanos),
        start_nanos_(metrics != nullptr ? MetricsNowNanos() : 0) {}

  ~ScopedTrace() {
    if (metrics_ == nullptr) return;
    int64_t now = MetricsNowNanos();
    metrics_->AddTrace(name_, table_index_, sequence_,
                       start_nanos_ - epoch_nanos_, now - start_nanos_);
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  WorkerMetrics* metrics_;
  const char* name_;
  int table_index_;
  uint64_t sequence_;
  int64_t epoch_nanos_;
  int64_t start_nanos_;
};

// Engine-level aggregate, built at worker join. `enabled` is false (and
// every other field zero/empty) when the run did not collect metrics.
struct MetricsReport {
  static constexpr int kSchemaVersion = 2;

  struct WorkerReport {
    int worker = 0;
    int node = 0;                        // home topology node (v2 additive)
    double active_seconds = 0;           // worker loop entry to exit
    double phase_seconds[kPhaseCount] = {};
    uint64_t rows = 0;
    uint64_t bytes = 0;                  // formatted row bytes produced
    uint64_t packages = 0;
  };

  struct TableReport {
    std::string name;
    uint64_t rows = 0;
    uint64_t bytes = 0;                  // sink bytes (header/footer incl.)
    uint64_t packages = 0;
    uint64_t reorder_buffer_high_water = 0;  // sorted mode; 0 otherwise
    uint64_t reorder_buffer_capacity = 0;    // sorted mode; 0 otherwise
  };

  // One async writer-stage thread (schema v2; empty in inline mode).
  struct WriterThreadReport {
    int writer = 0;
    double write_seconds = 0;   // sink I/O time
    double idle_seconds = 0;    // waiting on an empty queue
    uint64_t packages = 0;
    uint64_t bytes = 0;
    uint64_t queue_high_water = 0;  // peak queued packages
  };

  // Formatted-byte buffer pool (schema v2; zeros in inline mode).
  struct BufferPoolReport {
    uint64_t capacity = 0;
    uint64_t allocations = 0;     // buffers materialized (warm-up cost)
    uint64_t peak_in_flight = 0;
    uint64_t node_domains = 0;        // per-node free lists (1 = placement off)
    uint64_t cross_node_acquires = 0;  // acquires served off-node
  };

  // Per-NUMA-node aggregate (schema v2 additive; collapses to a single
  // node-0 entry when placement is off or the host is single-node).
  struct NodeReport {
    int node = 0;
    uint64_t workers = 0;   // workers homed on this node
    uint64_t rows = 0;
    uint64_t bytes = 0;     // formatted row bytes produced by those workers
    uint64_t packages = 0;  // packages claimed by those workers
    uint64_t steals = 0;    // of those, claimed from a remote node's stripe
  };

  bool enabled = false;
  int worker_count = 0;
  // Active SIMD dispatch level of the generation kernels ("scalar" |
  // "avx2" | "neon"; see common/simd.h). Additive to schema v2 — bytes
  // and digests never depend on it, so it is context, not a config knob.
  std::string simd_dispatch;
  // NUMA context (v2 additive): the active DBSYNTHPP_NUMA mode ("off" |
  // "on" | "interleave") and a human-readable topology line. Context,
  // not a config knob — bytes and digests never depend on placement.
  std::string numa_mode;
  std::string topology;
  double wall_seconds = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  uint64_t packages = 0;
  double rows_per_second = 0;
  double megabytes_per_second = 0;
  // Sum of busy time per phase (seconds, not wall time) over workers
  // plus writer threads (writer_write; writer_idle is not busy time and
  // stays per-thread).
  double phase_seconds[kPhaseCount] = {};
  std::vector<WorkerReport> workers;
  std::vector<TableReport> tables;
  std::vector<WriterThreadReport> writer_threads;
  BufferPoolReport buffer_pool;
  std::vector<NodeReport> nodes;
  // Populated only when trace collection was enabled; merged across
  // workers and sorted by start time.
  std::vector<TraceEvent> trace;
  uint64_t dropped_trace_events = 0;

  // Folds one worker's thread-private accumulators in (call once per
  // worker, serialized by the caller) and assigns the worker id.
  void MergeWorker(const WorkerMetrics& worker);

  // Called after all MergeWorker calls: sorts the trace and derives
  // totals that depend on wall_seconds (which the caller sets).
  void Finalize();

  // Serializes to the stable schema documented in docs/metrics.md.
  // `pretty` adds newlines/indentation; the key set is identical.
  std::string ToJson(bool pretty = true) const;
};

// Per-job counters of the serve daemon (src/serve) — the additive serve
// section of the metrics endpoint. A snapshot struct: the server keeps
// atomics and fills one of these per metrics request; the endpoint
// serializes it next to the last completed job's MetricsReport (schema
// v2), so one scrape answers both "what is the daemon doing" and "what
// did the engine spend its time on".
struct ServeCounters {
  uint64_t jobs_accepted = 0;    // admitted past the --max-jobs gate
  uint64_t jobs_completed = 0;   // finished with an OK engine status
  uint64_t jobs_failed = 0;      // engine error (disconnect, sink, ...)
  uint64_t jobs_cancelled = 0;   // aborted by an explicit cancel request
  uint64_t jobs_rejected = 0;    // refused at admission (queue saturated)
  uint64_t bytes_streamed = 0;   // payload + frame bytes written to clients
  uint64_t rows_streamed = 0;    // rows shipped by range-window jobs
  uint64_t stream_events = 0;    // CDC events shipped by stream jobs
  uint64_t streams_active = 0;   // gauge: stream jobs currently playing
  uint64_t queue_depth = 0;      // gauge: admitted jobs not yet finished
  uint64_t active_connections = 0;      // gauge
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;    // over --max-connections
  uint64_t requests_malformed = 0;      // bad JSON / truncated / oversized
  // Connections that died (idle timeout, EOF, reset) while a partial
  // request line was buffered — distinguishes a half-sent request from a
  // clean idle close, which shares the same syscall error otherwise.
  uint64_t requests_truncated = 0;
  uint64_t max_jobs = 0;                // configured limits, for context
  uint64_t max_connections = 0;

  // Serializes to the "serve" section documented in docs/serve.md.
  std::string ToJson(bool pretty = true) const;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_METRICS_METRICS_H_
