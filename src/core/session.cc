#include "core/session.h"

#include <cmath>

#include "util/expression.h"

namespace pdgf {
namespace {

// Level tags keep the hierarchy's derivations domain-separated.
constexpr uint64_t kTableLevel = 0x7ab1e00000000001ULL;
constexpr uint64_t kColumnLevel = 0xc01a00000000002ULL;
constexpr uint64_t kUpdateLevel = 0x0bd8000000000003ULL;
constexpr uint64_t kRowLevel = 0x20e000000000004ULL;
constexpr uint64_t kUpdateSelectLevel = 0x5e1ec7000000005ULL;

}  // namespace

StatusOr<std::unique_ptr<GenerationSession>> GenerationSession::Create(
    const SchemaDef* schema,
    const std::map<std::string, std::string>& overrides) {
  if (schema == nullptr) {
    return InvalidArgumentError("schema must not be null");
  }
  for (const auto& [name, expression] : overrides) {
    if (schema->FindProperty(name) == nullptr) {
      return NotFoundError("override for unknown property '" + name + "'");
    }
  }
  auto session = std::unique_ptr<GenerationSession>(new GenerationSession());
  session->schema_ = schema;

  // Resolve properties. Expressions may reference earlier (or later)
  // properties; iterate until a fixpoint, bounded by the property count.
  auto effective_expression =
      [&overrides](const PropertyDef& property) -> const std::string& {
    auto it = overrides.find(property.name);
    return it != overrides.end() ? it->second : property.expression;
  };
  const size_t property_count = schema->properties.size();
  size_t resolved_previous = 0;
  for (size_t round = 0; round <= property_count; ++round) {
    for (const PropertyDef& property : schema->properties) {
      if (session->property_values_.count(property.name) > 0) continue;
      VariableResolver resolver =
          [&session](std::string_view name) -> StatusOr<double> {
        auto it = session->property_values_.find(name);
        if (it == session->property_values_.end()) {
          return NotFoundError("unresolved property '" + std::string(name) +
                               "'");
        }
        return it->second;
      };
      StatusOr<double> value =
          EvaluateExpression(effective_expression(property), resolver);
      if (value.ok()) {
        session->property_values_.emplace(property.name, *value);
      }
    }
    if (session->property_values_.size() == property_count) break;
    if (session->property_values_.size() == resolved_previous) {
      // No progress: a real error (cycle or bad expression). Re-evaluate
      // one failing property to surface its message.
      for (const PropertyDef& property : schema->properties) {
        if (session->property_values_.count(property.name) > 0) continue;
        VariableResolver resolver =
            [&session](std::string_view name) -> StatusOr<double> {
          auto it = session->property_values_.find(name);
          if (it == session->property_values_.end()) {
            return NotFoundError("unresolved property '" + std::string(name) +
                                 "'");
          }
          return it->second;
        };
        StatusOr<double> value =
            EvaluateExpression(effective_expression(property), resolver);
        if (!value.ok()) {
          return Status(value.status().code(),
                        "property '" + property.name +
                            "': " + value.status().message());
        }
      }
    }
    resolved_previous = session->property_values_.size();
  }

  // Table sizes, update counts and seeds.
  VariableResolver property_resolver =
      [&session](std::string_view name) -> StatusOr<double> {
    auto it = session->property_values_.find(name);
    if (it == session->property_values_.end()) {
      return NotFoundError("unknown property '" + std::string(name) + "'");
    }
    return it->second;
  };
  session->table_seeds_.reserve(schema->tables.size());
  for (const TableDef& table : schema->tables) {
    StatusOr<double> size =
        EvaluateExpression(table.size_expression, property_resolver);
    if (!size.ok()) {
      return Status(size.status().code(),
                    "table '" + table.name +
                        "' size: " + size.status().message());
    }
    if (*size < 0 || !std::isfinite(*size)) {
      return InvalidArgumentError("table '" + table.name +
                                  "' size is negative or non-finite");
    }
    session->table_rows_.push_back(
        static_cast<uint64_t>(std::llround(*size)));

    StatusOr<double> updates =
        EvaluateExpression(table.updates_expression, property_resolver);
    if (!updates.ok()) {
      return Status(updates.status().code(),
                    "table '" + table.name +
                        "' updates: " + updates.status().message());
    }
    uint64_t update_count =
        *updates < 1 ? 1 : static_cast<uint64_t>(std::llround(*updates));
    session->table_updates_.push_back(update_count);
    session->table_update_fractions_.push_back(table.update_fraction);

    uint64_t table_seed =
        DeriveSeed(schema->seed ^ kTableLevel, HashName(table.name));
    session->table_seeds_.push_back(table_seed);
    std::vector<uint64_t> column_seeds;
    column_seeds.reserve(table.fields.size());
    for (const FieldDef& field : table.fields) {
      column_seeds.push_back(
          DeriveSeed(table_seed ^ kColumnLevel, HashName(field.name)));
    }
    session->column_seeds_.push_back(std::move(column_seeds));
  }
  return session;
}

StatusOr<double> GenerationSession::Property(std::string_view name) const {
  auto it = property_values_.find(name);
  if (it == property_values_.end()) {
    return NotFoundError("unknown property '" + std::string(name) + "'");
  }
  return it->second;
}

uint64_t GenerationSession::FieldSeed(int table_index, int field_index,
                                      uint64_t row, uint64_t update) const {
  uint64_t column_seed =
      column_seeds_[static_cast<size_t>(table_index)]
                   [static_cast<size_t>(field_index)];
  uint64_t update_seed = DeriveSeed(column_seed ^ kUpdateLevel, update);
  return DeriveSeed(update_seed ^ kRowLevel, row);
}

void GenerationSession::GenerateField(int table_index, int field_index,
                                      uint64_t row, uint64_t update,
                                      Value* out) const {
  const FieldDef& field = schema_->tables[static_cast<size_t>(table_index)]
                              .fields[static_cast<size_t>(field_index)];
  if (!field.mutable_across_updates) {
    update = 0;
  } else if (update > 0) {
    // Point-in-time semantics: a mutable field's value at time unit t is
    // the value written by the LAST update that selected this row (the
    // update black box selects a subset per unit). Unit 0 — the base
    // load — always applies.
    while (update > 0 && !RowChangesInUpdate(table_index, row, update)) {
      --update;
    }
  }
  GeneratorContext context(this, table_index, row, update,
                           FieldSeed(table_index, field_index, row, update));
  if (field.generator == nullptr) {
    out->SetNull();
    return;
  }
  field.generator->Generate(&context, out);
}

void GenerationSession::GenerateRow(int table_index, uint64_t row,
                                    uint64_t update,
                                    std::vector<Value>* out) const {
  const TableDef& table = schema_->tables[static_cast<size_t>(table_index)];
  out->resize(table.fields.size());
  for (size_t f = 0; f < table.fields.size(); ++f) {
    GenerateField(table_index, static_cast<int>(f), row, update,
                  &(*out)[f]);
  }
}

bool GenerationSession::RowChangesInUpdate(int table_index, uint64_t row,
                                           uint64_t update) const {
  if (update == 0) return true;  // the base data "changes into existence"
  double fraction =
      table_update_fractions_[static_cast<size_t>(table_index)];
  if (fraction >= 1.0) return true;
  if (fraction <= 0.0) return false;
  uint64_t selector = DeriveSeed(
      table_seeds_[static_cast<size_t>(table_index)] ^ kUpdateSelectLevel,
      DeriveSeed(update, row));
  // Map to [0,1) and compare against the fraction.
  double u = static_cast<double>(selector >> 11) * 0x1.0p-53;
  return u < fraction;
}

std::vector<std::vector<std::string>> GenerationSession::Preview(
    int table_index, uint64_t limit) const {
  std::vector<std::vector<std::string>> rows;
  uint64_t count = TableRows(table_index);
  if (limit < count) count = limit;
  std::vector<Value> row;
  for (uint64_t r = 0; r < count; ++r) {
    GenerateRow(table_index, r, 0, &row);
    std::vector<std::string> formatted;
    formatted.reserve(row.size());
    for (const Value& value : row) {
      formatted.push_back(value.is_null() ? "NULL" : value.ToText());
    }
    rows.push_back(std::move(formatted));
  }
  return rows;
}

double GenerationSession::EstimateRowBytes(int table_index) const {
  const TableDef& table = schema_->tables[static_cast<size_t>(table_index)];
  uint64_t rows = TableRows(table_index);
  uint64_t sample = rows < 64 ? rows : 64;
  if (sample == 0) return 1.0;
  uint64_t stride = rows / sample;
  if (stride == 0) stride = 1;
  std::vector<Value> row;
  uint64_t total = 0;
  for (uint64_t i = 0; i < sample; ++i) {
    GenerateRow(table_index, i * stride, 0, &row);
    uint64_t bytes = row.empty() ? 0 : row.size() - 1;  // separators
    for (const Value& value : row) {
      bytes += value.ToText().size();
    }
    total += bytes + 1;  // newline
  }
  double estimate = static_cast<double>(total) / static_cast<double>(sample);
  (void)table;
  return estimate < 1.0 ? 1.0 : estimate;
}

}  // namespace pdgf
