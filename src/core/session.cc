#include "core/session.h"

#include <cmath>
#include <numeric>

#include "core/batch.h"
#include "util/expression.h"

namespace pdgf {
namespace {

// Level tags keep the hierarchy's derivations domain-separated. The
// update- and row-level tags moved into GenerationSession (session.h) so
// the inline seed-hoisting helpers can share them.
constexpr uint64_t kTableLevel = 0x7ab1e00000000001ULL;
constexpr uint64_t kColumnLevel = 0xc01a00000000002ULL;
constexpr uint64_t kUpdateSelectLevel = 0x5e1ec7000000005ULL;

}  // namespace

StatusOr<std::unique_ptr<GenerationSession>> GenerationSession::Create(
    const SchemaDef* schema,
    const std::map<std::string, std::string>& overrides) {
  if (schema == nullptr) {
    return InvalidArgumentError("schema must not be null");
  }
  for (const auto& [name, expression] : overrides) {
    if (schema->FindProperty(name) == nullptr) {
      return NotFoundError("override for unknown property '" + name + "'");
    }
  }
  auto session = std::unique_ptr<GenerationSession>(new GenerationSession());
  session->schema_ = schema;

  // Resolve properties. Expressions may reference earlier (or later)
  // properties; iterate until a fixpoint, bounded by the property count.
  auto effective_expression =
      [&overrides](const PropertyDef& property) -> const std::string& {
    auto it = overrides.find(property.name);
    return it != overrides.end() ? it->second : property.expression;
  };
  const size_t property_count = schema->properties.size();
  size_t resolved_previous = 0;
  for (size_t round = 0; round <= property_count; ++round) {
    for (const PropertyDef& property : schema->properties) {
      if (session->property_values_.count(property.name) > 0) continue;
      VariableResolver resolver =
          [&session](std::string_view name) -> StatusOr<double> {
        auto it = session->property_values_.find(name);
        if (it == session->property_values_.end()) {
          return NotFoundError("unresolved property '" + std::string(name) +
                               "'");
        }
        return it->second;
      };
      StatusOr<double> value =
          EvaluateExpression(effective_expression(property), resolver);
      if (value.ok()) {
        session->property_values_.emplace(property.name, *value);
      }
    }
    if (session->property_values_.size() == property_count) break;
    if (session->property_values_.size() == resolved_previous) {
      // No progress: a real error (cycle or bad expression). Re-evaluate
      // one failing property to surface its message.
      for (const PropertyDef& property : schema->properties) {
        if (session->property_values_.count(property.name) > 0) continue;
        VariableResolver resolver =
            [&session](std::string_view name) -> StatusOr<double> {
          auto it = session->property_values_.find(name);
          if (it == session->property_values_.end()) {
            return NotFoundError("unresolved property '" + std::string(name) +
                                 "'");
          }
          return it->second;
        };
        StatusOr<double> value =
            EvaluateExpression(effective_expression(property), resolver);
        if (!value.ok()) {
          return Status(value.status().code(),
                        "property '" + property.name +
                            "': " + value.status().message());
        }
      }
    }
    resolved_previous = session->property_values_.size();
  }

  // Table sizes, update counts and seeds.
  VariableResolver property_resolver =
      [&session](std::string_view name) -> StatusOr<double> {
    auto it = session->property_values_.find(name);
    if (it == session->property_values_.end()) {
      return NotFoundError("unknown property '" + std::string(name) + "'");
    }
    return it->second;
  };
  session->table_seeds_.reserve(schema->tables.size());
  for (const TableDef& table : schema->tables) {
    StatusOr<double> size =
        EvaluateExpression(table.size_expression, property_resolver);
    if (!size.ok()) {
      return Status(size.status().code(),
                    "table '" + table.name +
                        "' size: " + size.status().message());
    }
    if (*size < 0 || !std::isfinite(*size)) {
      return InvalidArgumentError("table '" + table.name +
                                  "' size is negative or non-finite");
    }
    session->table_rows_.push_back(
        static_cast<uint64_t>(std::llround(*size)));

    StatusOr<double> updates =
        EvaluateExpression(table.updates_expression, property_resolver);
    if (!updates.ok()) {
      return Status(updates.status().code(),
                    "table '" + table.name +
                        "' updates: " + updates.status().message());
    }
    uint64_t update_count =
        *updates < 1 ? 1 : static_cast<uint64_t>(std::llround(*updates));
    session->table_updates_.push_back(update_count);
    session->table_update_fractions_.push_back(table.update_fraction);

    uint64_t table_seed =
        DeriveSeed(schema->seed ^ kTableLevel, HashName(table.name));
    session->table_seeds_.push_back(table_seed);
    std::vector<uint64_t> column_seeds;
    column_seeds.reserve(table.fields.size());
    bool has_mutable = false;
    for (const FieldDef& field : table.fields) {
      column_seeds.push_back(
          DeriveSeed(table_seed ^ kColumnLevel, HashName(field.name)));
      has_mutable = has_mutable || field.mutable_across_updates;
    }
    session->column_seeds_.push_back(std::move(column_seeds));
    session->table_has_mutable_.push_back(has_mutable ? 1 : 0);
  }
  return session;
}

StatusOr<double> GenerationSession::Property(std::string_view name) const {
  auto it = property_values_.find(name);
  if (it == property_values_.end()) {
    return NotFoundError("unknown property '" + std::string(name) + "'");
  }
  return it->second;
}

uint64_t GenerationSession::FieldSeed(int table_index, int field_index,
                                      uint64_t row, uint64_t update) const {
  uint64_t column_seed =
      column_seeds_[static_cast<size_t>(table_index)]
                   [static_cast<size_t>(field_index)];
  uint64_t update_seed = DeriveSeed(column_seed ^ kUpdateLevel, update);
  return DeriveSeed(update_seed ^ kRowLevel, row);
}

uint64_t GenerationSession::EffectiveUpdate(int table_index, uint64_t row,
                                            uint64_t update) const {
  // Point-in-time semantics: a mutable field's value at time unit t is
  // the value written by the LAST update that selected this row (the
  // update black box selects a subset per unit). Unit 0 — the base
  // load — always applies.
  while (update > 0 && !RowChangesInUpdate(table_index, row, update)) {
    --update;
  }
  return update;
}

void GenerationSession::GenerateFieldResolved(int table_index,
                                              int field_index, uint64_t row,
                                              uint64_t resolved_update,
                                              Value* out) const {
  const FieldDef& field = schema_->tables[static_cast<size_t>(table_index)]
                              .fields[static_cast<size_t>(field_index)];
  if (field.generator == nullptr) {
    out->SetNull();
    return;
  }
  GeneratorContext context(
      this, table_index, row, resolved_update,
      FieldSeed(table_index, field_index, row, resolved_update));
  field.generator->Generate(&context, out);
}

void GenerationSession::GenerateField(int table_index, int field_index,
                                      uint64_t row, uint64_t update,
                                      Value* out) const {
  const FieldDef& field = schema_->tables[static_cast<size_t>(table_index)]
                              .fields[static_cast<size_t>(field_index)];
  update = field.mutable_across_updates
               ? EffectiveUpdate(table_index, row, update)
               : 0;
  GenerateFieldResolved(table_index, field_index, row, update, out);
}

void GenerationSession::GenerateRow(int table_index, uint64_t row,
                                    uint64_t update,
                                    std::vector<Value>* out) const {
  const TableDef& table = schema_->tables[static_cast<size_t>(table_index)];
  out->resize(table.fields.size());
  // Resolve the effective update ONCE per row: the backward scan over
  // the update history is a pure function of (table, row, update), so
  // re-running it for every mutable field of the row — O(fields x
  // updates) — only repeated identical work. Tables without mutable
  // fields skip the scan entirely.
  uint64_t effective = 0;
  if (update > 0 && table_has_mutable_[static_cast<size_t>(table_index)]) {
    effective = EffectiveUpdate(table_index, row, update);
  }
  for (size_t f = 0; f < table.fields.size(); ++f) {
    GenerateFieldResolved(
        table_index, static_cast<int>(f), row,
        table.fields[f].mutable_across_updates ? effective : 0, &(*out)[f]);
  }
}

void GenerationSession::GenerateBatch(int table_index, const uint64_t* rows,
                                      size_t row_count, uint64_t update,
                                      RowBatch* out) const {
  const TableDef& table = schema_->tables[static_cast<size_t>(table_index)];
  out->Reset(table.fields.size(), rows, row_count);
  // Per-row effective updates, resolved once and shared by every mutable
  // field of the batch (the scalar path resolves per row; both are one
  // backward scan per row, so values agree bit for bit).
  const uint64_t* updates = nullptr;
  if (update > 0 && table_has_mutable_[static_cast<size_t>(table_index)]) {
    std::vector<uint64_t>& effective = out->mutable_effective_updates();
    effective.resize(row_count);
    for (size_t i = 0; i < row_count; ++i) {
      effective[i] = EffectiveUpdate(table_index, rows[i], update);
    }
    updates = effective.data();
  }
  for (size_t f = 0; f < table.fields.size(); ++f) {
    const FieldDef& field = table.fields[f];
    ValueColumn& column = out->column(f);
    if (field.generator == nullptr) {
      for (size_t i = 0; i < row_count; ++i) column.value(i)->SetNull();
    } else if (field.mutable_across_updates && updates != nullptr) {
      // Cold path: per-row effective updates vary, so seeds take the
      // full per-cell walk.
      BatchContext context(this, table_index, static_cast<int>(f), rows,
                           row_count, updates);
      field.generator->GenerateBatch(&context, &column);
    } else {
      // Hot path: one hoisted update-level derivation for the whole
      // column, a single DeriveSeed per cell.
      const uint64_t field_update =
          field.mutable_across_updates ? update : 0;
      BatchContext context(
          this, table_index, static_cast<int>(f), rows, row_count,
          field_update,
          HoistedFieldBase(table_index, static_cast<int>(f), field_update));
      field.generator->GenerateBatch(&context, &column);
    }
    column.RefreshNullMask();
  }
}

bool GenerationSession::RowChangesInUpdate(int table_index, uint64_t row,
                                           uint64_t update) const {
  if (update == 0) return true;  // the base data "changes into existence"
  double fraction =
      table_update_fractions_[static_cast<size_t>(table_index)];
  if (fraction >= 1.0) return true;
  if (fraction <= 0.0) return false;
  uint64_t selector = DeriveSeed(
      table_seeds_[static_cast<size_t>(table_index)] ^ kUpdateSelectLevel,
      DeriveSeed(update, row));
  // Map to [0,1) and compare against the fraction.
  double u = static_cast<double>(selector >> 11) * 0x1.0p-53;
  return u < fraction;
}

std::vector<std::vector<std::string>> GenerationSession::Preview(
    int table_index, uint64_t limit) const {
  std::vector<std::vector<std::string>> rows;
  uint64_t count = TableRows(table_index);
  if (limit < count) count = limit;
  std::vector<uint64_t> row_indices(count);
  std::iota(row_indices.begin(), row_indices.end(), uint64_t{0});
  RowBatch batch;
  GenerateBatch(table_index, row_indices.data(), row_indices.size(), 0,
                &batch);
  rows.reserve(batch.row_count());
  for (size_t r = 0; r < batch.row_count(); ++r) {
    std::vector<std::string> formatted;
    formatted.reserve(batch.column_count());
    for (size_t f = 0; f < batch.column_count(); ++f) {
      const ValueColumn& column = batch.column(f);
      formatted.push_back(column.is_null(r) ? "NULL"
                                            : column.get(r).ToText());
    }
    rows.push_back(std::move(formatted));
  }
  return rows;
}

double GenerationSession::EstimateRowBytes(int table_index) const {
  uint64_t rows = TableRows(table_index);
  uint64_t sample = rows < 64 ? rows : 64;
  if (sample == 0) return 1.0;
  uint64_t stride = rows / sample;
  if (stride == 0) stride = 1;
  std::vector<uint64_t> sample_rows(sample);
  for (uint64_t i = 0; i < sample; ++i) sample_rows[i] = i * stride;
  RowBatch batch;
  GenerateBatch(table_index, sample_rows.data(), sample_rows.size(), 0,
                &batch);
  // Size the sampled cells through the formatter kernels into ONE reused
  // buffer — no per-cell ToText() string allocation (the old code built
  // and discarded a fresh std::string per sampled cell).
  std::string scratch;
  uint64_t total = 0;
  const size_t fields = batch.column_count();
  for (size_t r = 0; r < batch.row_count(); ++r) {
    scratch.clear();
    for (size_t f = 0; f < fields; ++f) {
      batch.column(f).get(r).AppendText(&scratch);  // NULL appends nothing
    }
    total += scratch.size() + (fields > 0 ? fields - 1 : 0)  // separators
             + 1;                                            // newline
  }
  double estimate = static_cast<double>(total) / static_cast<double>(sample);
  return estimate < 1.0 ? 1.0 : estimate;
}

}  // namespace pdgf
