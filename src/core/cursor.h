#ifndef DBSYNTHPP_CORE_CURSOR_H_
#define DBSYNTHPP_CORE_CURSOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/batch.h"
#include "core/session.h"
#include "util/hash.h"

namespace pdgf {

// Pull-based row-range addressing. A RowRangeCursor owns the walk the
// engine's worker loop used to inline: it yields RowBatches for an
// arbitrary [first_row, last_row) of one table, in fixed batch-row
// strides anchored at the current position, applying the update black
// box's row filter when generating an update stream (update > 0 batches
// only the rows selected for that time unit).
//
// PDGF's seed hierarchy makes every cell a pure function of
// (table, row, update), so a cursor over rows [10M, 11M) of lineitem at
// SF 1000 costs exactly those rows — nothing before them is touched.
// Consumers:
//   - the generation engine drives one cursor per worker over its work
//     packages (the materializing path),
//   - MiniDB virtual tables scan SELECT row windows lazily,
//   - the serve daemon's range/stream ops stream arbitrary windows.
//
// Batch boundaries never change bytes (RowFormatter::AppendBatch is
// byte-identical to per-row AppendRow) and the digest accumulators are
// commutative, so cursor output is byte-identical to the materializing
// engine path — enforced by tests/core/cursor_test.cc and the golden
// digest fixtures.
//
// A cursor is single-threaded and recycles its row-index list and
// RowBatch (including per-Value string capacity) across batches, ranges
// and Reset() calls; steady-state iteration is allocation-free.
class RowRangeCursor {
 public:
  static constexpr uint64_t kDefaultBatchRows = 1024;

  RowRangeCursor() = default;
  RowRangeCursor(const GenerationSession* session, int table_index,
                 uint64_t first_row, uint64_t last_row, uint64_t update = 0,
                 uint64_t batch_rows = kDefaultBatchRows) {
    Reset(session, table_index, first_row, last_row, update, batch_rows);
  }

  // Re-aims the cursor at a new table/range/update without releasing the
  // recycled buffers; position rewinds to first_row. `last_row` is
  // clamped up to `first_row`; `batch_rows` is clamped up to 1.
  void Reset(const GenerationSession* session, int table_index,
             uint64_t first_row, uint64_t last_row, uint64_t update = 0,
             uint64_t batch_rows = kDefaultBatchRows);

  // Moves the position to `row`, clamped into [first_row, last_row].
  // Subsequent batch strides are anchored at the new position.
  void Seek(uint64_t row);

  // Generates the next batch; false when the range is exhausted. In
  // update mode, strides whose rows were all skipped by the update black
  // box are consumed internally — Next() only returns with a non-empty
  // batch().
  bool Next();

  // The batch produced by the last successful Next().
  const RowBatch& batch() const { return batch_; }

  int table_index() const { return table_index_; }
  uint64_t first_row() const { return first_row_; }
  uint64_t last_row() const { return last_row_; }
  uint64_t update() const { return update_; }
  // The next unprocessed row (== last_row() once exhausted).
  uint64_t position() const { return position_; }
  bool done() const { return position_ >= last_row_; }
  // Rows yielded across all Next() calls since the last Reset/Seek.
  uint64_t rows_yielded() const { return rows_yielded_; }

 private:
  const GenerationSession* session_ = nullptr;
  int table_index_ = 0;
  uint64_t first_row_ = 0;
  uint64_t last_row_ = 0;
  uint64_t update_ = 0;
  uint64_t batch_rows_ = kDefaultBatchRows;
  uint64_t position_ = 0;
  uint64_t rows_yielded_ = 0;
  std::vector<uint64_t> row_indices_;
  RowBatch batch_;
};

// Folds one formatted batch into `digest`: row-byte hashes from the
// formatter's offset spans (`row_offsets` as filled by AppendBatch —
// absolute offsets into `buffer`), column checksums column-major. Every
// digest accumulator is commutative, so this matches the scalar
// AddRow-per-row result exactly regardless of batch boundaries. Shared
// by every cursor consumer that ships digests.
void FoldBatchIntoDigest(const RowBatch& batch, std::string_view buffer,
                         const std::vector<size_t>& row_offsets,
                         TableDigest* digest);

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_CURSOR_H_
