#include "core/simcluster.h"

#include <algorithm>
#include <memory>
#include <string>

namespace pdgf {

double EffectiveCapacity(const SimulatedMachine& machine, int workers) {
  if (workers < 1) return 0;
  int cores = machine.physical_cores < 1 ? 1 : machine.physical_cores;
  int threads = machine.hardware_threads < cores ? cores
                                                 : machine.hardware_threads;
  double full_lanes = static_cast<double>(std::min(workers, cores));
  int smt_workers = std::min(std::max(workers - cores, 0), threads - cores);
  double capacity =
      full_lanes + machine.smt_efficiency * static_cast<double>(smt_workers);
  // Beyond the hardware-thread count extra workers add nothing (they only
  // time-slice), and oversubscription costs a little.
  if (workers > threads) {
    capacity *= 0.99;
  }
  if (workers == cores || workers == threads) {
    capacity *= 1.0 - machine.scheduler_interference;
  }
  return capacity;
}

double EstimateParallelWallClock(const std::vector<double>& lane_seconds,
                                 const SimulatedMachine& machine,
                                 int workers) {
  if (lane_seconds.empty()) return 0;
  double total = 0;
  double longest = 0;
  for (double lane : lane_seconds) {
    total += lane;
    longest = std::max(longest, lane);
  }
  double capacity = EffectiveCapacity(machine, workers);
  if (capacity <= 0) capacity = 1;
  // Work conservation: total busy time spread over the capacity, but no
  // faster than the longest indivisible lane.
  return std::max(total / capacity, longest);
}

double EstimateClusterWallClock(const std::vector<double>& node_seconds) {
  double wall = 0;
  for (double node : node_seconds) {
    wall = std::max(wall, node);
  }
  return wall;
}

StatusOr<ClusterRunResult> RunSimulatedCluster(
    const GenerationSession& session, const RowFormatter& formatter,
    GenerationOptions options, int node_count, SinkFactory sink_factory) {
  if (node_count < 1) {
    return InvalidArgumentError("node_count must be >= 1, got " +
                                std::to_string(node_count));
  }
  if (sink_factory == nullptr) {
    sink_factory = [](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
      return std::unique_ptr<Sink>(new NullSink());
    };
  }
  ClusterRunResult result;
  result.table_digests.resize(session.schema().tables.size());
  options.node_count = node_count;
  options.compute_digests = true;
  for (int node = 0; node < node_count; ++node) {
    options.node_id = node;
    GenerationEngine engine(&session, &formatter, sink_factory, options);
    PDGF_RETURN_IF_ERROR(engine.Run());
    const GenerationEngine::Stats& stats = engine.stats();
    for (size_t t = 0; t < stats.table_digests.size(); ++t) {
      result.table_digests[t].Merge(stats.table_digests[t]);
    }
    result.node_seconds.push_back(stats.seconds);
    result.rows += stats.rows;
    result.bytes += stats.bytes;
  }
  return result;
}

}  // namespace pdgf
