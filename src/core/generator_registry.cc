#include "core/generator_registry.h"

#include <cstdlib>
#include <mutex>

#include "core/generators/generators.h"
#include "core/text/builtin_dictionaries.h"
#include "util/strings.h"
#include "util/xml.h"

namespace pdgf {
namespace {

// Reads a numeric parameter from an attribute or a child element's text
// ("<min>5</min>" or min="5"), with a default.
StatusOr<double> NumberParam(const XmlElement& element, const char* name,
                             double default_value) {
  const std::string* attribute = element.FindAttribute(name);
  std::string text;
  if (attribute != nullptr) {
    text = *attribute;
  } else {
    const XmlElement* child = element.FindChild(name);
    if (child == nullptr) return default_value;
    text = std::string(StripWhitespace(child->text()));
  }
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    return ParseError(std::string("bad numeric parameter '") + name + "': '" +
                      text + "' in <" + element.name() + ">");
  }
  return value;
}

std::string TextParam(const XmlElement& element, const char* name,
                      std::string_view default_value) {
  const std::string* attribute = element.FindAttribute(name);
  if (attribute != nullptr) return *attribute;
  const XmlElement* child = element.FindChild(name);
  if (child != nullptr) return std::string(StripWhitespace(child->text()));
  return std::string(default_value);
}

// Parses the first child element that is itself a registered generator.
StatusOr<GeneratorPtr> ParseInnerGenerator(const XmlElement& element,
                                           const ConfigLoadContext& context,
                                           const GeneratorRegistry& registry) {
  for (const auto& child : element.children()) {
    if (registry.Contains(child->name())) {
      return registry.Create(*child, context);
    }
  }
  return ParseError("<" + element.name() +
                    "> requires a nested generator element");
}

// Parses all registered-generator children, in order.
StatusOr<std::vector<GeneratorPtr>> ParseChildGenerators(
    const XmlElement& element, const ConfigLoadContext& context,
    const GeneratorRegistry& registry) {
  std::vector<GeneratorPtr> children;
  for (const auto& child : element.children()) {
    if (registry.Contains(child->name())) {
      PDGF_ASSIGN_OR_RETURN(GeneratorPtr generator,
                            registry.Create(*child, context));
      children.push_back(std::move(generator));
    }
  }
  return children;
}

void RegisterAll(GeneratorRegistry* registry) {
  registry->Register(
      "gen_IdGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(double start, NumberParam(element, "start", 1));
        PDGF_ASSIGN_OR_RETURN(double step, NumberParam(element, "step", 1));
        return GeneratorPtr(new IdGenerator(static_cast<int64_t>(start),
                                            static_cast<int64_t>(step)));
      });

  registry->Register(
      "gen_LongGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(double min, NumberParam(element, "min", 0));
        PDGF_ASSIGN_OR_RETURN(double max,
                              NumberParam(element, "max", 1u << 30));
        return GeneratorPtr(new LongGenerator(static_cast<int64_t>(min),
                                              static_cast<int64_t>(max)));
      });

  registry->Register(
      "gen_DoubleGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(double min, NumberParam(element, "min", 0));
        PDGF_ASSIGN_OR_RETURN(double max, NumberParam(element, "max", 1));
        PDGF_ASSIGN_OR_RETURN(double places,
                              NumberParam(element, "places", -1));
        return GeneratorPtr(
            new DoubleGenerator(min, max, static_cast<int>(places)));
      });

  registry->Register(
      "gen_DateGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        std::string min_text = TextParam(element, "min", "1992-01-01");
        std::string max_text = TextParam(element, "max", "1998-12-31");
        PDGF_ASSIGN_OR_RETURN(Date min, Date::Parse(min_text));
        PDGF_ASSIGN_OR_RETURN(Date max, Date::Parse(max_text));
        std::string format = TextParam(element, "format", "");
        return GeneratorPtr(new DateGenerator(min, max, std::move(format)));
      });

  registry->Register(
      "gen_RandomStringGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(double min, NumberParam(element, "min", 1));
        PDGF_ASSIGN_OR_RETURN(double max, NumberParam(element, "max", 20));
        std::string charset = TextParam(
            element, "charset", RandomStringGenerator::kDefaultCharset);
        if (charset.empty()) {
          return ParseError("empty charset in gen_RandomStringGenerator");
        }
        return GeneratorPtr(new RandomStringGenerator(
            static_cast<int>(min), static_cast<int>(max),
            std::move(charset)));
      });

  registry->Register(
      "gen_PatternStringGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        std::string pattern = TextParam(element, "pattern", "");
        if (pattern.empty()) {
          return ParseError("gen_PatternStringGenerator requires a pattern");
        }
        return GeneratorPtr(new PatternStringGenerator(std::move(pattern)));
      });

  registry->Register(
      "gen_StaticValueGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        std::string type = element.AttributeOr("type", "string");
        std::string text(StripWhitespace(element.text()));
        bool cache = element.AttributeOr("cache", "true") != "false";
        Value value;
        if (type == "null") {
          value.SetNull();
        } else if (type == "long") {
          value.SetInt(std::strtoll(text.c_str(), nullptr, 10));
        } else if (type == "double") {
          value.SetDouble(std::strtod(text.c_str(), nullptr));
        } else {
          value.SetString(text);
        }
        return GeneratorPtr(new StaticValueGenerator(std::move(value), cache));
      });

  registry->Register(
      "gen_BooleanGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(double probability,
                              NumberParam(element, "probability", 0.5));
        return GeneratorPtr(new BooleanGenerator(probability));
      });

  registry->Register(
      "gen_HistogramGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(double min, NumberParam(element, "min", 0));
        PDGF_ASSIGN_OR_RETURN(double max, NumberParam(element, "max", 1));
        PDGF_ASSIGN_OR_RETURN(double places,
                              NumberParam(element, "places", 2));
        std::string output_name = element.AttributeOr("output", "double");
        HistogramGenerator::Output output;
        if (output_name == "long") {
          output = HistogramGenerator::Output::kLong;
        } else if (output_name == "double") {
          output = HistogramGenerator::Output::kDouble;
        } else if (output_name == "decimal") {
          output = HistogramGenerator::Output::kDecimal;
        } else if (output_name == "date") {
          output = HistogramGenerator::Output::kDate;
        } else {
          return ParseError("unknown histogram output '" + output_name +
                            "'");
        }
        const XmlElement* buckets = element.FindChild("buckets");
        if (buckets == nullptr) {
          return ParseError("gen_HistogramGenerator requires <buckets>");
        }
        std::vector<double> weights;
        for (const std::string& piece :
             SplitWhitespace(buckets->text())) {
          char* end = nullptr;
          double weight = std::strtod(piece.c_str(), &end);
          if (end != piece.c_str() + piece.size() || weight < 0) {
            return ParseError("bad histogram bucket weight '" + piece +
                              "'");
          }
          weights.push_back(weight);
        }
        if (weights.empty()) {
          return ParseError("empty histogram bucket list");
        }
        return GeneratorPtr(new HistogramGenerator(
            min, max, std::move(weights), output,
            static_cast<int>(places)));
      });

  registry->Register(
      "gen_DictListGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext& context) -> StatusOr<GeneratorPtr> {
        std::string method_name = element.AttributeOr("method", "cumulative");
        DictListGenerator::Method method =
            DictListGenerator::Method::kCumulative;
        if (method_name == "alias") {
          method = DictListGenerator::Method::kAlias;
        } else if (method_name == "uniform") {
          method = DictListGenerator::Method::kUniform;
        } else if (method_name == "byrow") {
          method = DictListGenerator::Method::kByRow;
        } else if (method_name != "cumulative") {
          return ParseError("unknown dictionary sampling method '" +
                            method_name + "'");
        }
        PDGF_ASSIGN_OR_RETURN(double skew, NumberParam(element, "skew", 0));
        std::string builtin = element.AttributeOr("builtin", "");
        if (!builtin.empty()) {
          const Dictionary* dictionary = FindBuiltinDictionary(builtin);
          if (dictionary == nullptr) {
            return NotFoundError("unknown builtin dictionary '" + builtin +
                                 "'");
          }
          return GeneratorPtr(
              new DictListGenerator(dictionary, builtin, method, skew));
        }
        const XmlElement* file = element.FindChild("file");
        if (file != nullptr) {
          std::string path(StripWhitespace(file->text()));
          PDGF_ASSIGN_OR_RETURN(
              Dictionary dictionary,
              Dictionary::FromFile(context.ResolvePath(path)));
          return GeneratorPtr(new DictListGenerator(
              std::make_shared<Dictionary>(std::move(dictionary)), path,
              method, skew));
        }
        const XmlElement* entries = element.FindChild("entries");
        if (entries != nullptr) {
          auto dictionary = std::make_shared<Dictionary>();
          for (const XmlElement* entry : entries->FindChildren("entry")) {
            double weight = 1.0;
            const std::string* weight_attribute =
                entry->FindAttribute("weight");
            if (weight_attribute != nullptr) {
              weight = std::strtod(weight_attribute->c_str(), nullptr);
            }
            dictionary->Add(std::string(StripWhitespace(entry->text())),
                            weight);
          }
          if (dictionary->empty()) {
            return ParseError("empty inline dictionary");
          }
          dictionary->Finalize();
          return GeneratorPtr(
              new DictListGenerator(std::move(dictionary), "", method, skew));
        }
        return ParseError(
            "gen_DictListGenerator requires builtin=, <file> or <entries>");
      });

  registry->Register(
      "gen_NameGenerator",
      [](const XmlElement&, const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        return GeneratorPtr(new NameGenerator());
      });
  registry->Register(
      "gen_AddressGenerator",
      [](const XmlElement&, const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        return GeneratorPtr(new AddressGenerator());
      });
  registry->Register(
      "gen_EmailGenerator",
      [](const XmlElement&, const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        return GeneratorPtr(new EmailGenerator());
      });
  registry->Register(
      "gen_UrlGenerator",
      [](const XmlElement&, const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        return GeneratorPtr(new UrlGenerator());
      });

  registry->Register(
      "gen_DefaultReferenceGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext&) -> StatusOr<GeneratorPtr> {
        const XmlElement* reference = element.FindChild("reference");
        if (reference == nullptr) {
          return ParseError(
              "gen_DefaultReferenceGenerator requires a <reference>");
        }
        std::string table = reference->AttributeOr("table", "");
        std::string field = reference->AttributeOr("field", "");
        if (table.empty() || field.empty()) {
          return ParseError("<reference> requires table= and field=");
        }
        DefaultReferenceGenerator::Distribution distribution =
            DefaultReferenceGenerator::Distribution::kUniform;
        double skew = 0;
        if (element.AttributeOr("distribution", "uniform") == "zipf") {
          distribution = DefaultReferenceGenerator::Distribution::kZipf;
          PDGF_ASSIGN_OR_RETURN(skew, NumberParam(element, "skew", 1.0));
        }
        return GeneratorPtr(new DefaultReferenceGenerator(
            std::move(table), std::move(field), distribution, skew));
      });

  registry->Register(
      "gen_NullGenerator",
      [registry](const XmlElement& element,
                 const ConfigLoadContext& context) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(double probability,
                              NumberParam(element, "probability", 0));
        PDGF_ASSIGN_OR_RETURN(
            GeneratorPtr inner,
            ParseInnerGenerator(element, context, *registry));
        return GeneratorPtr(new NullGenerator(probability, std::move(inner)));
      });

  registry->Register(
      "gen_SequentialGenerator",
      [registry](const XmlElement& element,
                 const ConfigLoadContext& context) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(
            std::vector<GeneratorPtr> children,
            ParseChildGenerators(element, context, *registry));
        if (children.empty()) {
          return ParseError("gen_SequentialGenerator requires children");
        }
        return GeneratorPtr(new SequentialGenerator(
            std::move(children), element.AttributeOr("separator", ""),
            element.AttributeOr("prefix", ""),
            element.AttributeOr("suffix", "")));
      });

  registry->Register(
      "gen_ConditionalGenerator",
      [registry](const XmlElement& element,
                 const ConfigLoadContext& context) -> StatusOr<GeneratorPtr> {
        std::vector<ConditionalGenerator::Branch> branches;
        for (const XmlElement* case_element : element.FindChildren("case")) {
          double weight =
              std::strtod(case_element->AttributeOr("weight", "1").c_str(),
                          nullptr);
          PDGF_ASSIGN_OR_RETURN(
              GeneratorPtr inner,
              ParseInnerGenerator(*case_element, context, *registry));
          branches.push_back(
              ConditionalGenerator::Branch{weight, std::move(inner)});
        }
        if (branches.empty()) {
          return ParseError("gen_ConditionalGenerator requires <case> children");
        }
        return GeneratorPtr(new ConditionalGenerator(std::move(branches)));
      });

  registry->Register(
      "gen_PaddingGenerator",
      [registry](const XmlElement& element,
                 const ConfigLoadContext& context) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(double width, NumberParam(element, "width", 0));
        std::string pad = element.AttributeOr("pad", "0");
        bool pad_left = element.AttributeOr("side", "left") != "right";
        PDGF_ASSIGN_OR_RETURN(
            GeneratorPtr inner,
            ParseInnerGenerator(element, context, *registry));
        return GeneratorPtr(new PaddingGenerator(
            std::move(inner), static_cast<int>(width),
            pad.empty() ? '0' : pad[0], pad_left));
      });

  registry->Register(
      "gen_FormulaGenerator",
      [registry](const XmlElement& element,
                 const ConfigLoadContext& context) -> StatusOr<GeneratorPtr> {
        std::string expression = element.AttributeOr("expression", "");
        if (expression.empty()) {
          return ParseError("gen_FormulaGenerator requires expression=");
        }
        PDGF_ASSIGN_OR_RETURN(
            std::vector<GeneratorPtr> children,
            ParseChildGenerators(element, context, *registry));
        bool round_to_long = element.AttributeOr("round", "") == "long";
        return GeneratorPtr(new FormulaGenerator(
            std::move(expression), std::move(children), round_to_long));
      });

  registry->Register(
      "gen_MarkovChainGenerator",
      [](const XmlElement& element,
         const ConfigLoadContext& context) -> StatusOr<GeneratorPtr> {
        PDGF_ASSIGN_OR_RETURN(double min, NumberParam(element, "min", 1));
        PDGF_ASSIGN_OR_RETURN(double max, NumberParam(element, "max", 10));
        const XmlElement* file = element.FindChild("file");
        if (file != nullptr) {
          std::string path(StripWhitespace(file->text()));
          return MarkovChainGenerator::FromFile(context.ResolvePath(path),
                                                static_cast<int>(min),
                                                static_cast<int>(max));
        }
        const XmlElement* corpus = element.FindChild("corpus");
        if (corpus != nullptr) {
          return MarkovChainGenerator::FromCorpus(corpus->text(),
                                                  static_cast<int>(min),
                                                  static_cast<int>(max));
        }
        // Fall back to the builtin corpus.
        return MarkovChainGenerator::FromCorpus(BuiltinCommentCorpus(),
                                                static_cast<int>(min),
                                                static_cast<int>(max));
      });
}

}  // namespace

std::string ConfigLoadContext::ResolvePath(const std::string& path) const {
  if (path.empty() || path[0] == '/' || base_dir.empty()) return path;
  std::string resolved = base_dir;
  if (resolved.back() != '/') resolved.push_back('/');
  resolved += path;
  return resolved;
}

GeneratorRegistry& GeneratorRegistry::Global() {
  static GeneratorRegistry& registry = *new GeneratorRegistry();
  static std::once_flag once;
  std::call_once(once, [] { RegisterAll(&registry); });
  return registry;
}

void GeneratorRegistry::Register(const std::string& config_name,
                                 Factory factory) {
  factories_[config_name] = std::move(factory);
}

bool GeneratorRegistry::Contains(const std::string& config_name) const {
  return factories_.count(config_name) > 0;
}

StatusOr<GeneratorPtr> GeneratorRegistry::Create(
    const XmlElement& element, const ConfigLoadContext& context) const {
  auto it = factories_.find(element.name());
  if (it == factories_.end()) {
    return NotFoundError("unknown generator '" + element.name() + "'");
  }
  return it->second(element, context);
}

std::vector<std::string> GeneratorRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

void RegisterBuiltinGenerators() { GeneratorRegistry::Global(); }

}  // namespace pdgf
