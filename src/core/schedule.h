#ifndef DBSYNTHPP_CORE_SCHEDULE_H_
#define DBSYNTHPP_CORE_SCHEDULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/topology.h"

namespace pdgf {

// Package dispatch for the generation engine (Figure 2's scheduler box,
// made a first-class layer). The engine builds the package list once,
// then workers claim indices through a Scheduler. Determinism never
// depends on the dispatch policy: every cell's bytes are a pure function
// of (table, row, update), and sorted-mode ordering is enforced
// downstream by the writer stage, so any scheduler that hands out every
// package exactly once produces identical output.

// One schedulable unit: a row range of one table.
struct WorkPackage {
  int table_index;
  uint64_t begin_row;
  uint64_t end_row;
  uint64_t sequence;  // package order within its table
};

// The node-local row range of a table under the meta-scheduler split.
void NodeShare(uint64_t rows, int node_count, int node_id, uint64_t* begin,
               uint64_t* end);

// Splits every table's node-local share into packages of `package_rows`
// rows (the last package of a table may be short). Packages are emitted
// table-major; per-table `sequence` numbers count from 0.
std::vector<WorkPackage> BuildWorkPackages(
    const std::vector<uint64_t>& table_rows, uint64_t package_rows,
    int node_count, int node_id);

// Dispatch policies.
enum class SchedulerKind {
  // One shared atomic cursor over the package list: perfect load balance,
  // one contended cache line. The historical (and default) policy.
  kAtomic,
  // The package list is split into one contiguous stripe per worker
  // (NodeShare split); each worker drains its own stripe front-to-back
  // and, when exhausted, steals from the *head* of the next non-empty
  // stripe. Claims therefore always form a prefix of every stripe, which
  // keeps the per-table "claimed sequences contain every sequence below
  // any parked package" property the sorted-mode backpressure proofs
  // rely on (see writer.h). Near-zero cross-worker traffic on the happy
  // path, work stealing for ragged tails.
  kStriped,
  // Topology-routed dispatch: one contiguous stripe per NUMA node, sized
  // proportionally to the workers placed on that node, drained
  // front-to-back by that node's workers through a per-node cursor.
  // Cross-node stealing happens only when the local stripe drains, and
  // always from the head of the victim stripe — claims stay a union of
  // stripe prefixes, so the sorted-mode progress argument carries over
  // from kStriped unchanged. Workers touch one shared cache line per
  // node instead of one per process, and the packages a node claims are
  // overwhelmingly the ones whose buffers fault on that node.
  kNuma,
};

// "atomic" / "striped" / "numa" (stable CLI spellings).
const char* SchedulerKindName(SchedulerKind kind);
StatusOr<SchedulerKind> ParseSchedulerKind(const std::string& name);

// Contiguous per-node package ranges for kNuma: node n owns packages
// [bounds[n], bounds[n+1]), proportional to workers_per_node (nodes with
// zero workers own zero packages). bounds.size() == nodes + 1. Shared
// with the engine, which uses the same split to route each table's
// writer thread to the node generating the bulk of its packages.
std::vector<uint64_t> PartitionPackagesByNode(
    uint64_t package_count, const std::vector<int>& workers_per_node);

// Post-run dispatch observability (kNuma; empty for other kinds).
struct SchedulerNodeReport {
  int node = 0;
  uint64_t packages = 0;  // claims by workers homed on this node
  uint64_t steals = 0;    // of those, claims taken from a remote stripe
};

// Thread-safe package dispenser. Every index in [0, package_count) is
// returned exactly once across all workers; Next returns false when no
// packages remain for that worker.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Claims the next package for `worker` (0-based engine worker id).
  virtual bool Next(int worker, size_t* index) = 0;

  // Per-node claim/steal counters (kNuma only; empty otherwise). Only
  // meaningful after all workers have drained the scheduler.
  virtual std::vector<SchedulerNodeReport> node_reports() const {
    return {};
  }

  size_t package_count() const { return package_count_; }

 protected:
  explicit Scheduler(size_t package_count) : package_count_(package_count) {}

 private:
  size_t package_count_;
};

// `worker_nodes` maps each worker to its home topology node (size
// worker_count; required for kNuma, ignored by the other kinds — pass
// empty). kNuma with an empty map degenerates to one node-0 stripe.
std::unique_ptr<Scheduler> MakeScheduler(
    SchedulerKind kind, size_t package_count, int worker_count,
    const std::vector<int>& worker_nodes = {});

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_SCHEDULE_H_
