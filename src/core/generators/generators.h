#ifndef DBSYNTHPP_CORE_GENERATORS_GENERATORS_H_
#define DBSYNTHPP_CORE_GENERATORS_GENERATORS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"
#include "core/generator.h"
#include "core/text/dictionary.h"
#include "core/text/markov_model.h"

namespace pdgf {

// ---------------------------------------------------------------------------
// Basic generators (paper §2: "simple generators, like number generators,
// generators based on dictionaries, or reference generators").
// ---------------------------------------------------------------------------

// Sequential surrogate keys: value = start + row * step. DBSynth assigns
// this to columns whose name matches key/id heuristics (paper §3).
class IdGenerator final : public Generator {
 public:
  explicit IdGenerator(int64_t start = 1, int64_t step = 1)
      : start_(start), step_(step) {}

  void Generate(GeneratorContext* context, Value* out) const override;
  // Batch override: pure row arithmetic, no RNG at all.
  void GenerateBatch(BatchContext* context, ValueColumn* out) const override;
  std::string ConfigName() const override { return "gen_IdGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

  int64_t start() const { return start_; }
  int64_t step() const { return step_; }

 private:
  int64_t start_;
  int64_t step_;
};

// Uniform integers in [min, max].
class LongGenerator final : public Generator {
 public:
  LongGenerator(int64_t min, int64_t max) : min_(min), max_(max) {}

  void Generate(GeneratorContext* context, Value* out) const override;
  void GenerateBatch(BatchContext* context, ValueColumn* out) const override;
  std::string ConfigName() const override { return "gen_LongGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

  int64_t min() const { return min_; }
  int64_t max() const { return max_; }

 private:
  int64_t min_;
  int64_t max_;
};

// Uniform doubles in [min, max). With places >= 0 the value is emitted as
// a fixed-point DECIMAL with that scale (paper Fig. 9 "Double (4 places)").
class DoubleGenerator final : public Generator {
 public:
  DoubleGenerator(double min, double max, int places = -1)
      : min_(min), max_(max), places_(places) {}

  void Generate(GeneratorContext* context, Value* out) const override;
  // Batch override hoists the 10^places ladder out of the loop.
  void GenerateBatch(BatchContext* context, ValueColumn* out) const override;
  std::string ConfigName() const override { return "gen_DoubleGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

  double min() const { return min_; }
  double max() const { return max_; }
  int places() const { return places_; }

 private:
  double min_;
  double max_;
  int places_;
};

// Uniform dates in [min, max]. With a non-empty `format` the value is a
// pre-formatted string (e.g. "%m/%d/%Y" -> "11/30/2014", Fig. 9); with an
// empty format it is a DATE value formatted lazily by the output system.
class DateGenerator final : public Generator {
 public:
  DateGenerator(Date min, Date max, std::string format = "")
      : min_(min), max_(max), format_(std::move(format)) {}

  void Generate(GeneratorContext* context, Value* out) const override;
  void GenerateBatch(BatchContext* context, ValueColumn* out) const override;
  std::string ConfigName() const override { return "gen_DateGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

  Date min() const { return min_; }
  Date max() const { return max_; }
  const std::string& format() const { return format_; }

 private:
  Date min_;
  Date max_;
  std::string format_;
};

// Random strings of length in [min_length, max_length] over `charset`.
// The fallback when DBSynth knows nothing about a text column (paper §3:
// "In case nothing is found a random string is generated").
class RandomStringGenerator final : public Generator {
 public:
  static constexpr const char* kDefaultCharset =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

  RandomStringGenerator(int min_length, int max_length,
                        std::string charset = kDefaultCharset)
      : min_length_(min_length),
        max_length_(max_length),
        charset_(std::move(charset)) {}

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override {
    return "gen_RandomStringGenerator";
  }
  void WriteConfig(XmlElement* parent) const override;

  int min_length() const { return min_length_; }
  int max_length() const { return max_length_; }

 private:
  int min_length_;
  int max_length_;
  std::string charset_;
};

// Pattern strings: '#' -> random digit, '?' -> random upper-case letter,
// '*' -> random lower-case letter, anything else literal. Used for phone
// numbers, zip codes, plates, ...
class PatternStringGenerator final : public Generator {
 public:
  explicit PatternStringGenerator(std::string pattern)
      : pattern_(std::move(pattern)) {}

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override {
    return "gen_PatternStringGenerator";
  }
  void WriteConfig(XmlElement* parent) const override;

  const std::string& pattern() const { return pattern_; }

 private:
  std::string pattern_;
};

// A constant value. With caching (default) the Value is parsed once at
// construction; without, it is re-materialized on every call — the
// difference is the "Static Value (no Cache)" base-overhead measurement
// of Figure 7.
class StaticValueGenerator final : public Generator {
 public:
  StaticValueGenerator(Value value, bool cache = true);

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override {
    return "gen_StaticValueGenerator";
  }
  void WriteConfig(XmlElement* parent) const override;

 private:
  Value value_;
  std::string text_;  // textual form, re-parsed when cache_ is false
  bool cache_;
};

// Bernoulli booleans.
class BooleanGenerator final : public Generator {
 public:
  explicit BooleanGenerator(double true_probability = 0.5)
      : true_probability_(true_probability) {}

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override { return "gen_BooleanGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

 private:
  double true_probability_;
};

// Piecewise-uniform values from an extracted equi-width histogram: the
// distribution DBSynth reads from the source database's statistics
// (paper §3: "Possible information includes min/max constraints,
// histograms, ..."). A bucket is drawn by weight, then a point uniform
// within it.
class HistogramGenerator final : public Generator {
 public:
  enum class Output { kLong, kDouble, kDecimal, kDate };

  // `bucket_weights[i]` is the relative mass of the i-th of N equal-width
  // buckets over [min, max).
  HistogramGenerator(double min, double max,
                     std::vector<double> bucket_weights, Output output,
                     int places = 2);

  void Generate(GeneratorContext* context, Value* out) const override;
  // Batch override hoists the degenerate check, bucket width and the
  // decimal scale ladder.
  void GenerateBatch(BatchContext* context, ValueColumn* out) const override;
  std::string ConfigName() const override {
    return "gen_HistogramGenerator";
  }
  void WriteConfig(XmlElement* parent) const override;

  size_t bucket_count() const { return weights_.size(); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  double min_;
  double max_;
  std::vector<double> weights_;
  std::vector<double> cumulative_;
  double total_weight_ = 0;
  Output output_;
  int places_;
};

// ---------------------------------------------------------------------------
// Dictionary-backed generators.
// ---------------------------------------------------------------------------

// Draws from a dictionary: builtin (by name), loaded from file, or inline.
// Sampling honours entry weights (DBSynth stores extracted value
// probabilities, paper §3); `skew` > 0 overlays a Zipf distribution over
// the entry ranks instead; `method` selects the weighted-sampling backend.
class DictListGenerator final : public Generator {
 public:
  enum class Method { kCumulative, kAlias, kUniform, kByRow };

  // Dictionary owned elsewhere (builtin): non-owning.
  DictListGenerator(const Dictionary* dictionary, std::string source_builtin,
                    Method method = Method::kCumulative, double skew = 0);
  // Owning variant (file or inline dictionaries).
  DictListGenerator(std::shared_ptr<const Dictionary> dictionary,
                    std::string source_file, Method method, double skew);

  void Generate(GeneratorContext* context, Value* out) const override;
  // Batch override hoists the empty-dictionary / zipf / method branches.
  void GenerateBatch(BatchContext* context, ValueColumn* out) const override;
  std::string ConfigName() const override { return "gen_DictListGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

  const Dictionary& dictionary() const { return *dictionary_; }
  Method method() const { return method_; }

 private:
  std::shared_ptr<const Dictionary> owned_;
  const Dictionary* dictionary_;
  std::string builtin_name_;  // non-empty if from a builtin
  std::string file_name_;     // non-empty if from a file
  Method method_;
  double skew_;
  std::unique_ptr<ZipfDistribution> zipf_;
};

// first_name last_name from the builtin name dictionaries.
class NameGenerator final : public Generator {
 public:
  NameGenerator();

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override { return "gen_NameGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

 private:
  const Dictionary* first_names_;
  const Dictionary* last_names_;
};

// "123 Maple Street, Springfield, NY 10482"-style addresses.
class AddressGenerator final : public Generator {
 public:
  AddressGenerator();

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override { return "gen_AddressGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

 private:
  const Dictionary* streets_;
  const Dictionary* street_suffixes_;
  const Dictionary* cities_;
  const Dictionary* states_;
};

// "first.last@domain" emails from builtin dictionaries.
class EmailGenerator final : public Generator {
 public:
  EmailGenerator();

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override { return "gen_EmailGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

 private:
  const Dictionary* first_names_;
  const Dictionary* last_names_;
  const Dictionary* domains_;
};

// "http://www.word.domain/word" URLs.
class UrlGenerator final : public Generator {
 public:
  UrlGenerator();

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override { return "gen_UrlGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

 private:
  const Dictionary* words_;
  const Dictionary* domains_;
};

// ---------------------------------------------------------------------------
// Reference generator: the computed-reference strategy (paper §6 class 3,
// "the fastest way of generating correct references ... first implemented
// in PDGF").
// ---------------------------------------------------------------------------

// Generates a value of the referenced column for a pseudo-random row of
// the referenced table, by *recomputing* that field — no tracking, no
// re-reading (paper §4: computation is ~5000x faster than re-reading).
class DefaultReferenceGenerator final : public Generator {
 public:
  enum class Distribution { kUniform, kZipf };

  DefaultReferenceGenerator(std::string table, std::string field,
                            Distribution distribution = Distribution::kUniform,
                            double skew = 0);
  ~DefaultReferenceGenerator() override;

  void Generate(GeneratorContext* context, Value* out) const override;
  // Batch override resolves the referenced coordinates, row count and
  // Zipf table once per batch instead of once per cell.
  void GenerateBatch(BatchContext* context, ValueColumn* out) const override;
  std::string ConfigName() const override {
    return "gen_DefaultReferenceGenerator";
  }
  void WriteConfig(XmlElement* parent) const override;

  const std::string& table() const { return table_; }
  const std::string& field() const { return field_; }

 private:
  // The Zipf table depends on the referenced table's row count, which
  // changes when the same schema is resolved at another scale factor;
  // entries are therefore keyed by size and swapped atomically. A
  // entries are parked on a retirement list (freed with the generator)
  // because concurrent readers may still hold pointers to them; the list
  // is bounded by the number of distinct scale factors used.
  struct ZipfState {
    uint64_t rows;
    ZipfDistribution distribution;
  };

  const ZipfState* ZipfFor(uint64_t rows) const;

  std::string table_;
  std::string field_;
  Distribution distribution_;
  double skew_;
  // Referenced table/field indices are a pure function of the schema
  // that owns this generator; resolved once.
  mutable std::once_flag resolve_once_;
  mutable int ref_table_index_ = -1;
  mutable int ref_field_index_ = -1;
  mutable std::atomic<ZipfState*> zipf_{nullptr};
  // Cold path only (size changes); guards retired_.
  mutable std::mutex retired_mutex_;
  mutable std::vector<std::unique_ptr<ZipfState>> retired_;
};

// ---------------------------------------------------------------------------
// Meta generators (paper §2: "meta generators, which can concatenate
// results from other generators or execute different generators based on
// certain conditions"; [18]).
// ---------------------------------------------------------------------------

// NULLs with probability p, else delegates to the wrapped generator
// (Listing 1 wraps the Markov generator of l_comment in a NullGenerator).
class NullGenerator final : public Generator {
 public:
  NullGenerator(double probability, GeneratorPtr inner);

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override { return "gen_NullGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

  double probability() const { return probability_; }
  const Generator* inner() const { return inner_.get(); }

 private:
  double probability_;
  GeneratorPtr inner_;
};

// Concatenates child results (textually, with optional separator /
// prefix / suffix) — Figure 9's "Sequential (2 double + long)".
class SequentialGenerator final : public Generator {
 public:
  SequentialGenerator(std::vector<GeneratorPtr> children,
                      std::string separator = "", std::string prefix = "",
                      std::string suffix = "");

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override {
    return "gen_SequentialGenerator";
  }
  void WriteConfig(XmlElement* parent) const override;

  size_t child_count() const { return children_.size(); }

 private:
  std::vector<GeneratorPtr> children_;
  std::string separator_;
  std::string prefix_;
  std::string suffix_;
};

// Executes one of its children, chosen pseudo-randomly by weight — the
// "execute different generators based on certain conditions" meta
// generator.
class ConditionalGenerator final : public Generator {
 public:
  struct Branch {
    double weight;
    GeneratorPtr generator;
  };

  explicit ConditionalGenerator(std::vector<Branch> branches);

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override {
    return "gen_ConditionalGenerator";
  }
  void WriteConfig(XmlElement* parent) const override;

  size_t branch_count() const { return branches_.size(); }

 private:
  std::vector<Branch> branches_;
  std::vector<double> cumulative_;
  double total_weight_;
};

// Pads the child's text rendering to a fixed width.
class PaddingGenerator final : public Generator {
 public:
  PaddingGenerator(GeneratorPtr inner, int width, char pad_char = '0',
                   bool pad_left = true);

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override { return "gen_PaddingGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

 private:
  GeneratorPtr inner_;
  int width_;
  char pad_char_;
  bool pad_left_;
};

// Evaluates an arithmetic expression over its children's numeric values
// and the row number: ${row} is the 0-based row, ${child0}..${childN}
// the children. `round_to_long` emits an integer.
class FormulaGenerator final : public Generator {
 public:
  FormulaGenerator(std::string expression, std::vector<GeneratorPtr> children,
                   bool round_to_long = false);

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override { return "gen_FormulaGenerator"; }
  void WriteConfig(XmlElement* parent) const override;

 private:
  std::string expression_;
  std::vector<GeneratorPtr> children_;
  bool round_to_long_;
};

// ---------------------------------------------------------------------------
// Markov chain text generator (paper §3).
// ---------------------------------------------------------------------------

// Generates free text of min..max words from a Markov model. The model
// may come from a DBSynth-extracted binary file (Listing 1's
// "markov\l_comment_markovSamples.bin"), an inline corpus, or the builtin
// corpus.
class MarkovChainGenerator final : public Generator {
 public:
  MarkovChainGenerator(std::shared_ptr<const MarkovModel> model,
                       int min_words, int max_words,
                       std::string model_file = "");

  // Trains a model from `corpus` and wraps it.
  static StatusOr<GeneratorPtr> FromCorpus(std::string_view corpus,
                                           int min_words, int max_words);
  // Loads a serialized model file.
  static StatusOr<GeneratorPtr> FromFile(const std::string& path,
                                         int min_words, int max_words);

  void Generate(GeneratorContext* context, Value* out) const override;
  std::string ConfigName() const override {
    return "gen_MarkovChainGenerator";
  }
  void WriteConfig(XmlElement* parent) const override;

  const MarkovModel& model() const { return *model_; }
  int min_words() const { return min_words_; }
  int max_words() const { return max_words_; }

 private:
  std::shared_ptr<const MarkovModel> model_;
  int min_words_;
  int max_words_;
  std::string model_file_;  // non-empty if loaded from a file
};

// Registers every generator above with GeneratorRegistry::Global().
// Called automatically by the registry; safe to call repeatedly.
void RegisterBuiltinGenerators();

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_GENERATORS_GENERATORS_H_
