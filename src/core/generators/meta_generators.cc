#include <cmath>

#include "core/generators/generators.h"
#include "util/expression.h"
#include "util/strings.h"
#include "util/xml.h"

namespace pdgf {

// --------------------------------------------------------------- Null --

NullGenerator::NullGenerator(double probability, GeneratorPtr inner)
    : probability_(probability), inner_(std::move(inner)) {}

void NullGenerator::Generate(GeneratorContext* context, Value* out) const {
  // One uniform draw decides NULL-ness; the wrapped generator runs in an
  // independent child stream so that the NULL decision never perturbs
  // the inner value sequence.
  if (context->rng().NextDouble() < probability_) {
    out->SetNull();
    return;
  }
  GeneratorContext child = context->Child(0);
  inner_->Generate(&child, out);
}

void NullGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->SetAttribute("probability", StrPrintf("%.17g", probability_));
  inner_->WriteConfig(element);
}

// --------------------------------------------------------- Sequential --

SequentialGenerator::SequentialGenerator(std::vector<GeneratorPtr> children,
                                         std::string separator,
                                         std::string prefix,
                                         std::string suffix)
    : children_(std::move(children)),
      separator_(std::move(separator)),
      prefix_(std::move(prefix)),
      suffix_(std::move(suffix)) {}

void SequentialGenerator::Generate(GeneratorContext* context,
                                   Value* out) const {
  // Children render into a scratch Value, then concatenate textually.
  Value scratch;
  std::string result;
  result.append(prefix_);
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) result.append(separator_);
    GeneratorContext child = context->Child(static_cast<uint32_t>(i));
    children_[i]->Generate(&child, &scratch);
    scratch.AppendText(&result);
  }
  result.append(suffix_);
  out->SetStringMove(std::move(result));
}

void SequentialGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  if (!separator_.empty()) element->SetAttribute("separator", separator_);
  if (!prefix_.empty()) element->SetAttribute("prefix", prefix_);
  if (!suffix_.empty()) element->SetAttribute("suffix", suffix_);
  for (const GeneratorPtr& child : children_) {
    child->WriteConfig(element);
  }
}

// -------------------------------------------------------- Conditional --

ConditionalGenerator::ConditionalGenerator(std::vector<Branch> branches)
    : branches_(std::move(branches)), total_weight_(0) {
  cumulative_.reserve(branches_.size());
  for (const Branch& branch : branches_) {
    total_weight_ += branch.weight > 0 ? branch.weight : 0;
    cumulative_.push_back(total_weight_);
  }
}

void ConditionalGenerator::Generate(GeneratorContext* context,
                                    Value* out) const {
  if (branches_.empty() || total_weight_ <= 0) {
    out->SetNull();
    return;
  }
  double pick = context->rng().NextDouble() * total_weight_;
  size_t index = 0;
  while (index + 1 < cumulative_.size() && pick >= cumulative_[index]) {
    ++index;
  }
  GeneratorContext child = context->Child(static_cast<uint32_t>(index));
  branches_[index].generator->Generate(&child, out);
}

void ConditionalGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  for (const Branch& branch : branches_) {
    XmlElement* case_element = element->AddChild("case");
    case_element->SetAttribute("weight", StrPrintf("%.17g", branch.weight));
    branch.generator->WriteConfig(case_element);
  }
}

// ------------------------------------------------------------ Padding --

PaddingGenerator::PaddingGenerator(GeneratorPtr inner, int width,
                                   char pad_char, bool pad_left)
    : inner_(std::move(inner)),
      width_(width),
      pad_char_(pad_char),
      pad_left_(pad_left) {}

void PaddingGenerator::Generate(GeneratorContext* context, Value* out) const {
  Value scratch;
  GeneratorContext child = context->Child(0);
  inner_->Generate(&child, &scratch);
  std::string text = scratch.ToText();
  if (static_cast<int>(text.size()) < width_) {
    size_t pad = static_cast<size_t>(width_) - text.size();
    if (pad_left_) {
      text.insert(0, pad, pad_char_);
    } else {
      text.append(pad, pad_char_);
    }
  }
  out->SetStringMove(std::move(text));
}

void PaddingGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->SetAttribute("width", std::to_string(width_));
  element->SetAttribute("pad", std::string(1, pad_char_));
  element->SetAttribute("side", pad_left_ ? "left" : "right");
  inner_->WriteConfig(element);
}

// ------------------------------------------------------------ Formula --

FormulaGenerator::FormulaGenerator(std::string expression,
                                   std::vector<GeneratorPtr> children,
                                   bool round_to_long)
    : expression_(std::move(expression)),
      children_(std::move(children)),
      round_to_long_(round_to_long) {}

void FormulaGenerator::Generate(GeneratorContext* context, Value* out) const {
  // Evaluate children once, then the expression over their values.
  Value scratch;
  std::vector<double> child_values(children_.size());
  for (size_t i = 0; i < children_.size(); ++i) {
    GeneratorContext child = context->Child(static_cast<uint32_t>(i));
    children_[i]->Generate(&child, &scratch);
    child_values[i] = scratch.AsDouble();
  }
  uint64_t row = context->row();
  VariableResolver resolver =
      [&child_values, row](std::string_view name) -> StatusOr<double> {
    if (name == "row") return static_cast<double>(row);
    if (StartsWith(name, "child")) {
      int index = std::atoi(std::string(name.substr(5)).c_str());
      if (index >= 0 && static_cast<size_t>(index) < child_values.size()) {
        return child_values[static_cast<size_t>(index)];
      }
    }
    return NotFoundError("unknown formula variable '" + std::string(name) +
                         "'");
  };
  StatusOr<double> value = EvaluateExpression(expression_, resolver);
  if (!value.ok()) {
    out->SetNull();
    return;
  }
  if (round_to_long_) {
    out->SetInt(static_cast<int64_t>(std::llround(*value)));
  } else {
    out->SetDouble(*value);
  }
}

void FormulaGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->SetAttribute("expression", expression_);
  if (round_to_long_) element->SetAttribute("round", "long");
  for (const GeneratorPtr& child : children_) {
    child->WriteConfig(element);
  }
}

}  // namespace pdgf
