#include "core/batch.h"
#include "core/generators/generators.h"
#include "core/session.h"
#include "util/strings.h"
#include "util/xml.h"

namespace pdgf {

DefaultReferenceGenerator::DefaultReferenceGenerator(std::string table,
                                                     std::string field,
                                                     Distribution distribution,
                                                     double skew)
    : table_(std::move(table)),
      field_(std::move(field)),
      distribution_(distribution),
      skew_(skew) {}

DefaultReferenceGenerator::~DefaultReferenceGenerator() {
  // Safe: no generation is in flight at destruction time.
  delete zipf_.load(std::memory_order_acquire);
}

const DefaultReferenceGenerator::ZipfState*
DefaultReferenceGenerator::ZipfFor(uint64_t rows) const {
  ZipfState* state = zipf_.load(std::memory_order_acquire);
  if (state != nullptr && state->rows == rows) return state;
  // Build a table for this size and publish it. A racing thread may
  // publish first; then our copy is discarded. A *replaced* entry (size
  // change between runs) moves to the retirement list — readers may
  // still hold pointers to it.
  ZipfState* fresh = new ZipfState{rows, ZipfDistribution(rows, skew_)};
  if (zipf_.compare_exchange_strong(state, fresh,
                                    std::memory_order_acq_rel)) {
    if (state != nullptr) {
      std::lock_guard<std::mutex> lock(retired_mutex_);
      retired_.emplace_back(state);
    }
    return fresh;
  }
  delete fresh;
  // Another thread installed a state; it may still be for a different
  // size (two sessions used concurrently) — in that rare case fall back
  // to an uncached distribution via recursion-free retry.
  state = zipf_.load(std::memory_order_acquire);
  if (state->rows == rows) return state;
  return nullptr;
}

void DefaultReferenceGenerator::Generate(GeneratorContext* context,
                                         Value* out) const {
  const GenerationSession* session = context->session();
  if (session == nullptr) {
    out->SetNull();
    return;
  }
  // The referenced coordinates are a pure function of the schema that
  // owns this generator; resolve them once.
  std::call_once(resolve_once_, [this, session] {
    ref_table_index_ = session->schema().FindTableIndex(table_);
    if (ref_table_index_ >= 0) {
      ref_field_index_ =
          session->schema()
              .tables[static_cast<size_t>(ref_table_index_)]
              .FindFieldIndex(field_);
    }
  });
  if (ref_table_index_ < 0 || ref_field_index_ < 0) {
    out->SetNull();
    return;
  }
  uint64_t rows = session->TableRows(ref_table_index_);
  if (rows == 0) {
    out->SetNull();
    return;
  }
  uint64_t target_row;
  if (distribution_ == Distribution::kZipf && skew_ > 0) {
    const ZipfState* state = ZipfFor(rows);
    if (state != nullptr) {
      target_row = state->distribution.Sample(&context->rng());
    } else {
      // Contended cache miss (concurrent sessions at different scales):
      // sample from a stack-local distribution.
      ZipfDistribution distribution(rows, skew_);
      target_row = distribution.Sample(&context->rng());
    }
  } else {
    target_row = context->rng().NextBounded(rows);
  }
  // Recompute the referenced field's value at the chosen row (update 0 —
  // references are resolved against the base data). This is the
  // computed-reference strategy: no tracking tables, no re-reads.
  session->GenerateField(ref_table_index_, ref_field_index_, target_row,
                         /*update=*/0, out);
}

void DefaultReferenceGenerator::GenerateBatch(BatchContext* context,
                                              ValueColumn* out) const {
  const size_t n = context->size();
  const GenerationSession* session = context->session();
  if (session == nullptr) {
    for (size_t i = 0; i < n; ++i) out->value(i)->SetNull();
    return;
  }
  std::call_once(resolve_once_, [this, session] {
    ref_table_index_ = session->schema().FindTableIndex(table_);
    if (ref_table_index_ >= 0) {
      ref_field_index_ =
          session->schema()
              .tables[static_cast<size_t>(ref_table_index_)]
              .FindFieldIndex(field_);
    }
  });
  if (ref_table_index_ < 0 || ref_field_index_ < 0) {
    for (size_t i = 0; i < n; ++i) out->value(i)->SetNull();
    return;
  }
  uint64_t rows = session->TableRows(ref_table_index_);
  if (rows == 0) {
    for (size_t i = 0; i < n; ++i) out->value(i)->SetNull();
    return;
  }
  // Referenced values are recomputed per cell (the computed-reference
  // strategy keeps no tracking tables), but the target-row draw hoists
  // the distribution setup: the Zipf table lookup happens once per batch
  // instead of once per cell.
  if (distribution_ == Distribution::kZipf && skew_ > 0) {
    const ZipfState* state = ZipfFor(rows);
    for (size_t i = 0; i < n; ++i) {
      Xorshift64 rng(context->seed(i));
      uint64_t target_row;
      if (state != nullptr) {
        target_row = state->distribution.Sample(&rng);
      } else {
        ZipfDistribution distribution(rows, skew_);
        target_row = distribution.Sample(&rng);
      }
      session->GenerateField(ref_table_index_, ref_field_index_, target_row,
                             /*update=*/0, out->value(i));
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Xorshift64 rng(context->seed(i));
    session->GenerateField(ref_table_index_, ref_field_index_,
                           rng.NextBounded(rows), /*update=*/0,
                           out->value(i));
  }
}

void DefaultReferenceGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  XmlElement* reference = element->AddChild("reference");
  reference->SetAttribute("table", table_);
  reference->SetAttribute("field", field_);
  if (distribution_ == Distribution::kZipf) {
    element->SetAttribute("distribution", "zipf");
    element->SetAttribute("skew", StrPrintf("%.17g", skew_));
  }
}

}  // namespace pdgf
