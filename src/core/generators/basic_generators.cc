#include <algorithm>
#include <cmath>

#include "core/batch.h"
#include "core/generators/generators.h"
#include "util/strings.h"
#include "util/xml.h"

namespace pdgf {

// Batch overrides below replicate their scalar bodies exactly. A scalar
// call seeds the context's Xorshift64 from the field seed, so a batch
// loop that constructs `Xorshift64 rng(context->seed(i))` per row draws
// the identical stream — the parity suite asserts bit-equality.
//
// The hot generators (Long/Double/Date, and the histogram in its own
// file) additionally vectorize the uniform-update path: seeds, first
// draws and the bounded/unit-double maps run through the SIMD kernels in
// util/simd_rng.h over kSimdTile-row stripes. The kernels are
// bit-identical to the scalar primitives at every dispatch level, so
// this is purely an instruction-selection change; the varying-update
// (mutable fields in update mode) path keeps the scalar walk.

namespace {

// Stripe width for the stack-resident seed/draw scratch of the
// vectorized paths. A multiple of every kernel's lane width; small
// enough that three uint64 arrays stay comfortably on the stack.
constexpr size_t kSimdTile = 256;

}  // namespace

// ----------------------------------------------------------------- Id --

void IdGenerator::Generate(GeneratorContext* context, Value* out) const {
  out->SetInt(start_ + static_cast<int64_t>(context->row()) * step_);
}

void IdGenerator::GenerateBatch(BatchContext* context,
                                ValueColumn* out) const {
  const size_t n = context->size();
  for (size_t i = 0; i < n; ++i) {
    out->value(i)->SetInt(start_ +
                          static_cast<int64_t>(context->row(i)) * step_);
  }
}

void IdGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  if (start_ != 1) element->SetAttribute("start", std::to_string(start_));
  if (step_ != 1) element->SetAttribute("step", std::to_string(step_));
}

// --------------------------------------------------------------- Long --

void LongGenerator::Generate(GeneratorContext* context, Value* out) const {
  out->SetInt(context->rng().NextInRange(min_, max_));
}

void LongGenerator::GenerateBatch(BatchContext* context,
                                  ValueColumn* out) const {
  const size_t n = context->size();
  // NextInRange degenerate cases consume no draw: hi <= lo returns lo,
  // and the full-width range wraps span to 0 (NextBounded(0) == 0).
  const uint64_t span = max_ <= min_
                            ? 0
                            : static_cast<uint64_t>(max_) -
                                  static_cast<uint64_t>(min_) + 1;
  if (span == 0) {
    for (size_t i = 0; i < n; ++i) out->value(i)->SetInt(min_);
    return;
  }
  if (context->has_uniform_seeds()) {
    uint64_t seeds[kSimdTile];
    uint64_t draws[kSimdTile];
    uint64_t mapped[kSimdTile];
    for (size_t base = 0; base < n; base += kSimdTile) {
      const size_t count = std::min(kSimdTile, n - base);
      context->FillSeeds(base, count, seeds);
      simd::FirstDrawBatch(seeds, count, draws);
      simd::BoundedFromDraws(draws, span, count, mapped);
      for (size_t i = 0; i < count; ++i) {
        out->value(base + i)->SetInt(min_ + static_cast<int64_t>(mapped[i]));
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Xorshift64 rng(context->seed(i));
    out->value(i)->SetInt(rng.NextInRange(min_, max_));
  }
}

void LongGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->AddChild("min")->set_text(std::to_string(min_));
  element->AddChild("max")->set_text(std::to_string(max_));
}

// ------------------------------------------------------------- Double --

void DoubleGenerator::Generate(GeneratorContext* context, Value* out) const {
  double value = min_ + context->rng().NextDouble() * (max_ - min_);
  if (places_ < 0) {
    out->SetDouble(value);
    return;
  }
  double pow10 = 1.0;
  for (int i = 0; i < places_; ++i) pow10 *= 10.0;
  out->SetDecimal(static_cast<int64_t>(std::llround(value * pow10)), places_);
}

void DoubleGenerator::GenerateBatch(BatchContext* context,
                                    ValueColumn* out) const {
  const size_t n = context->size();
  const double span = max_ - min_;
  double pow10 = 1.0;
  for (int i = 0; i < places_; ++i) pow10 *= 10.0;
  if (context->has_uniform_seeds()) {
    // The SIMD kernels stop at the unit double (whose int->double
    // conversion is exact at every dispatch level); the min_ + u * span
    // expression and the llround quantization stay in scalar C++ so the
    // floating-point rounding sequence is literally the scalar path's.
    uint64_t seeds[kSimdTile];
    uint64_t draws[kSimdTile];
    double unit[kSimdTile];
    for (size_t base = 0; base < n; base += kSimdTile) {
      const size_t count = std::min(kSimdTile, n - base);
      context->FillSeeds(base, count, seeds);
      simd::FirstDrawBatch(seeds, count, draws);
      simd::UnitDoubleFromDraws(draws, count, unit);
      if (places_ < 0) {
        for (size_t i = 0; i < count; ++i) {
          out->value(base + i)->SetDouble(min_ + unit[i] * span);
        }
      } else {
        for (size_t i = 0; i < count; ++i) {
          double value = min_ + unit[i] * span;
          out->value(base + i)->SetDecimal(
              static_cast<int64_t>(std::llround(value * pow10)), places_);
        }
      }
    }
    return;
  }
  if (places_ < 0) {
    for (size_t i = 0; i < n; ++i) {
      Xorshift64 rng(context->seed(i));
      out->value(i)->SetDouble(min_ + rng.NextDouble() * span);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Xorshift64 rng(context->seed(i));
    double value = min_ + rng.NextDouble() * span;
    out->value(i)->SetDecimal(
        static_cast<int64_t>(std::llround(value * pow10)), places_);
  }
}

void DoubleGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->AddChild("min")->set_text(StrPrintf("%.17g", min_));
  element->AddChild("max")->set_text(StrPrintf("%.17g", max_));
  if (places_ >= 0) {
    element->SetAttribute("places", std::to_string(places_));
  }
}

// --------------------------------------------------------------- Date --

void DateGenerator::Generate(GeneratorContext* context, Value* out) const {
  int64_t days = context->rng().NextInRange(min_.days_since_epoch(),
                                            max_.days_since_epoch());
  if (format_.empty()) {
    out->SetDate(Date(days));
    return;
  }
  // Pre-formatted date string (eager formatting, paper Fig. 9).
  std::string* buffer = out->MutableString();
  *buffer = Date(days).Format(format_);
}

void DateGenerator::GenerateBatch(BatchContext* context,
                                  ValueColumn* out) const {
  const size_t n = context->size();
  const int64_t lo = min_.days_since_epoch();
  const int64_t hi = max_.days_since_epoch();
  const uint64_t span =
      hi <= lo ? 0
               : static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (context->has_uniform_seeds()) {
    uint64_t seeds[kSimdTile];
    uint64_t draws[kSimdTile];
    uint64_t mapped[kSimdTile];
    for (size_t base = 0; base < n; base += kSimdTile) {
      const size_t count = std::min(kSimdTile, n - base);
      if (span == 0) {
        for (size_t i = 0; i < count; ++i) mapped[i] = 0;
      } else {
        context->FillSeeds(base, count, seeds);
        simd::FirstDrawBatch(seeds, count, draws);
        simd::BoundedFromDraws(draws, span, count, mapped);
      }
      if (format_.empty()) {
        for (size_t i = 0; i < count; ++i) {
          out->value(base + i)->SetDate(
              Date(lo + static_cast<int64_t>(mapped[i])));
        }
      } else {
        for (size_t i = 0; i < count; ++i) {
          std::string* buffer = out->value(base + i)->MutableString();
          *buffer =
              Date(lo + static_cast<int64_t>(mapped[i])).Format(format_);
        }
      }
    }
    return;
  }
  if (format_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      Xorshift64 rng(context->seed(i));
      out->value(i)->SetDate(Date(rng.NextInRange(lo, hi)));
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Xorshift64 rng(context->seed(i));
    int64_t days = rng.NextInRange(lo, hi);
    std::string* buffer = out->value(i)->MutableString();
    *buffer = Date(days).Format(format_);
  }
}

void DateGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->AddChild("min")->set_text(min_.ToString());
  element->AddChild("max")->set_text(max_.ToString());
  if (!format_.empty()) {
    element->SetAttribute("format", format_);
  }
}

// ------------------------------------------------------- RandomString --

void RandomStringGenerator::Generate(GeneratorContext* context,
                                     Value* out) const {
  int length = static_cast<int>(
      context->rng().NextInRange(min_length_, max_length_));
  std::string* buffer = out->MutableString();
  buffer->reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    buffer->push_back(
        charset_[context->rng().NextBounded(charset_.size())]);
  }
}

void RandomStringGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->AddChild("min")->set_text(std::to_string(min_length_));
  element->AddChild("max")->set_text(std::to_string(max_length_));
  if (charset_ != kDefaultCharset) {
    element->SetAttribute("charset", charset_);
  }
}

// ------------------------------------------------------ PatternString --

void PatternStringGenerator::Generate(GeneratorContext* context,
                                      Value* out) const {
  std::string* buffer = out->MutableString();
  buffer->reserve(pattern_.size());
  for (char c : pattern_) {
    switch (c) {
      case '#':
        buffer->push_back(
            static_cast<char>('0' + context->rng().NextBounded(10)));
        break;
      case '?':
        buffer->push_back(
            static_cast<char>('A' + context->rng().NextBounded(26)));
        break;
      case '*':
        buffer->push_back(
            static_cast<char>('a' + context->rng().NextBounded(26)));
        break;
      default:
        buffer->push_back(c);
    }
  }
}

void PatternStringGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->SetAttribute("pattern", pattern_);
}

// -------------------------------------------------------- StaticValue --

StaticValueGenerator::StaticValueGenerator(Value value, bool cache)
    : value_(std::move(value)), text_(value_.ToText()), cache_(cache) {}

void StaticValueGenerator::Generate(GeneratorContext* context,
                                    Value* out) const {
  (void)context;
  if (cache_) {
    *out = value_;
    return;
  }
  // Uncached mode: re-materialize the value from its textual form every
  // call (the "Static Value (no Cache)" baseline of Figure 7).
  switch (value_.kind()) {
    case Value::Kind::kNull:
      out->SetNull();
      break;
    case Value::Kind::kInt: {
      int64_t v = 0;
      for (char c : text_) {
        if (c == '-') continue;
        v = v * 10 + (c - '0');
      }
      if (!text_.empty() && text_[0] == '-') v = -v;
      out->SetInt(v);
      break;
    }
    default:
      out->SetString(text_);
      break;
  }
}

void StaticValueGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  switch (value_.kind()) {
    case Value::Kind::kNull:
      element->SetAttribute("type", "null");
      break;
    case Value::Kind::kInt:
      element->SetAttribute("type", "long");
      break;
    case Value::Kind::kDouble:
      element->SetAttribute("type", "double");
      break;
    default:
      element->SetAttribute("type", "string");
      break;
  }
  element->set_text(text_);
  if (!cache_) element->SetAttribute("cache", "false");
}

// ------------------------------------------------------------ Boolean --

void BooleanGenerator::Generate(GeneratorContext* context, Value* out) const {
  out->SetBool(context->rng().NextDouble() < true_probability_);
}

void BooleanGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->SetAttribute("probability", StrPrintf("%.17g", true_probability_));
}

}  // namespace pdgf
