#include <algorithm>
#include <cmath>

#include "core/batch.h"
#include "core/generators/generators.h"
#include "util/strings.h"
#include "util/xml.h"

namespace pdgf {

HistogramGenerator::HistogramGenerator(double min, double max,
                                       std::vector<double> bucket_weights,
                                       Output output, int places)
    : min_(min),
      max_(max < min ? min : max),
      weights_(std::move(bucket_weights)),
      output_(output),
      places_(places) {
  cumulative_.reserve(weights_.size());
  total_weight_ = 0;
  for (double weight : weights_) {
    total_weight_ += weight > 0 ? weight : 0;
    cumulative_.push_back(total_weight_);
  }
}

void HistogramGenerator::Generate(GeneratorContext* context,
                                  Value* out) const {
  double value;
  if (weights_.empty() || total_weight_ <= 0 || max_ <= min_) {
    value = min_;
  } else {
    // Pick a bucket by weight, then a uniform point inside it — the
    // piecewise-uniform distribution the extracted histogram encodes.
    double target = context->rng().NextDouble() * total_weight_;
    size_t bucket = 0;
    while (bucket + 1 < cumulative_.size() &&
           target >= cumulative_[bucket]) {
      ++bucket;
    }
    double width = (max_ - min_) / static_cast<double>(weights_.size());
    value = min_ + (static_cast<double>(bucket) +
                    context->rng().NextDouble()) *
                       width;
  }
  switch (output_) {
    case Output::kLong:
      out->SetInt(static_cast<int64_t>(std::llround(value)));
      return;
    case Output::kDouble:
      out->SetDouble(value);
      return;
    case Output::kDecimal: {
      double pow10 = 1.0;
      for (int i = 0; i < places_; ++i) pow10 *= 10.0;
      out->SetDecimal(static_cast<int64_t>(std::llround(value * pow10)),
                      places_);
      return;
    }
    case Output::kDate:
      out->SetDate(Date(static_cast<int64_t>(std::llround(value))));
      return;
  }
}

void HistogramGenerator::GenerateBatch(BatchContext* context,
                                       ValueColumn* out) const {
  const size_t n = context->size();
  const bool degenerate =
      weights_.empty() || total_weight_ <= 0 || max_ <= min_;
  const double width =
      degenerate ? 0.0
                 : (max_ - min_) / static_cast<double>(weights_.size());
  double pow10 = 1.0;
  if (output_ == Output::kDecimal) {
    for (int i = 0; i < places_; ++i) pow10 *= 10.0;
  }
  // Vectorized path: the two per-row draws (bucket pick, intra-bucket
  // point) come from the SIMD kernels over tile stripes; the weighted
  // bucket scan and output quantization stay scalar, computed with the
  // exact expressions of the scalar body.
  if (!degenerate && context->has_uniform_seeds()) {
    constexpr size_t kTile = 256;
    uint64_t seeds[kTile];
    uint64_t draws1[kTile];
    uint64_t draws2[kTile];
    double unit1[kTile];
    double unit2[kTile];
    for (size_t base = 0; base < n; base += kTile) {
      const size_t count = std::min(kTile, n - base);
      context->FillSeeds(base, count, seeds);
      simd::DrawPairBatch(seeds, count, draws1, draws2);
      simd::UnitDoubleFromDraws(draws1, count, unit1);
      simd::UnitDoubleFromDraws(draws2, count, unit2);
      for (size_t i = 0; i < count; ++i) {
        double target = unit1[i] * total_weight_;
        size_t bucket = 0;
        while (bucket + 1 < cumulative_.size() &&
               target >= cumulative_[bucket]) {
          ++bucket;
        }
        double value =
            min_ + (static_cast<double>(bucket) + unit2[i]) * width;
        Value* cell = out->value(base + i);
        switch (output_) {
          case Output::kLong:
            cell->SetInt(static_cast<int64_t>(std::llround(value)));
            break;
          case Output::kDouble:
            cell->SetDouble(value);
            break;
          case Output::kDecimal:
            cell->SetDecimal(
                static_cast<int64_t>(std::llround(value * pow10)), places_);
            break;
          case Output::kDate:
            cell->SetDate(Date(static_cast<int64_t>(std::llround(value))));
            break;
        }
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    double value;
    if (degenerate) {
      value = min_;
    } else {
      Xorshift64 rng(context->seed(i));
      double target = rng.NextDouble() * total_weight_;
      size_t bucket = 0;
      while (bucket + 1 < cumulative_.size() &&
             target >= cumulative_[bucket]) {
        ++bucket;
      }
      value = min_ + (static_cast<double>(bucket) + rng.NextDouble()) * width;
    }
    switch (output_) {
      case Output::kLong:
        out->value(i)->SetInt(static_cast<int64_t>(std::llround(value)));
        break;
      case Output::kDouble:
        out->value(i)->SetDouble(value);
        break;
      case Output::kDecimal:
        out->value(i)->SetDecimal(
            static_cast<int64_t>(std::llround(value * pow10)), places_);
        break;
      case Output::kDate:
        out->value(i)->SetDate(Date(static_cast<int64_t>(std::llround(value))));
        break;
    }
  }
}

void HistogramGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->AddChild("min")->set_text(StrPrintf("%.17g", min_));
  element->AddChild("max")->set_text(StrPrintf("%.17g", max_));
  switch (output_) {
    case Output::kLong:
      element->SetAttribute("output", "long");
      break;
    case Output::kDouble:
      element->SetAttribute("output", "double");
      break;
    case Output::kDecimal:
      element->SetAttribute("output", "decimal");
      element->SetAttribute("places", std::to_string(places_));
      break;
    case Output::kDate:
      element->SetAttribute("output", "date");
      break;
  }
  XmlElement* buckets = element->AddChild("buckets");
  std::string text;
  for (size_t i = 0; i < weights_.size(); ++i) {
    if (i > 0) text.push_back(' ');
    text += StrPrintf("%.17g", weights_[i]);
  }
  buckets->set_text(text);
}

}  // namespace pdgf
