#include "core/generators/generators.h"
#include "util/xml.h"

namespace pdgf {

MarkovChainGenerator::MarkovChainGenerator(
    std::shared_ptr<const MarkovModel> model, int min_words, int max_words,
    std::string model_file)
    : model_(std::move(model)),
      min_words_(min_words),
      max_words_(max_words),
      model_file_(std::move(model_file)) {}

StatusOr<GeneratorPtr> MarkovChainGenerator::FromCorpus(
    std::string_view corpus, int min_words, int max_words) {
  auto model = std::make_shared<MarkovModel>();
  model->AddSample(corpus);
  model->Finalize();
  if (model->word_count() == 0) {
    return InvalidArgumentError("empty Markov training corpus");
  }
  return GeneratorPtr(
      new MarkovChainGenerator(std::move(model), min_words, max_words));
}

StatusOr<GeneratorPtr> MarkovChainGenerator::FromFile(const std::string& path,
                                                      int min_words,
                                                      int max_words) {
  PDGF_ASSIGN_OR_RETURN(MarkovModel model, MarkovModel::Load(path));
  auto shared = std::make_shared<MarkovModel>(std::move(model));
  return GeneratorPtr(
      new MarkovChainGenerator(std::move(shared), min_words, max_words, path));
}

void MarkovChainGenerator::Generate(GeneratorContext* context,
                                    Value* out) const {
  out->SetStringMove(
      model_->Generate(&context->rng(), min_words_, max_words_));
}

void MarkovChainGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  element->AddChild("min")->set_text(std::to_string(min_words_));
  element->AddChild("max")->set_text(std::to_string(max_words_));
  if (!model_file_.empty()) {
    element->AddChild("file")->set_text(model_file_);
  } else {
    element->SetAttribute("builtin", "true");
  }
}

}  // namespace pdgf
