#include <cstdio>

#include "core/batch.h"
#include "core/generators/generators.h"
#include "core/text/builtin_dictionaries.h"
#include "util/strings.h"
#include "util/xml.h"

namespace pdgf {

// ----------------------------------------------------------- DictList --

DictListGenerator::DictListGenerator(const Dictionary* dictionary,
                                     std::string source_builtin,
                                     Method method, double skew)
    : owned_(nullptr),
      dictionary_(dictionary),
      builtin_name_(std::move(source_builtin)),
      method_(method),
      skew_(skew) {
  if (skew_ > 0 && dictionary_ != nullptr && !dictionary_->empty()) {
    zipf_ = std::make_unique<ZipfDistribution>(dictionary_->size(), skew_);
  }
}

DictListGenerator::DictListGenerator(
    std::shared_ptr<const Dictionary> dictionary, std::string source_file,
    Method method, double skew)
    : owned_(std::move(dictionary)),
      dictionary_(owned_.get()),
      file_name_(std::move(source_file)),
      method_(method),
      skew_(skew) {
  if (skew_ > 0 && dictionary_ != nullptr && !dictionary_->empty()) {
    zipf_ = std::make_unique<ZipfDistribution>(dictionary_->size(), skew_);
  }
}

void DictListGenerator::Generate(GeneratorContext* context,
                                 Value* out) const {
  if (dictionary_ == nullptr || dictionary_->empty()) {
    out->SetNull();
    return;
  }
  if (zipf_ != nullptr) {
    out->SetString(dictionary_->value(zipf_->Sample(&context->rng())));
    return;
  }
  switch (method_) {
    case Method::kCumulative:
      out->SetString(dictionary_->Sample(&context->rng()));
      break;
    case Method::kAlias:
      out->SetString(dictionary_->SampleAlias(&context->rng()));
      break;
    case Method::kUniform:
      out->SetString(dictionary_->SampleUniform(&context->rng()));
      break;
    case Method::kByRow:
      // Deterministic row -> entry mapping (e.g. nation keys -> names).
      out->SetString(
          dictionary_->value(context->row() % dictionary_->size()));
      break;
  }
}

void DictListGenerator::GenerateBatch(BatchContext* context,
                                      ValueColumn* out) const {
  const size_t n = context->size();
  if (dictionary_ == nullptr || dictionary_->empty()) {
    for (size_t i = 0; i < n; ++i) out->value(i)->SetNull();
    return;
  }
  // The zipf/method dispatch is a per-generator invariant: branch once
  // and run a tight loop per arm.
  if (zipf_ != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      Xorshift64 rng(context->seed(i));
      out->value(i)->SetString(dictionary_->value(zipf_->Sample(&rng)));
    }
    return;
  }
  switch (method_) {
    case Method::kCumulative:
      for (size_t i = 0; i < n; ++i) {
        Xorshift64 rng(context->seed(i));
        out->value(i)->SetString(dictionary_->Sample(&rng));
      }
      break;
    case Method::kAlias:
      for (size_t i = 0; i < n; ++i) {
        Xorshift64 rng(context->seed(i));
        out->value(i)->SetString(dictionary_->SampleAlias(&rng));
      }
      break;
    case Method::kUniform:
      for (size_t i = 0; i < n; ++i) {
        Xorshift64 rng(context->seed(i));
        out->value(i)->SetString(dictionary_->SampleUniform(&rng));
      }
      break;
    case Method::kByRow:
      // No RNG draws at all: pure row arithmetic.
      for (size_t i = 0; i < n; ++i) {
        out->value(i)->SetString(
            dictionary_->value(context->row(i) % dictionary_->size()));
      }
      break;
  }
}

void DictListGenerator::WriteConfig(XmlElement* parent) const {
  XmlElement* element = parent->AddChild(ConfigName());
  if (!builtin_name_.empty()) {
    element->SetAttribute("builtin", builtin_name_);
  } else if (!file_name_.empty()) {
    element->AddChild("file")->set_text(file_name_);
  } else if (dictionary_ != nullptr) {
    // Inline dictionary.
    XmlElement* entries = element->AddChild("entries");
    for (size_t i = 0; i < dictionary_->size(); ++i) {
      XmlElement* entry = entries->AddChild("entry");
      entry->set_text(dictionary_->value(i));
      if (dictionary_->weight(i) != 1.0) {
        entry->SetAttribute("weight",
                            StrPrintf("%.17g", dictionary_->weight(i)));
      }
    }
  }
  switch (method_) {
    case Method::kCumulative:
      break;  // default
    case Method::kAlias:
      element->SetAttribute("method", "alias");
      break;
    case Method::kUniform:
      element->SetAttribute("method", "uniform");
      break;
    case Method::kByRow:
      element->SetAttribute("method", "byrow");
      break;
  }
  if (skew_ > 0) element->SetAttribute("skew", StrPrintf("%.17g", skew_));
}

// --------------------------------------------------------------- Name --

NameGenerator::NameGenerator()
    : first_names_(FindBuiltinDictionary("first_names")),
      last_names_(FindBuiltinDictionary("last_names")) {}

void NameGenerator::Generate(GeneratorContext* context, Value* out) const {
  std::string* buffer = out->MutableString();
  buffer->append(first_names_->SampleUniform(&context->rng()));
  buffer->push_back(' ');
  buffer->append(last_names_->SampleUniform(&context->rng()));
}

void NameGenerator::WriteConfig(XmlElement* parent) const {
  parent->AddChild(ConfigName());
}

// ------------------------------------------------------------ Address --

AddressGenerator::AddressGenerator()
    : streets_(FindBuiltinDictionary("streets")),
      street_suffixes_(FindBuiltinDictionary("street_suffixes")),
      cities_(FindBuiltinDictionary("cities")),
      states_(FindBuiltinDictionary("states")) {}

void AddressGenerator::Generate(GeneratorContext* context, Value* out) const {
  Xorshift64& rng = context->rng();
  std::string* buffer = out->MutableString();
  char number[8];
  std::snprintf(number, sizeof(number), "%d",
                static_cast<int>(rng.NextInRange(1, 9999)));
  buffer->append(number);
  buffer->push_back(' ');
  buffer->append(streets_->SampleUniform(&rng));
  buffer->push_back(' ');
  buffer->append(street_suffixes_->SampleUniform(&rng));
  buffer->append(", ");
  buffer->append(cities_->SampleUniform(&rng));
  buffer->append(", ");
  buffer->append(states_->SampleUniform(&rng));
  char zip[8];
  std::snprintf(zip, sizeof(zip), " %05d",
                static_cast<int>(rng.NextInRange(501, 99950)));
  buffer->append(zip);
}

void AddressGenerator::WriteConfig(XmlElement* parent) const {
  parent->AddChild(ConfigName());
}

// -------------------------------------------------------------- Email --

EmailGenerator::EmailGenerator()
    : first_names_(FindBuiltinDictionary("first_names")),
      last_names_(FindBuiltinDictionary("last_names")),
      domains_(FindBuiltinDictionary("email_domains")) {}

void EmailGenerator::Generate(GeneratorContext* context, Value* out) const {
  Xorshift64& rng = context->rng();
  std::string* buffer = out->MutableString();
  std::string first = AsciiLower(first_names_->SampleUniform(&rng));
  std::string last = AsciiLower(last_names_->SampleUniform(&rng));
  buffer->append(first);
  buffer->push_back('.');
  buffer->append(last);
  // Disambiguating digits keep the domain large in scale-out scenarios.
  char digits[8];
  std::snprintf(digits, sizeof(digits), "%d",
                static_cast<int>(rng.NextInRange(0, 999)));
  buffer->append(digits);
  buffer->push_back('@');
  buffer->append(domains_->SampleUniform(&rng));
}

void EmailGenerator::WriteConfig(XmlElement* parent) const {
  parent->AddChild(ConfigName());
}

// ---------------------------------------------------------------- Url --

UrlGenerator::UrlGenerator()
    : words_(FindBuiltinDictionary("url_words")),
      domains_(FindBuiltinDictionary("email_domains")) {}

void UrlGenerator::Generate(GeneratorContext* context, Value* out) const {
  Xorshift64& rng = context->rng();
  std::string* buffer = out->MutableString();
  buffer->append("http://www.");
  buffer->append(domains_->SampleUniform(&rng));
  buffer->push_back('/');
  buffer->append(words_->SampleUniform(&rng));
  if (rng.NextDouble() < 0.5) {
    buffer->push_back('/');
    buffer->append(words_->SampleUniform(&rng));
  }
}

void UrlGenerator::WriteConfig(XmlElement* parent) const {
  parent->AddChild(ConfigName());
}

}  // namespace pdgf
