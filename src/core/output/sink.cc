#include "core/output/sink.h"

#include <errno.h>
#include <pthread.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

namespace pdgf {

StatusOr<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path) {
  FILE* file = fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return IoError("cannot create '" + path + "': " + strerror(errno));
  }
  // A generous stdio buffer keeps write syscalls rare.
  setvbuf(file, nullptr, _IOFBF, 1 << 20);
  return std::unique_ptr<FileSink>(new FileSink(path, file));
}

FileSink::~FileSink() {
  if (file_ != nullptr) {
    fclose(file_);
  }
}

Status FileSink::Write(std::string_view data) {
  if (file_ == nullptr) {
    return FailedPreconditionError("sink already closed: " + path_);
  }
  size_t written = fwrite(data.data(), 1, data.size(), file_);
  if (written != data.size()) {
    return IoError("short write to '" + path_ + "'");
  }
  AddBytes(data.size());
  return Status::Ok();
}

Status FileSink::Close() {
  if (file_ == nullptr) return Status::Ok();
  int result = fclose(file_);
  file_ = nullptr;
  if (result != 0) {
    return IoError("close failed for '" + path_ + "'");
  }
  return Status::Ok();
}

namespace {

// write() with SIGPIPE suppressed on this thread: block the signal,
// write, drain a SIGPIPE the write generated, restore the old mask. The
// non-socket twin of send(MSG_NOSIGNAL) — a broken FIFO/pipe surfaces as
// EPIPE instead of killing a process that left SIGPIPE at SIG_DFL. A
// SIGPIPE already pending on entry is left untouched (the drain is
// skipped so a foreign pending signal is never consumed).
ssize_t WriteNoSigpipe(int fd, const void* buf, size_t len) {
  sigset_t pipe_set;
  sigemptyset(&pipe_set);
  sigaddset(&pipe_set, SIGPIPE);
  sigset_t pending;
  bool already_pending =
      sigpending(&pending) == 0 && sigismember(&pending, SIGPIPE) == 1;
  sigset_t old_mask;
  bool masked =
      pthread_sigmask(SIG_BLOCK, &pipe_set, &old_mask) == 0;
  ssize_t n = ::write(fd, buf, len);
  int saved_errno = errno;
  if (masked) {
    if (n < 0 && saved_errno == EPIPE && !already_pending) {
      // Reap the SIGPIPE this write queued so unblocking cannot deliver
      // it. Zero timeout: it is either pending now or was never raised.
      struct timespec zero = {0, 0};
      while (sigtimedwait(&pipe_set, nullptr, &zero) < 0 &&
             errno == EINTR) {
      }
    }
    pthread_sigmask(SIG_SETMASK, &old_mask, nullptr);
  }
  errno = saved_errno;
  return n;
}

}  // namespace

Status WriteAllToFd(int fd, std::string_view data) {
  size_t offset = 0;
  while (offset < data.size()) {
    // send(MSG_NOSIGNAL) keeps a dead peer from raising SIGPIPE; plain
    // files and pipes return ENOTSOCK and fall back to a write() that
    // masks SIGPIPE itself, so embedding the serve daemon never depends
    // on the CLI's process-wide signal(SIGPIPE, SIG_IGN).
    ssize_t n = ::send(fd, data.data() + offset, data.size() - offset,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = WriteNoSigpipe(fd, data.data() + offset, data.size() - offset);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(std::string("fd write failed: ") + strerror(errno));
    }
    offset += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FdSink::Write(std::string_view data) {
  PDGF_RETURN_IF_ERROR(WriteAllToFd(fd_, data));
  AddBytes(data.size());
  return Status::Ok();
}

ThrottledSink::ThrottledSink(double bytes_per_second, double latency_seconds)
    : bytes_per_second_(bytes_per_second > 0 ? bytes_per_second : 1),
      latency_seconds_(latency_seconds) {}

Status ThrottledSink::Write(std::string_view data) {
  debt_seconds_ +=
      latency_seconds_ + static_cast<double>(data.size()) / bytes_per_second_;
  // Sleep in >=1ms chunks so tiny writes accumulate debt instead of
  // spamming the scheduler.
  if (debt_seconds_ >= 0.001) {
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(debt_seconds_);
    ts.tv_nsec =
        static_cast<long>((debt_seconds_ - static_cast<double>(ts.tv_sec)) *
                          1e9);
    nanosleep(&ts, nullptr);
    debt_seconds_ = 0;
  }
  AddBytes(data.size());
  return Status::Ok();
}

}  // namespace pdgf
