#include "core/output/sink.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

namespace pdgf {

StatusOr<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path) {
  FILE* file = fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return IoError("cannot create '" + path + "': " + strerror(errno));
  }
  // A generous stdio buffer keeps write syscalls rare.
  setvbuf(file, nullptr, _IOFBF, 1 << 20);
  return std::unique_ptr<FileSink>(new FileSink(path, file));
}

FileSink::~FileSink() {
  if (file_ != nullptr) {
    fclose(file_);
  }
}

Status FileSink::Write(std::string_view data) {
  if (file_ == nullptr) {
    return FailedPreconditionError("sink already closed: " + path_);
  }
  size_t written = fwrite(data.data(), 1, data.size(), file_);
  if (written != data.size()) {
    return IoError("short write to '" + path_ + "'");
  }
  AddBytes(data.size());
  return Status::Ok();
}

Status FileSink::Close() {
  if (file_ == nullptr) return Status::Ok();
  int result = fclose(file_);
  file_ = nullptr;
  if (result != 0) {
    return IoError("close failed for '" + path_ + "'");
  }
  return Status::Ok();
}

Status WriteAllToFd(int fd, std::string_view data) {
  size_t offset = 0;
  while (offset < data.size()) {
    // send(MSG_NOSIGNAL) keeps a dead peer from raising SIGPIPE; plain
    // files and pipes return ENOTSOCK and fall back to write().
    ssize_t n = ::send(fd, data.data() + offset, data.size() - offset,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data.data() + offset, data.size() - offset);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(std::string("fd write failed: ") + strerror(errno));
    }
    offset += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FdSink::Write(std::string_view data) {
  PDGF_RETURN_IF_ERROR(WriteAllToFd(fd_, data));
  AddBytes(data.size());
  return Status::Ok();
}

ThrottledSink::ThrottledSink(double bytes_per_second, double latency_seconds)
    : bytes_per_second_(bytes_per_second > 0 ? bytes_per_second : 1),
      latency_seconds_(latency_seconds) {}

Status ThrottledSink::Write(std::string_view data) {
  debt_seconds_ +=
      latency_seconds_ + static_cast<double>(data.size()) / bytes_per_second_;
  // Sleep in >=1ms chunks so tiny writes accumulate debt instead of
  // spamming the scheduler.
  if (debt_seconds_ >= 0.001) {
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(debt_seconds_);
    ts.tv_nsec =
        static_cast<long>((debt_seconds_ - static_cast<double>(ts.tv_sec)) *
                          1e9);
    nanosleep(&ts, nullptr);
    debt_seconds_ = 0;
  }
  AddBytes(data.size());
  return Status::Ok();
}

}  // namespace pdgf
