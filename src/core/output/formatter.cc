#include "core/output/formatter.h"

#include "core/batch.h"
#include "util/strings.h"
#include "util/xml.h"

namespace pdgf {
namespace {

// CSV string rendering shared by the scalar AppendRow and the batch
// kernel: quotes when the text contains the delimiter, the quote, a
// newline, or collides with a non-empty null marker; doubles quotes.
void AppendCsvText(const std::string& text, char delimiter, char quote,
                   const std::string& null_marker, std::string* out) {
  bool needs_quoting = text.find(delimiter) != std::string::npos ||
                       text.find(quote) != std::string::npos ||
                       text.find('\n') != std::string::npos ||
                       (!null_marker.empty() && text == null_marker);
  if (!needs_quoting) {
    out->append(text);
    return;
  }
  out->push_back(quote);
  for (char c : text) {
    if (c == quote) out->push_back(quote);
    out->push_back(c);
  }
  out->push_back(quote);
}

// Appends a JSON string literal.
void AppendJsonString(std::string_view in, std::string* out) {
  out->push_back('"');
  for (char c : in) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Appends a SQL literal for `value`.
void AppendSqlLiteral(const Value& value, std::string* out) {
  if (value.is_null()) {
    out->append("NULL");
    return;
  }
  switch (value.kind()) {
    case Value::Kind::kString: {
      out->push_back('\'');
      for (char c : value.string_value()) {
        if (c == '\'') out->push_back('\'');
        out->push_back(c);
      }
      out->push_back('\'');
      return;
    }
    case Value::Kind::kDate:
      out->push_back('\'');
      value.AppendText(out);
      out->push_back('\'');
      return;
    default:
      value.AppendText(out);
  }
}

}  // namespace

// ----------------------------------------------------------- defaults --

void RowFormatter::AppendBatch(const TableDef& table, const RowBatch& batch,
                               std::string* out,
                               std::vector<size_t>* row_offsets) const {
  // Scalar fallback: correct for every formatter. One scratch row is
  // reused across the batch (Value assignment keeps string capacity).
  std::vector<Value> scratch;
  const size_t rows = batch.row_count();
  if (row_offsets != nullptr) {
    row_offsets->clear();
    row_offsets->reserve(rows + 1);
  }
  for (size_t r = 0; r < rows; ++r) {
    if (row_offsets != nullptr) row_offsets->push_back(out->size());
    batch.CopyRowTo(r, &scratch);
    AppendRow(table, scratch, out);
  }
  if (row_offsets != nullptr) row_offsets->push_back(out->size());
}

// ---------------------------------------------------------------- CSV --

void CsvFormatter::AppendRow(const TableDef& table,
                             const std::vector<Value>& row,
                             std::string* out) const {
  (void)table;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out->push_back(delimiter_);
    const Value& value = row[i];
    if (value.is_null()) {
      out->append(null_marker_);
      continue;
    }
    if (value.kind() == Value::Kind::kString) {
      AppendCsvText(value.string_value(), delimiter_, quote_, null_marker_,
                    out);
      continue;
    }
    value.AppendText(out);
  }
  out->push_back('\n');
}

void CsvFormatter::AppendBatch(const TableDef& table, const RowBatch& batch,
                               std::string* out,
                               std::vector<size_t>* row_offsets) const {
  (void)table;
  const size_t rows = batch.row_count();
  const size_t cols = batch.column_count();
  if (row_offsets != nullptr) {
    row_offsets->clear();
    row_offsets->reserve(rows + 1);
  }
  // Per-column date-rendering cache: a date column frequently repeats a
  // handful of day values inside one batch (low-cardinality dates,
  // histogram buckets); rendering each distinct run once skips the civil
  // calendar conversion. days == INT64_MIN marks "empty".
  struct DateCache {
    int64_t days;
    std::string text;
  };
  static thread_local std::vector<DateCache> date_cache;
  if (date_cache.size() < cols) date_cache.resize(cols);
  for (size_t c = 0; c < cols; ++c) date_cache[c].days = INT64_MIN;
  for (size_t r = 0; r < rows; ++r) {
    if (row_offsets != nullptr) row_offsets->push_back(out->size());
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) out->push_back(delimiter_);
      const ValueColumn& column = batch.column(c);
      if (column.is_null(r)) {
        out->append(null_marker_);
        continue;
      }
      const Value& value = column.get(r);
      switch (value.kind()) {
        case Value::Kind::kInt:
          AppendIntText(value.int_value(), out);
          break;
        case Value::Kind::kDecimal:
          AppendDecimalText(value.decimal_unscaled(), value.decimal_scale(),
                            out);
          break;
        case Value::Kind::kDouble:
          AppendDoubleText(value.double_value(), out);
          break;
        case Value::Kind::kDate: {
          int64_t days = value.date_value().days_since_epoch();
          DateCache& cache = date_cache[c];
          if (cache.days != days) {
            cache.days = days;
            cache.text.clear();
            Date(days).AppendIso(&cache.text);
          }
          out->append(cache.text);
          break;
        }
        case Value::Kind::kString:
          AppendCsvText(value.string_value(), delimiter_, quote_,
                        null_marker_, out);
          break;
        case Value::Kind::kBool:
          out->append(value.bool_value() ? "true" : "false");
          break;
        case Value::Kind::kNull:
          // Unreachable: the null mask covers kNull. Kept for kind
          // exhaustiveness.
          out->append(null_marker_);
          break;
      }
    }
    out->push_back('\n');
  }
  if (row_offsets != nullptr) row_offsets->push_back(out->size());
}

// --------------------------------------------------------------- JSON --

void JsonFormatter::AppendRow(const TableDef& table,
                              const std::vector<Value>& row,
                              std::string* out) const {
  out->push_back('{');
  for (size_t i = 0; i < row.size() && i < table.fields.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonString(table.fields[i].name, out);
    out->push_back(':');
    const Value& value = row[i];
    switch (value.kind()) {
      case Value::Kind::kNull:
        out->append("null");
        break;
      case Value::Kind::kBool:
        out->append(value.bool_value() ? "true" : "false");
        break;
      case Value::Kind::kInt:
      case Value::Kind::kDouble:
      case Value::Kind::kDecimal:
        value.AppendText(out);
        break;
      case Value::Kind::kString:
        AppendJsonString(value.string_value(), out);
        break;
      case Value::Kind::kDate: {
        std::string text;
        value.AppendText(&text);
        AppendJsonString(text, out);
        break;
      }
    }
  }
  out->append("}\n");
}

// ---------------------------------------------------------------- XML --

void XmlFormatter::AppendHeader(const TableDef& table,
                                std::string* out) const {
  out->append("<table name=\"");
  XmlEscape(table.name, out);
  out->append("\">\n");
}

void XmlFormatter::AppendFooter(const TableDef& table,
                                std::string* out) const {
  (void)table;
  out->append("</table>\n");
}

void XmlFormatter::AppendRow(const TableDef& table,
                             const std::vector<Value>& row,
                             std::string* out) const {
  out->append("  <row>");
  for (size_t i = 0; i < row.size() && i < table.fields.size(); ++i) {
    const std::string& field_name = table.fields[i].name;
    if (row[i].is_null()) {
      out->push_back('<');
      out->append(field_name);
      out->append(" null=\"true\"/>");
      continue;
    }
    out->push_back('<');
    out->append(field_name);
    out->push_back('>');
    std::string text;
    row[i].AppendText(&text);
    XmlEscape(text, out);
    out->append("</");
    out->append(field_name);
    out->push_back('>');
  }
  out->append("</row>\n");
}

// ---------------------------------------------------------------- SQL --

void SqlInsertFormatter::AppendRow(const TableDef& table,
                                   const std::vector<Value>& row,
                                   std::string* out) const {
  out->append("INSERT INTO ");
  out->append(table.name);
  out->append(" VALUES (");
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out->append(", ");
    AppendSqlLiteral(row[i], out);
  }
  out->append(");\n");
}

void SqlInsertFormatter::AppendBatch(
    const TableDef& table, const std::vector<std::vector<Value>>& rows,
    std::string* out) const {
  for (size_t start = 0; start < rows.size();
       start += static_cast<size_t>(batch_rows_)) {
    out->append("INSERT INTO ");
    out->append(table.name);
    out->append(" VALUES ");
    size_t end = start + static_cast<size_t>(batch_rows_);
    if (end > rows.size()) end = rows.size();
    for (size_t r = start; r < end; ++r) {
      if (r > start) out->append(", ");
      out->push_back('(');
      for (size_t i = 0; i < rows[r].size(); ++i) {
        if (i > 0) out->append(", ");
        AppendSqlLiteral(rows[r][i], out);
      }
      out->push_back(')');
    }
    out->append(";\n");
  }
}

StatusOr<std::unique_ptr<RowFormatter>> MakeFormatter(
    const std::string& name) {
  if (name == "csv" || name.empty()) {
    return std::unique_ptr<RowFormatter>(new CsvFormatter());
  }
  if (StartsWith(name, "csv,") && name.size() == 5) {
    return std::unique_ptr<RowFormatter>(new CsvFormatter(name[4]));
  }
  if (name == "tsv") {
    return std::unique_ptr<RowFormatter>(new CsvFormatter('\t'));
  }
  if (name == "json") {
    return std::unique_ptr<RowFormatter>(new JsonFormatter());
  }
  if (name == "xml") {
    return std::unique_ptr<RowFormatter>(new XmlFormatter());
  }
  if (name == "sql") {
    return std::unique_ptr<RowFormatter>(new SqlInsertFormatter());
  }
  return InvalidArgumentError("unknown formatter '" + name + "'");
}

}  // namespace pdgf
