#include "core/output/writer.h"

#include <algorithm>

namespace pdgf {

// --- TableOutput -----------------------------------------------------

Status TableOutput::Deliver(uint64_t sequence, std::string buffer,
                            DeliverMetrics* metrics) {
  const bool timed = metrics != nullptr;
  int64_t t0 = timed ? MetricsNowNanos() : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  if (!sorted_) {
    int64_t t1 = timed ? MetricsNowNanos() : 0;
    Status status = sink_->Write(buffer);
    if (timed) {
      int64_t t2 = MetricsNowNanos();
      metrics->wait_nanos += t1 - t0;
      metrics->write_nanos += t2 - t1;
    }
    return status;
  }
  while (!aborted_ && sequence > next_sequence_ &&
         pending_.size() >= max_pending_) {
    space_.wait(lock);
  }
  int64_t t1 = timed ? MetricsNowNanos() : 0;
  if (timed) metrics->wait_nanos += t1 - t0;
  if (aborted_) {
    // The run already failed; shed the package rather than write or
    // park it (the engine returns the original error, not ours).
    return Status::Ok();
  }
  if (sequence != next_sequence_) {
    pending_.emplace(sequence, std::move(buffer));
    high_water_ = std::max<uint64_t>(high_water_, pending_.size());
    return Status::Ok();
  }
  Status status = sink_->Write(buffer);
  ++next_sequence_;
  while (status.ok() && !pending_.empty() &&
         pending_.begin()->first == next_sequence_) {
    status = sink_->Write(pending_.begin()->second);
    pending_.erase(pending_.begin());
    ++next_sequence_;
  }
  if (timed) metrics->write_nanos += MetricsNowNanos() - t1;
  // The gap moved (or an error is about to abort the run): wake any
  // worker blocked on reorder space.
  space_.notify_all();
  return status;
}

Status TableOutput::WriteDirect(std::string_view data) {
  std::lock_guard<std::mutex> lock(mutex_);
  return sink_->Write(data);
}

void TableOutput::Abort() {
  std::lock_guard<std::mutex> lock(mutex_);
  aborted_ = true;
  space_.notify_all();
}

Status TableOutput::Close(bool aborted) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return Status::Ok();
  closed_ = true;
  if (!aborted && sorted_ && !pending_.empty()) {
    (void)sink_->Close();  // still release the handle
    return InternalError("packages missing at close");
  }
  pending_.clear();
  return sink_->Close();
}

uint64_t TableOutput::reorder_high_water() {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

// --- BufferPool ------------------------------------------------------

BufferPool::BufferPool(size_t capacity, int node_count)
    : capacity_(capacity < 1 ? 1 : capacity),
      free_(static_cast<size_t>(node_count < 1 ? 1 : node_count)) {}

bool BufferPool::AcquireOnNode(int node, std::string* out) {
  const size_t home =
      node >= 0 && node < static_cast<int>(free_.size())
          ? static_cast<size_t>(node)
          : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!aborted_ && free_total_ == 0 && in_flight_ >= capacity_) {
    available_.wait(lock);
  }
  if (aborted_) return false;
  // Preference order: the home domain's recycled buffer, then a fresh
  // allocation (its pages fault first-touch on the calling thread, i.e.
  // node-local), then a remote domain's recycled buffer. Materialized
  // buffers (in flight + free) never exceed capacity.
  std::vector<std::string>* source = nullptr;
  if (!free_[home].empty()) {
    source = &free_[home];
  } else if (in_flight_ + free_total_ < capacity_) {
    ++allocations_;
    out->clear();
  } else {
    for (size_t n = 0; n < free_.size() && source == nullptr; ++n) {
      if (!free_[n].empty()) source = &free_[n];
    }
    if (source != nullptr) ++cross_node_acquires_;
    // source == nullptr is unreachable: free_total_ == 0 implies
    // in_flight_ < capacity_ (the wait condition), i.e. the fresh
    // branch above was taken.
  }
  if (source != nullptr) {
    *out = std::move(source->back());
    source->pop_back();
    --free_total_;
    out->clear();  // clear() keeps the heap block for reuse
  }
  ++in_flight_;
  peak_in_flight_ = std::max<uint64_t>(peak_in_flight_, in_flight_);
  return true;
}

void BufferPool::ReleaseToNode(int node, std::string buffer) {
  const size_t home =
      node >= 0 && node < static_cast<int>(free_.size())
          ? static_cast<size_t>(node)
          : 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ > 0) --in_flight_;
  free_[home].push_back(std::move(buffer));
  ++free_total_;
  available_.notify_one();
}

void BufferPool::Abort() {
  std::lock_guard<std::mutex> lock(mutex_);
  aborted_ = true;
  available_.notify_all();
}

uint64_t BufferPool::allocations() {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocations_;
}

uint64_t BufferPool::peak_in_flight() {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_in_flight_;
}

uint64_t BufferPool::cross_node_acquires() {
  std::lock_guard<std::mutex> lock(mutex_);
  return cross_node_acquires_;
}

// --- WriterStage -----------------------------------------------------

WriterStage::WriterStage(std::vector<TableOutput*> outputs, BufferPool* pool,
                         WriterStageOptions options,
                         std::function<void(const Status&)> on_error)
    : outputs_(std::move(outputs)),
      pool_(pool),
      options_(options),
      on_error_(std::move(on_error)),
      channels_(outputs_.size()) {
  if (options_.reorder_window < 1) options_.reorder_window = 1;
  size_t thread_count = outputs_.empty()
                            ? 0
                            : std::min<size_t>(
                                  options_.threads < 1
                                      ? 1
                                      : static_cast<size_t>(options_.threads),
                                  outputs_.size());
  threads_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    threads_.push_back(std::make_unique<WriterThread>());
  }
  for (size_t t = 0; t < channels_.size(); ++t) {
    channels_[t].writer = thread_count > 0 ? t % thread_count : 0;
  }
}

WriterStage::~WriterStage() {
  if (started_ && !finished_) {
    Abort();
    (void)Finish();
  }
}

void WriterStage::Start() {
  if (started_) return;
  started_ = true;
  for (size_t i = 0; i < threads_.size(); ++i) {
    threads_[i]->thread = std::thread([this, i]() { ThreadMain(i); });
  }
}

bool WriterStage::WaitForTurn(size_t table, uint64_t sequence,
                              int64_t* wait_nanos) {
  if (aborted_.load(std::memory_order_relaxed)) return false;
  if (!options_.sorted) return true;
  TableChannel& channel = channels_[table];
  WriterThread& writer = *threads_[channel.writer];
  std::unique_lock<std::mutex> lock(writer.mutex);
  if (sequence < channel.next_sequence + options_.reorder_window) {
    return true;  // fast path: in window, no clock read
  }
  const bool timed = wait_nanos != nullptr;
  const int64_t t0 = timed ? MetricsNowNanos() : 0;
  while (!aborted_.load(std::memory_order_relaxed) &&
         sequence >= channel.next_sequence + options_.reorder_window) {
    channel.turn.wait(lock);
  }
  if (timed) *wait_nanos += MetricsNowNanos() - t0;
  return !aborted_.load(std::memory_order_relaxed);
}

void WriterStage::Submit(size_t table, uint64_t sequence, std::string buffer,
                         int node) {
  TableChannel& channel = channels_[table];
  WriterThread& writer = *threads_[channel.writer];
  {
    std::lock_guard<std::mutex> lock(writer.mutex);
    if (!aborted_.load(std::memory_order_relaxed)) {
      writer.queue.push_back(Item{table, sequence, node, std::move(buffer)});
      writer.queue_high_water =
          std::max<uint64_t>(writer.queue_high_water, writer.queue.size());
      writer.work.notify_one();
      return;
    }
  }
  // Aborted: shed straight back to the pool so no worker blocked in
  // Acquire waits on a buffer that would never return.
  pool_->ReleaseToNode(node, std::move(buffer));
}

void WriterStage::Abort() {
  aborted_.store(true, std::memory_order_relaxed);
  // Lock each writer's mutex around the notifies so a waiter that tested
  // `aborted_` just before the store cannot miss its wakeup.
  for (size_t i = 0; i < threads_.size(); ++i) {
    std::lock_guard<std::mutex> lock(threads_[i]->mutex);
    threads_[i]->work.notify_all();
    for (TableChannel& channel : channels_) {
      if (channel.writer == i) channel.turn.notify_all();
    }
  }
  // The pool participates in the wind-down: blocked producers must wake
  // even if the engine has not aborted the pool yet.
  pool_->Abort();
}

bool WriterStage::WriteAndRecycle(size_t table, std::string buffer, int node,
                                  WriterThread* thread) {
  const bool timed = options_.metrics;
  const int64_t t0 = timed ? MetricsNowNanos() : 0;
  Status status = outputs_[table]->WriteDirect(buffer);
  if (timed) thread->write_nanos += MetricsNowNanos() - t0;
  thread->packages += 1;
  thread->bytes += buffer.size();
  pool_->ReleaseToNode(node, std::move(buffer));
  if (!status.ok()) {
    // First-error-wins lives in the engine's failure recorder; Abort
    // first so this stage sheds consistently even with a no-op callback.
    Abort();
    on_error_(status);
    return false;
  }
  return true;
}

void WriterStage::ThreadMain(size_t writer_index) {
  WriterThread& writer = *threads_[writer_index];
  // NUMA routing: park this thread on the node that generates the bulk
  // of its tables' packages, so the sink write reads node-local buffer
  // pages. Best effort; never a correctness requirement.
  if (options_.topology != nullptr &&
      writer_index < options_.thread_nodes.size()) {
    (void)options_.topology->BindCurrentThread(
        options_.thread_nodes[writer_index]);
  }
  const bool timed = options_.metrics;
  std::unique_lock<std::mutex> lock(writer.mutex);
  while (true) {
    if (writer.queue.empty()) {
      if (writer.done || aborted_.load(std::memory_order_relaxed)) break;
      if (timed) {
        const int64_t t0 = MetricsNowNanos();
        writer.work.wait(lock);
        writer.idle_nanos += MetricsNowNanos() - t0;
      } else {
        writer.work.wait(lock);
      }
      continue;
    }
    if (aborted_.load(std::memory_order_relaxed)) break;  // shed below
    Item item = std::move(writer.queue.front());
    writer.queue.pop_front();
    TableChannel& channel = channels_[item.table];
    if (options_.sorted && item.sequence != channel.next_sequence) {
      // Out of order: park (bounded by the reorder window — producers
      // cannot submit past it, so parked.size() < reorder_window). The
      // whole Item is parked so the buffer's home node survives parking.
      uint64_t sequence = item.sequence;
      channel.parked.emplace(sequence, std::move(item));
      channel.parked_high_water = std::max<uint64_t>(
          channel.parked_high_water, channel.parked.size());
      continue;
    }
    // Sink I/O happens outside the mutex: producers keep enqueueing at
    // memory speed while this thread is stuck in a slow write.
    lock.unlock();
    bool ok = WriteAndRecycle(item.table, std::move(item.buffer), item.node,
                              &writer);
    lock.lock();
    if (!ok || !options_.sorted) continue;
    ++channel.next_sequence;
    channel.turn.notify_all();
    while (!aborted_.load(std::memory_order_relaxed) &&
           !channel.parked.empty() &&
           channel.parked.begin()->first == channel.next_sequence) {
      Item next = std::move(channel.parked.begin()->second);
      channel.parked.erase(channel.parked.begin());
      lock.unlock();
      ok = WriteAndRecycle(item.table, std::move(next.buffer), next.node,
                           &writer);
      lock.lock();
      if (!ok) break;
      ++channel.next_sequence;
      channel.turn.notify_all();
    }
  }
  // Shed whatever is still queued (abort path; empty on clean shutdown)
  // so every pooled buffer finds its way home.
  while (!writer.queue.empty()) {
    pool_->ReleaseToNode(writer.queue.front().node,
                         std::move(writer.queue.front().buffer));
    writer.queue.pop_front();
  }
}

Status WriterStage::Finish() {
  if (finished_) return finish_status_;
  finished_ = true;
  if (!started_) return finish_status_;
  for (std::unique_ptr<WriterThread>& writer : threads_) {
    std::lock_guard<std::mutex> lock(writer->mutex);
    writer->done = true;
    writer->work.notify_all();
  }
  for (std::unique_ptr<WriterThread>& writer : threads_) {
    if (writer->thread.joinable()) writer->thread.join();
  }
  Status status;
  if (!aborted_.load(std::memory_order_relaxed)) {
    for (const TableChannel& channel : channels_) {
      if (!channel.parked.empty()) {
        status = InternalError("packages missing at writer finish");
        break;
      }
    }
  }
  for (TableChannel& channel : channels_) {
    while (!channel.parked.empty()) {
      Item& parked = channel.parked.begin()->second;
      pool_->ReleaseToNode(parked.node, std::move(parked.buffer));
      channel.parked.erase(channel.parked.begin());
    }
  }
  thread_reports_.clear();
  thread_reports_.reserve(threads_.size());
  for (const std::unique_ptr<WriterThread>& writer : threads_) {
    ThreadReport report;
    report.write_seconds = static_cast<double>(writer->write_nanos) * 1e-9;
    report.idle_seconds = static_cast<double>(writer->idle_nanos) * 1e-9;
    report.packages = writer->packages;
    report.bytes = writer->bytes;
    report.queue_high_water = writer->queue_high_water;
    thread_reports_.push_back(report);
  }
  finish_status_ = status;
  return status;
}

uint64_t WriterStage::table_parked_high_water(size_t table) const {
  return channels_[table].parked_high_water;
}

}  // namespace pdgf
