#ifndef DBSYNTHPP_CORE_OUTPUT_FORMATTER_H_
#define DBSYNTHPP_CORE_OUTPUT_FORMATTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "core/schema.h"

namespace pdgf {

class RowBatch;

// Renders generated rows into an output byte format. PDGF formats lazily:
// generators produce typed Values and the formatter renders them exactly
// once, at output time (paper §4: "PDGF does lazy formatting ... even
// very complex values will only be formatted once").
//
// Formatters are stateless w.r.t. rows and shared across workers; each
// worker appends into its own buffer.
class RowFormatter {
 public:
  virtual ~RowFormatter() = default;

  RowFormatter(const RowFormatter&) = delete;
  RowFormatter& operator=(const RowFormatter&) = delete;

  // Emitted once before the first row of a table.
  virtual void AppendHeader(const TableDef& table, std::string* out) const {
    (void)table;
    (void)out;
  }
  // Emitted once after the last row.
  virtual void AppendFooter(const TableDef& table, std::string* out) const {
    (void)table;
    (void)out;
  }
  // Appends one rendered row (including the row terminator).
  virtual void AppendRow(const TableDef& table,
                         const std::vector<Value>& row,
                         std::string* out) const = 0;

  // Batch output (core/batch.h): appends every row of `batch`,
  // byte-identical to row_count() AppendRow calls. When `row_offsets` is
  // non-null it is cleared and filled with row_count()+1 byte offsets
  // into `out` so row i occupies [(*row_offsets)[i], (*row_offsets)[i+1])
  // including its terminator — the engine digests per-row byte views from
  // these spans. The default copies each batch row into a scratch row and
  // delegates to AppendRow; CsvFormatter overrides it with column-kernel
  // rendering.
  virtual void AppendBatch(const TableDef& table, const RowBatch& batch,
                           std::string* out,
                           std::vector<size_t>* row_offsets = nullptr) const;

  // Suggested file extension without dot ("csv", "json", ...).
  virtual std::string FileExtension() const = 0;

 protected:
  RowFormatter() = default;
};

// Delimiter-separated values. Fields containing the delimiter, quote or
// newline are quoted; quotes are doubled. NULL renders as `null_marker`
// (unquoted, distinguishable from the empty string).
class CsvFormatter final : public RowFormatter {
 public:
  explicit CsvFormatter(char delimiter = '|', char quote = '"',
                        std::string null_marker = "")
      : delimiter_(delimiter),
        quote_(quote),
        null_marker_(std::move(null_marker)) {}

  void AppendRow(const TableDef& table, const std::vector<Value>& row,
                 std::string* out) const override;
  // Batch kernel: dense null-mask branch, std::to_chars integer /
  // decimal / double kernels, and a per-column date-rendering cache
  // (repeated day values render once). Byte-identical to AppendRow.
  void AppendBatch(const TableDef& table, const RowBatch& batch,
                   std::string* out,
                   std::vector<size_t>* row_offsets = nullptr) const override;
  std::string FileExtension() const override { return "csv"; }

 private:
  char delimiter_;
  char quote_;
  std::string null_marker_;
};

// One JSON object per line (JSON Lines).
class JsonFormatter final : public RowFormatter {
 public:
  JsonFormatter() = default;

  void AppendRow(const TableDef& table, const std::vector<Value>& row,
                 std::string* out) const override;
  std::string FileExtension() const override { return "json"; }
};

// <table><row><field>..</field>..</row>..</table> XML.
class XmlFormatter final : public RowFormatter {
 public:
  XmlFormatter() = default;

  void AppendHeader(const TableDef& table, std::string* out) const override;
  void AppendFooter(const TableDef& table, std::string* out) const override;
  void AppendRow(const TableDef& table, const std::vector<Value>& row,
                 std::string* out) const override;
  std::string FileExtension() const override { return "xml"; }
};

// INSERT INTO t VALUES (...); statements. AppendRow emits one statement
// per row (formatters are shared across workers and therefore stateless);
// AppendBatch groups `batch_rows` rows per statement for callers that
// hold a batch, like the SQL load path of the schema translator.
class SqlInsertFormatter final : public RowFormatter {
 public:
  explicit SqlInsertFormatter(int batch_rows = 1)
      : batch_rows_(batch_rows < 1 ? 1 : batch_rows) {}

  void AppendRow(const TableDef& table, const std::vector<Value>& row,
                 std::string* out) const override;
  std::string FileExtension() const override { return "sql"; }

  // Appends INSERTs covering all `rows`, `batch_rows` per statement.
  void AppendBatch(const TableDef& table,
                   const std::vector<std::vector<Value>>& rows,
                   std::string* out) const;

 private:
  int batch_rows_;
};

// Creates the formatter named `name`: "csv" (default sep '|'), "csv,<sep>",
// "tsv", "json", "xml", "sql".
StatusOr<std::unique_ptr<RowFormatter>> MakeFormatter(
    const std::string& name);

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_OUTPUT_FORMATTER_H_
