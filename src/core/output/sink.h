#ifndef DBSYNTHPP_CORE_OUTPUT_SINK_H_
#define DBSYNTHPP_CORE_OUTPUT_SINK_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "util/hash.h"

namespace pdgf {

// Destination for formatted output bytes (Figure 2's output system fans
// out to files, databases, streams, ...). A sink instance belongs to one
// table; the engine serializes Write calls per sink, so implementations
// need no internal locking (bytes_written is atomic for the benefit of
// progress monitoring from other threads).
class Sink {
 public:
  virtual ~Sink() = default;

  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  virtual Status Write(std::string_view data) = 0;
  virtual Status Close() { return Status::Ok(); }

  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 protected:
  Sink() = default;

  void AddBytes(uint64_t bytes) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> bytes_written_{0};
};

// Buffered file sink.
class FileSink final : public Sink {
 public:
  // Opens (creates/truncates) `path`; check ok() before use.
  static StatusOr<std::unique_ptr<FileSink>> Open(const std::string& path);

  ~FileSink() override;

  Status Write(std::string_view data) override;
  Status Close() override;

  const std::string& path() const { return path_; }

 private:
  FileSink(std::string path, FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  FILE* file_;
};

// Discards bytes, counting them — the "/dev/null" sink the paper uses to
// measure CPU-bound generation throughput (§4: "generated data was
// written to /dev/null to ensure the throughput was not I/O bound").
class NullSink final : public Sink {
 public:
  NullSink() = default;

  Status Write(std::string_view data) override {
    AddBytes(data.size());
    return Status::Ok();
  }
};

// Collects bytes in memory (tests, previews).
class MemorySink final : public Sink {
 public:
  MemorySink() = default;

  Status Write(std::string_view data) override {
    buffer_.append(data);
    AddBytes(data.size());
    return Status::Ok();
  }

  const std::string& contents() const { return buffer_; }

 private:
  std::string buffer_;
};

// Decorator computing an order-sensitive streaming hash of every byte
// written (util/hash.h ByteStreamHash, chunking-invariant) before
// forwarding to the wrapped sink — or discarding when `inner` is null.
// Used by `pdgf verify` to prove that sorted-sink runs produce
// byte-identical files for every worker count / package size without
// buffering the files; complements the engine's order-insensitive table
// digests, which cannot see sink-side reordering bugs.
class DigestingSink final : public Sink {
 public:
  // `inner` may be null (count + hash only, NullSink semantics).
  // `final_digest` (optional, must outlive the sink) receives the stream
  // digest when the sink is closed — the engine owns and destroys its
  // sinks when Run() finishes, so callers that need the digest afterwards
  // pass an out-param instead of holding the sink.
  explicit DigestingSink(std::unique_ptr<Sink> inner = nullptr,
                         Digest128* final_digest = nullptr)
      : inner_(std::move(inner)), final_digest_(final_digest) {}

  Status Write(std::string_view data) override {
    hash_.Update(data);
    AddBytes(data.size());
    return inner_ != nullptr ? inner_->Write(data) : Status::Ok();
  }

  Status Close() override {
    if (final_digest_ != nullptr) {
      *final_digest_ = hash_.Finish();
    }
    return inner_ != nullptr ? inner_->Close() : Status::Ok();
  }

  // Digest of all bytes written so far, in write order.
  Digest128 stream_digest() const { return hash_.Finish(); }

 private:
  std::unique_ptr<Sink> inner_;
  Digest128* final_digest_;
  ByteStreamHash hash_;
};

// Writes to an open file descriptor — the socket-backed sink of the
// serve daemon (src/serve), also usable with pipes. Handles partial
// writes by looping and, for sockets, suppresses SIGPIPE per call
// (MSG_NOSIGNAL) so a disconnected peer surfaces as an IoError status
// the engine can abort on instead of a process-killing signal. The fd is
// borrowed: the connection that accepted it closes it.
class FdSink final : public Sink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}

  Status Write(std::string_view data) override;

 private:
  int fd_;
};

// Writes every byte of `data` to `fd` (looping over partial writes and
// EINTR) with MSG_NOSIGNAL when `fd` is a socket. Shared by FdSink and
// the serve protocol layer.
Status WriteAllToFd(int fd, std::string_view data);

// A sink that simulates a slow device by charging a fixed latency per
// write call plus a throughput-bound delay per byte, then discarding the
// data. Used by the Figure-6 harness to reproduce "disk-bound" operation
// deterministically on any machine.
class ThrottledSink final : public Sink {
 public:
  // `bytes_per_second` caps throughput; `latency_seconds` is charged per
  // Write call.
  ThrottledSink(double bytes_per_second, double latency_seconds = 0);

  Status Write(std::string_view data) override;

 private:
  double bytes_per_second_;
  double latency_seconds_;
  double debt_seconds_ = 0;  // accumulated unslept delay
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_OUTPUT_SINK_H_
