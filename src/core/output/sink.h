#ifndef DBSYNTHPP_CORE_OUTPUT_SINK_H_
#define DBSYNTHPP_CORE_OUTPUT_SINK_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace pdgf {

// Destination for formatted output bytes (Figure 2's output system fans
// out to files, databases, streams, ...). A sink instance belongs to one
// table; the engine serializes Write calls per sink, so implementations
// need no internal locking (bytes_written is atomic for the benefit of
// progress monitoring from other threads).
class Sink {
 public:
  virtual ~Sink() = default;

  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  virtual Status Write(std::string_view data) = 0;
  virtual Status Close() { return Status::Ok(); }

  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 protected:
  Sink() = default;

  void AddBytes(uint64_t bytes) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> bytes_written_{0};
};

// Buffered file sink.
class FileSink final : public Sink {
 public:
  // Opens (creates/truncates) `path`; check ok() before use.
  static StatusOr<std::unique_ptr<FileSink>> Open(const std::string& path);

  ~FileSink() override;

  Status Write(std::string_view data) override;
  Status Close() override;

  const std::string& path() const { return path_; }

 private:
  FileSink(std::string path, FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  FILE* file_;
};

// Discards bytes, counting them — the "/dev/null" sink the paper uses to
// measure CPU-bound generation throughput (§4: "generated data was
// written to /dev/null to ensure the throughput was not I/O bound").
class NullSink final : public Sink {
 public:
  NullSink() = default;

  Status Write(std::string_view data) override {
    AddBytes(data.size());
    return Status::Ok();
  }
};

// Collects bytes in memory (tests, previews).
class MemorySink final : public Sink {
 public:
  MemorySink() = default;

  Status Write(std::string_view data) override {
    buffer_.append(data);
    AddBytes(data.size());
    return Status::Ok();
  }

  const std::string& contents() const { return buffer_; }

 private:
  std::string buffer_;
};

// A sink that simulates a slow device by charging a fixed latency per
// write call plus a throughput-bound delay per byte, then discarding the
// data. Used by the Figure-6 harness to reproduce "disk-bound" operation
// deterministically on any machine.
class ThrottledSink final : public Sink {
 public:
  // `bytes_per_second` caps throughput; `latency_seconds` is charged per
  // Write call.
  ThrottledSink(double bytes_per_second, double latency_seconds = 0);

  Status Write(std::string_view data) override;

 private:
  double bytes_per_second_;
  double latency_seconds_;
  double debt_seconds_ = 0;  // accumulated unslept delay
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_OUTPUT_SINK_H_
