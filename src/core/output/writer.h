#ifndef DBSYNTHPP_CORE_OUTPUT_WRITER_H_
#define DBSYNTHPP_CORE_OUTPUT_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/topology.h"
#include "core/metrics/metrics.h"
#include "core/output/sink.h"

namespace pdgf {

// The write side of the staged generation pipeline
// (generate -> format -> enqueue -> write; docs/architecture.md).
//
// Inline mode (writer_threads == 0) keeps the historical shape: workers
// call TableOutput::Deliver, which writes (and, sorted, reorders) under
// the table lock. Async mode moves the reorder buffer and all sink I/O
// onto dedicated writer threads (WriterStage) so disk latency no longer
// steals generation throughput, and recycles formatted-byte buffers
// through a BufferPool so steady-state generation performs zero payload
// allocations.

// Timing of one Deliver call, captured only when the caller passes a
// non-null pointer (metrics-enabled runs). Splitting wait from write
// makes lock contention visible: wait is time spent blocked on the
// table mutex or on reorder-buffer backpressure, write is time spent
// pushing bytes into the sink.
struct DeliverMetrics {
  int64_t wait_nanos = 0;
  int64_t write_nanos = 0;
};

// Per-table output state: serializes writes and, in sorted inline mode,
// reorders completed packages so the file is written in row order. The
// reorder buffer is bounded (`max_pending`): a worker delivering far
// ahead of the gap package blocks until the gap closes instead of
// parking packages without bound. Progress is guaranteed because claimed
// sequences always form a union of stripe prefixes (see schedule.h), so
// the smallest unwritten package is either held by a worker that never
// blocks (the gap) or sits at a stripe head whose owner is provably
// unblocked; aborted runs shed deliveries instead of blocking so no
// worker deadlocks after a failure.
class TableOutput {
 public:
  TableOutput(std::unique_ptr<Sink> sink, bool sorted, uint64_t max_pending)
      : sink_(std::move(sink)),
        sorted_(sorted),
        max_pending_(max_pending < 1 ? 1 : max_pending) {}

  // Inline write path (worker context). Sorted mode parks out-of-order
  // packages and blocks on reorder-buffer backpressure.
  Status Deliver(uint64_t sequence, std::string buffer,
                 DeliverMetrics* metrics);

  // Serialized raw write: headers/footers (engine thread) and the async
  // writer stage, which enforces ordering itself before calling in.
  Status WriteDirect(std::string_view data);

  // Unblocks delivering workers and makes subsequent Deliver calls shed.
  // Called once the engine has recorded a failure.
  void Abort();

  // Closes the underlying sink exactly once (idempotent). On the normal
  // path a sorted table with parked packages is an internal error; on the
  // `aborted` path parked packages are expected debris of the failed run
  // and are discarded, so closing cannot mask the original error with a
  // follow-on "packages missing at close".
  Status Close(bool aborted);

  uint64_t bytes_written() const { return sink_->bytes_written(); }

  // Peak number of parked out-of-order packages (sorted inline mode).
  // Only meaningful after the run's workers have joined.
  uint64_t reorder_high_water();

 private:
  std::unique_ptr<Sink> sink_;
  bool sorted_;
  uint64_t max_pending_;
  std::mutex mutex_;
  std::condition_variable space_;
  std::map<uint64_t, std::string> pending_;
  uint64_t next_sequence_ = 0;
  uint64_t high_water_ = 0;
  bool aborted_ = false;
  bool closed_ = false;
};

// Fixed-capacity pool of formatted-byte buffers. Acquire blocks while
// all buffers are in flight (backpressure: generation cannot outrun the
// writer stage by more than `capacity` packages of memory) and returns
// cleared strings that retain their heap allocation, so after warm-up
// the hot path allocates nothing for payload bytes. Abort unblocks every
// waiter; subsequent Acquire calls fail so an errored run winds down
// instead of deadlocking.
//
// NUMA placement: the free list is segmented per node (`node_count`
// domains). AcquireOnNode prefers the caller's node list, then a fresh
// allocation — the buffer's pages are faulted first-touch by the owning
// worker thread, which is what makes them node-local — and only then a
// remote node's list (counted in cross_node_acquires). Releases return
// each buffer to its home domain. Total materialized buffers never
// exceed `capacity` and the blocking/abort semantics are unchanged, so
// the engine's deadlock-freedom floor carries over verbatim.
class BufferPool {
 public:
  explicit BufferPool(size_t capacity, int node_count = 1);

  // Blocks until a buffer is free (or the pool is aborted). Returns
  // false only after Abort; `out` is then left untouched. Single-domain
  // shorthand for AcquireOnNode(0, out).
  bool Acquire(std::string* out) { return AcquireOnNode(0, out); }
  bool AcquireOnNode(int node, std::string* out);

  // Returns a buffer to the pool, retaining its capacity for reuse.
  // `node` is the buffer's home domain (the node it was acquired for).
  void Release(std::string buffer) { ReleaseToNode(0, std::move(buffer)); }
  void ReleaseToNode(int node, std::string buffer);

  void Abort();

  size_t capacity() const { return capacity_; }
  int node_count() const { return static_cast<int>(free_.size()); }
  // Buffers materialized so far (<= capacity; warm-up cost). Steady
  // state acquires recycle without allocating.
  uint64_t allocations();
  uint64_t peak_in_flight();
  // Acquires served from a remote node's free list (ideally ~0 in
  // steady state: each domain recycles its own buffers).
  uint64_t cross_node_acquires();

 private:
  const size_t capacity_;
  std::mutex mutex_;
  std::condition_variable available_;
  // One free list per node domain; index clamped into range.
  std::vector<std::vector<std::string>> free_;
  size_t free_total_ = 0;
  size_t in_flight_ = 0;
  uint64_t allocations_ = 0;
  uint64_t peak_in_flight_ = 0;
  uint64_t cross_node_acquires_ = 0;
  bool aborted_ = false;
};

struct WriterStageOptions {
  // Writer threads; the stage clamps to [1, table_count].
  int threads = 1;
  // Enforce per-table sequence order before bytes reach the sink.
  bool sorted = true;
  // Sorted mode: a worker may run at most this many packages ahead of a
  // table's write gap (WaitForTurn blocks past it), so parked packages
  // per table stay < reorder_window. Must be >= 1.
  uint64_t reorder_window = 8;
  // Collect writer_write / writer_idle timings and queue gauges.
  bool metrics = false;
  // NUMA routing (engine-computed): thread_nodes[i] is writer thread
  // i's home node — the node generating the bulk of the packages of the
  // tables it serves — and each thread binds itself there at startup via
  // `topology`. Empty thread_nodes or null topology disables routing.
  std::vector<int> thread_nodes;
  const Topology* topology = nullptr;
};

// Async writer stage: each table is bound to one writer thread
// (round-robin, table % threads); workers hand completed packages over
// with Submit, which never blocks — backpressure lives in WaitForTurn
// (sorted reorder window) and BufferPool::Acquire, both of which workers
// call *before* formatting. Writer threads pop from their queue, park
// out-of-order packages (bounded by the reorder window), write in-order
// packages plus any parked followers, and recycle buffers to the pool.
//
// Error handling is first-error-wins: a failed sink write is reported
// through `on_error` (the engine records it and aborts the run), after
// which the stage sheds every queued and parked buffer; Abort and Finish
// are idempotent and never block on a failed sink. Deadlock freedom:
// writer threads only ever wait on their own queue, and the pool's
// capacity floor (engine-enforced: workers + 1 + tables x (window - 1))
// guarantees a circulating buffer always exists for the package that can
// advance a write gap.
class WriterStage {
 public:
  // `outputs` (borrowed, one per table) must outlive the stage; ordering
  // is enforced here, so in async mode the TableOutputs are constructed
  // unsorted and only their serialized WriteDirect path is used.
  WriterStage(std::vector<TableOutput*> outputs, BufferPool* pool,
              WriterStageOptions options,
              std::function<void(const Status&)> on_error);
  ~WriterStage();

  WriterStage(const WriterStage&) = delete;
  WriterStage& operator=(const WriterStage&) = delete;

  void Start();

  // Sorted mode: blocks until `sequence` is inside the table's reorder
  // window (so the buffer the caller is about to acquire cannot be
  // parked beyond the window bound). Returns false once the stage is
  // aborted. `wait_nanos` (optional) accumulates blocked time.
  bool WaitForTurn(size_t table, uint64_t sequence,
                   int64_t* wait_nanos = nullptr);

  // Hands a formatted package to the table's writer thread. Never
  // blocks; after Abort the buffer is shed straight back to the pool.
  // `node` is the buffer's home pool domain (0 when placement is off);
  // the stage releases the buffer back to that domain.
  void Submit(size_t table, uint64_t sequence, std::string buffer,
              int node = 0);

  // Unblocks producers in WaitForTurn and makes writer threads shed
  // instead of write. Idempotent; does not join.
  void Abort();

  // Drains (or, aborted, sheds) outstanding packages and joins the
  // writer threads. Must be called after all producers have stopped.
  // Returns InternalError if a non-aborted sorted run finished with
  // parked packages (a missing sequence). Idempotent.
  Status Finish();

  // Post-Finish observability.
  struct ThreadReport {
    double write_seconds = 0;
    double idle_seconds = 0;
    uint64_t packages = 0;
    uint64_t bytes = 0;
    uint64_t queue_high_water = 0;
  };
  const std::vector<ThreadReport>& thread_reports() const {
    return thread_reports_;
  }
  // Peak parked out-of-order packages for `table` (sorted mode).
  uint64_t table_parked_high_water(size_t table) const;

 private:
  struct Item {
    size_t table = 0;
    uint64_t sequence = 0;
    int node = 0;  // buffer's home pool domain
    std::string buffer;
  };

  // Cache-line aligned: a writer thread's queue indices and counters
  // must not false-share with a neighbouring thread's (each WriterThread
  // is hammered by its owner plus the producers feeding it).
  struct alignas(64) WriterThread {
    std::mutex mutex;
    std::condition_variable work;
    std::deque<Item> queue;
    uint64_t queue_high_water = 0;
    bool done = false;  // producers finished: drain queue, then exit
    std::thread thread;
    // Written by the owning thread, read after join.
    int64_t write_nanos = 0;
    int64_t idle_nanos = 0;
    uint64_t packages = 0;
    uint64_t bytes = 0;
  };

  // Per-table ordering state, guarded by the owning writer thread's
  // mutex. Cache-line aligned: next_sequence is read by every producer
  // in WaitForTurn while the neighbouring channel's is advanced by its
  // writer — adjacent channels must not share a line.
  struct alignas(64) TableChannel {
    size_t writer = 0;
    uint64_t next_sequence = 0;
    std::map<uint64_t, Item> parked;
    uint64_t parked_high_water = 0;
    // Producers blocked in WaitForTurn (paired with the writer's mutex).
    std::condition_variable turn;
  };

  void ThreadMain(size_t writer_index);
  // Writes one buffer (no locks held), recycles it to its home domain,
  // and reports errors. Returns false on write failure (after which
  // aborted_ is set).
  bool WriteAndRecycle(size_t table, std::string buffer, int node,
                       WriterThread* thread);

  std::vector<TableOutput*> outputs_;
  BufferPool* pool_;
  WriterStageOptions options_;
  std::function<void(const Status&)> on_error_;
  std::vector<std::unique_ptr<WriterThread>> threads_;
  std::vector<TableChannel> channels_;
  std::atomic<bool> aborted_{false};
  bool started_ = false;
  bool finished_ = false;
  Status finish_status_;
  std::vector<ThreadReport> thread_reports_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_OUTPUT_WRITER_H_
