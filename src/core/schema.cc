#include "core/schema.h"

#include "core/generator.h"

namespace pdgf {

int TableDef::FindFieldIndex(std::string_view field_name) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == field_name) return static_cast<int>(i);
  }
  return -1;
}

const FieldDef* TableDef::FindField(std::string_view field_name) const {
  int index = FindFieldIndex(field_name);
  return index < 0 ? nullptr : &fields[static_cast<size_t>(index)];
}

int SchemaDef::FindTableIndex(std::string_view table_name) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].name == table_name) return static_cast<int>(i);
  }
  return -1;
}

const TableDef* SchemaDef::FindTable(std::string_view table_name) const {
  int index = FindTableIndex(table_name);
  return index < 0 ? nullptr : &tables[static_cast<size_t>(index)];
}

TableDef* SchemaDef::FindTable(std::string_view table_name) {
  int index = FindTableIndex(table_name);
  return index < 0 ? nullptr : &tables[static_cast<size_t>(index)];
}

void SchemaDef::SetProperty(std::string_view property_name,
                            std::string expression) {
  for (PropertyDef& property : properties) {
    if (property.name == property_name) {
      property.expression = std::move(expression);
      return;
    }
  }
  PropertyDef property;
  property.name = std::string(property_name);
  property.expression = std::move(expression);
  properties.push_back(std::move(property));
}

const PropertyDef* SchemaDef::FindProperty(
    std::string_view property_name) const {
  for (const PropertyDef& property : properties) {
    if (property.name == property_name) return &property;
  }
  return nullptr;
}

}  // namespace pdgf
