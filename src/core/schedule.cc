#include "core/schedule.h"

#include <atomic>

namespace pdgf {

void NodeShare(uint64_t rows, int node_count, int node_id, uint64_t* begin,
               uint64_t* end) {
  if (node_count < 1) node_count = 1;
  if (node_id < 0) node_id = 0;
  if (node_id >= node_count) node_id = node_count - 1;
  uint64_t n = static_cast<uint64_t>(node_count);
  uint64_t i = static_cast<uint64_t>(node_id);
#if defined(__SIZEOF_INT128__)
  // rows * (i + 1) overflows 64 bits once rows x node_count exceeds
  // 2^64; widen the intermediate so the floor split stays exact (and
  // bit-identical to the historical result for all non-overflowing
  // inputs).
  unsigned __int128 wide = rows;
  *begin = static_cast<uint64_t>(wide * i / n);
  *end = static_cast<uint64_t>(wide * (i + 1) / n);
#else
  // Portable fallback: quotient+remainder distribution. Exhaustive and
  // disjoint like the floor split (boundaries differ, which is fine —
  // correctness only requires a contiguous exact partition).
  uint64_t base = rows / n;
  uint64_t remainder = rows % n;
  uint64_t extra = i < remainder ? i : remainder;
  *begin = base * i + extra;
  *end = *begin + base + (i < remainder ? 1 : 0);
#endif
}

std::vector<WorkPackage> BuildWorkPackages(
    const std::vector<uint64_t>& table_rows, uint64_t package_rows,
    int node_count, int node_id) {
  if (package_rows < 1) package_rows = 1;
  std::vector<WorkPackage> packages;
  for (size_t t = 0; t < table_rows.size(); ++t) {
    uint64_t begin = 0;
    uint64_t end = table_rows[t];
    NodeShare(table_rows[t], node_count, node_id, &begin, &end);
    uint64_t sequence = 0;
    for (uint64_t start = begin; start < end; start += package_rows) {
      uint64_t stop = start + package_rows;
      if (stop > end) stop = end;
      packages.push_back(
          WorkPackage{static_cast<int>(t), start, stop, sequence++});
    }
  }
  return packages;
}

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kAtomic:
      return "atomic";
    case SchedulerKind::kStriped:
      return "striped";
    case SchedulerKind::kNuma:
      return "numa";
  }
  return "atomic";
}

StatusOr<SchedulerKind> ParseSchedulerKind(const std::string& name) {
  if (name == "atomic") return SchedulerKind::kAtomic;
  if (name == "striped") return SchedulerKind::kStriped;
  if (name == "numa") return SchedulerKind::kNuma;
  return InvalidArgumentError("unknown scheduler '" + name +
                              "': expected 'atomic', 'striped' or 'numa'");
}

std::vector<uint64_t> PartitionPackagesByNode(
    uint64_t package_count, const std::vector<int>& workers_per_node) {
  // Proportional contiguous split, workers as weights: a node with no
  // workers owns no packages (its share is drained by neighbours'
  // steals otherwise, which would make cross-node traffic the common
  // case instead of the drain-time exception).
  size_t nodes = workers_per_node.empty() ? 1 : workers_per_node.size();
  std::vector<uint64_t> bounds(nodes + 1, 0);
  int64_t total_workers = 0;
  for (size_t n = 0; n < workers_per_node.size(); ++n) {
    total_workers += workers_per_node[n] > 0 ? workers_per_node[n] : 0;
  }
  if (workers_per_node.empty() || total_workers < 1) {
    // Degenerate map: everything on node 0.
    for (size_t n = 1; n <= nodes; ++n) bounds[n] = package_count;
    return bounds;
  }
  int64_t cumulative = 0;
  for (size_t n = 0; n < nodes; ++n) {
    cumulative += workers_per_node[n] > 0 ? workers_per_node[n] : 0;
#if defined(__SIZEOF_INT128__)
    bounds[n + 1] = static_cast<uint64_t>(
        static_cast<unsigned __int128>(package_count) *
        static_cast<uint64_t>(cumulative) /
        static_cast<uint64_t>(total_workers));
#else
    bounds[n + 1] = package_count / static_cast<uint64_t>(total_workers) *
                        static_cast<uint64_t>(cumulative) +
                    package_count % static_cast<uint64_t>(total_workers) *
                        static_cast<uint64_t>(cumulative) /
                        static_cast<uint64_t>(total_workers);
#endif
  }
  bounds[nodes] = package_count;  // exact cover regardless of rounding
  return bounds;
}

namespace {

class AtomicCounterScheduler : public Scheduler {
 public:
  explicit AtomicCounterScheduler(size_t package_count)
      : Scheduler(package_count) {}

  bool Next(int /*worker*/, size_t* index) override {
    size_t claimed = next_.value.fetch_add(1, std::memory_order_relaxed);
    if (claimed >= package_count()) return false;
    *index = claimed;
    return true;
  }

 private:
  // Cache-line padded: beyond ~16 workers the hot counter otherwise
  // false-shares its line with whatever the allocator placed next to
  // this object (measured at the >16-worker throughput knee).
  struct alignas(64) PaddedCounter {
    std::atomic<size_t> value{0};
  };
  PaddedCounter next_;
};

class StripedScheduler : public Scheduler {
 public:
  StripedScheduler(size_t package_count, int worker_count)
      : Scheduler(package_count),
        stripe_count_(worker_count < 1 ? 1 : worker_count),
        stripes_(new Stripe[static_cast<size_t>(stripe_count_)]) {
    for (int s = 0; s < stripe_count_; ++s) {
      uint64_t begin = 0;
      uint64_t end = 0;
      NodeShare(package_count, stripe_count_, s, &begin, &end);
      stripes_[s].next.store(begin, std::memory_order_relaxed);
      stripes_[s].end = end;
    }
  }

  bool Next(int worker, size_t* index) override {
    // Own stripe first, then steal from the head of the next stripes in
    // ring order. Claiming is always a fetch_add on the stripe cursor, so
    // even under steal races every index is handed out exactly once;
    // overshooting an exhausted stripe's end just wastes a counter tick.
    // Head-stealing (rather than tail-stealing) keeps claimed indices a
    // prefix of every stripe — the invariant the sorted-mode progress
    // argument needs (see writer.h).
    const int home = stripe_count_ > 0
                         ? ((worker % stripe_count_) + stripe_count_) %
                               stripe_count_
                         : 0;
    for (int probe = 0; probe < stripe_count_; ++probe) {
      Stripe& stripe = stripes_[(home + probe) % stripe_count_];
      uint64_t claimed = stripe.next.fetch_add(1, std::memory_order_relaxed);
      if (claimed < stripe.end) {
        *index = static_cast<size_t>(claimed);
        return true;
      }
    }
    return false;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> next{0};
    uint64_t end = 0;
  };

  int stripe_count_;
  std::unique_ptr<Stripe[]> stripes_;
};

// Topology-routed dispatch: one stripe per node (PartitionPackagesByNode
// split), workers claim from their home node's cursor and steal from
// remote stripe *heads* only once the local stripe drains. The claimed
// set is a union of stripe prefixes at every instant — the same
// invariant StripedScheduler provides per worker, here per node — so
// the sorted-mode backpressure proof in writer.h applies unchanged.
class NumaScheduler : public Scheduler {
 public:
  NumaScheduler(size_t package_count, int worker_count,
                std::vector<int> worker_nodes)
      : Scheduler(package_count), worker_nodes_(std::move(worker_nodes)) {
    int nodes = 1;
    for (int node : worker_nodes_) {
      if (node + 1 > nodes) nodes = node + 1;
    }
    node_count_ = nodes;
    std::vector<int> workers_per_node(static_cast<size_t>(nodes), 0);
    for (int node : worker_nodes_) {
      if (node >= 0) ++workers_per_node[static_cast<size_t>(node)];
    }
    if (worker_nodes_.empty()) {
      workers_per_node[0] = worker_count < 1 ? 1 : worker_count;
    }
    std::vector<uint64_t> bounds =
        PartitionPackagesByNode(package_count, workers_per_node);
    stripes_.reset(new Stripe[static_cast<size_t>(nodes)]);
    for (int n = 0; n < nodes; ++n) {
      stripes_[n].next.store(bounds[static_cast<size_t>(n)],
                             std::memory_order_relaxed);
      stripes_[n].end = bounds[static_cast<size_t>(n) + 1];
      stripes_[n].claims.store(0, std::memory_order_relaxed);
      stripes_[n].steals.store(0, std::memory_order_relaxed);
    }
  }

  bool Next(int worker, size_t* index) override {
    const int home = HomeNode(worker);
    for (int probe = 0; probe < node_count_; ++probe) {
      Stripe& stripe = stripes_[(home + probe) % node_count_];
      uint64_t claimed = stripe.next.fetch_add(1, std::memory_order_relaxed);
      if (claimed < stripe.end) {
        Stripe& counters = stripes_[home];
        counters.claims.fetch_add(1, std::memory_order_relaxed);
        if (probe != 0) {
          counters.steals.fetch_add(1, std::memory_order_relaxed);
        }
        *index = static_cast<size_t>(claimed);
        return true;
      }
    }
    return false;
  }

  std::vector<SchedulerNodeReport> node_reports() const override {
    std::vector<SchedulerNodeReport> reports;
    reports.reserve(static_cast<size_t>(node_count_));
    for (int n = 0; n < node_count_; ++n) {
      SchedulerNodeReport report;
      report.node = n;
      report.packages = stripes_[n].claims.load(std::memory_order_relaxed);
      report.steals = stripes_[n].steals.load(std::memory_order_relaxed);
      reports.push_back(report);
    }
    return reports;
  }

 private:
  int HomeNode(int worker) const {
    if (worker >= 0 && worker < static_cast<int>(worker_nodes_.size())) {
      int node = worker_nodes_[static_cast<size_t>(worker)];
      if (node >= 0 && node < node_count_) return node;
    }
    return 0;
  }

  // One line per node: the cursor is the only cross-worker traffic on
  // the happy path, and the claim/steal counters ride in the same line
  // (they are only touched by that node's own workers).
  struct alignas(64) Stripe {
    std::atomic<uint64_t> next{0};
    uint64_t end = 0;
    std::atomic<uint64_t> claims{0};
    std::atomic<uint64_t> steals{0};
  };

  std::vector<int> worker_nodes_;
  int node_count_ = 1;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace

std::unique_ptr<Scheduler> MakeScheduler(
    SchedulerKind kind, size_t package_count, int worker_count,
    const std::vector<int>& worker_nodes) {
  switch (kind) {
    case SchedulerKind::kStriped:
      return std::make_unique<StripedScheduler>(package_count, worker_count);
    case SchedulerKind::kNuma:
      return std::make_unique<NumaScheduler>(package_count, worker_count,
                                             worker_nodes);
    case SchedulerKind::kAtomic:
      break;
  }
  return std::make_unique<AtomicCounterScheduler>(package_count);
}

}  // namespace pdgf
