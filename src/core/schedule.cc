#include "core/schedule.h"

#include <atomic>

namespace pdgf {

void NodeShare(uint64_t rows, int node_count, int node_id, uint64_t* begin,
               uint64_t* end) {
  if (node_count < 1) node_count = 1;
  if (node_id < 0) node_id = 0;
  if (node_id >= node_count) node_id = node_count - 1;
  uint64_t n = static_cast<uint64_t>(node_count);
  uint64_t i = static_cast<uint64_t>(node_id);
#if defined(__SIZEOF_INT128__)
  // rows * (i + 1) overflows 64 bits once rows x node_count exceeds
  // 2^64; widen the intermediate so the floor split stays exact (and
  // bit-identical to the historical result for all non-overflowing
  // inputs).
  unsigned __int128 wide = rows;
  *begin = static_cast<uint64_t>(wide * i / n);
  *end = static_cast<uint64_t>(wide * (i + 1) / n);
#else
  // Portable fallback: quotient+remainder distribution. Exhaustive and
  // disjoint like the floor split (boundaries differ, which is fine —
  // correctness only requires a contiguous exact partition).
  uint64_t base = rows / n;
  uint64_t remainder = rows % n;
  uint64_t extra = i < remainder ? i : remainder;
  *begin = base * i + extra;
  *end = *begin + base + (i < remainder ? 1 : 0);
#endif
}

std::vector<WorkPackage> BuildWorkPackages(
    const std::vector<uint64_t>& table_rows, uint64_t package_rows,
    int node_count, int node_id) {
  if (package_rows < 1) package_rows = 1;
  std::vector<WorkPackage> packages;
  for (size_t t = 0; t < table_rows.size(); ++t) {
    uint64_t begin = 0;
    uint64_t end = table_rows[t];
    NodeShare(table_rows[t], node_count, node_id, &begin, &end);
    uint64_t sequence = 0;
    for (uint64_t start = begin; start < end; start += package_rows) {
      uint64_t stop = start + package_rows;
      if (stop > end) stop = end;
      packages.push_back(
          WorkPackage{static_cast<int>(t), start, stop, sequence++});
    }
  }
  return packages;
}

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kAtomic:
      return "atomic";
    case SchedulerKind::kStriped:
      return "striped";
  }
  return "atomic";
}

StatusOr<SchedulerKind> ParseSchedulerKind(const std::string& name) {
  if (name == "atomic") return SchedulerKind::kAtomic;
  if (name == "striped") return SchedulerKind::kStriped;
  return InvalidArgumentError("unknown scheduler '" + name +
                              "': expected 'atomic' or 'striped'");
}

namespace {

class AtomicCounterScheduler : public Scheduler {
 public:
  explicit AtomicCounterScheduler(size_t package_count)
      : Scheduler(package_count) {}

  bool Next(int /*worker*/, size_t* index) override {
    size_t claimed = next_.fetch_add(1, std::memory_order_relaxed);
    if (claimed >= package_count()) return false;
    *index = claimed;
    return true;
  }

 private:
  std::atomic<size_t> next_{0};
};

class StripedScheduler : public Scheduler {
 public:
  StripedScheduler(size_t package_count, int worker_count)
      : Scheduler(package_count),
        stripe_count_(worker_count < 1 ? 1 : worker_count),
        stripes_(new Stripe[static_cast<size_t>(stripe_count_)]) {
    for (int s = 0; s < stripe_count_; ++s) {
      uint64_t begin = 0;
      uint64_t end = 0;
      NodeShare(package_count, stripe_count_, s, &begin, &end);
      stripes_[s].next.store(begin, std::memory_order_relaxed);
      stripes_[s].end = end;
    }
  }

  bool Next(int worker, size_t* index) override {
    // Own stripe first, then steal from the head of the next stripes in
    // ring order. Claiming is always a fetch_add on the stripe cursor, so
    // even under steal races every index is handed out exactly once;
    // overshooting an exhausted stripe's end just wastes a counter tick.
    // Head-stealing (rather than tail-stealing) keeps claimed indices a
    // prefix of every stripe — the invariant the sorted-mode progress
    // argument needs (see writer.h).
    const int home = stripe_count_ > 0
                         ? ((worker % stripe_count_) + stripe_count_) %
                               stripe_count_
                         : 0;
    for (int probe = 0; probe < stripe_count_; ++probe) {
      Stripe& stripe = stripes_[(home + probe) % stripe_count_];
      uint64_t claimed = stripe.next.fetch_add(1, std::memory_order_relaxed);
      if (claimed < stripe.end) {
        *index = static_cast<size_t>(claimed);
        return true;
      }
    }
    return false;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> next{0};
    uint64_t end = 0;
  };

  int stripe_count_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind,
                                         size_t package_count,
                                         int worker_count) {
  switch (kind) {
    case SchedulerKind::kStriped:
      return std::make_unique<StripedScheduler>(package_count, worker_count);
    case SchedulerKind::kAtomic:
      break;
  }
  return std::make_unique<AtomicCounterScheduler>(package_count);
}

}  // namespace pdgf
