#ifndef DBSYNTHPP_CORE_PROGRESS_H_
#define DBSYNTHPP_CORE_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/stopwatch.h"

namespace pdgf {

// Live generation progress, the library equivalent of the JMX counters
// PDGF exposes to Java Mission Control (paper §5, Figure 11): per-table
// and total row/byte counters plus derived throughput. All methods are
// thread-safe; workers update, any thread may snapshot.
class ProgressTracker {
 public:
  struct TableProgress {
    std::string table;
    uint64_t rows_done = 0;
    uint64_t rows_total = 0;
    uint64_t bytes = 0;
    double fraction = 0;  // rows_done / rows_total (1.0 when total is 0)
  };

  struct Snapshot {
    std::vector<TableProgress> tables;
    uint64_t rows_done = 0;
    uint64_t rows_total = 0;
    uint64_t bytes = 0;
    double elapsed_seconds = 0;
    double rows_per_second = 0;
    double megabytes_per_second = 0;
    double fraction = 0;
  };

  // `table_names[i]` / `table_rows[i]` describe the tables to track.
  ProgressTracker(std::vector<std::string> table_names,
                  std::vector<uint64_t> table_rows);

  // Records `rows` generated rows / `bytes` output bytes for table `i`.
  void Add(size_t table_index, uint64_t rows, uint64_t bytes) {
    rows_done_[table_index].fetch_add(rows, std::memory_order_relaxed);
    bytes_[table_index].fetch_add(bytes, std::memory_order_relaxed);
  }

  Snapshot TakeSnapshot() const;

  // Renders a one-line-per-table progress report.
  static std::string Format(const Snapshot& snapshot);

 private:
  std::vector<std::string> table_names_;
  std::vector<uint64_t> table_rows_;
  // unique_ptr-wrapped because atomics are not movable.
  std::unique_ptr<std::atomic<uint64_t>[]> rows_done_;
  std::unique_ptr<std::atomic<uint64_t>[]> bytes_;
  Stopwatch stopwatch_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_PROGRESS_H_
