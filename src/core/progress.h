#ifndef DBSYNTHPP_CORE_PROGRESS_H_
#define DBSYNTHPP_CORE_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stopwatch.h"

namespace pdgf {

// Live generation progress, the library equivalent of the JMX counters
// PDGF exposes to Java Mission Control (paper §5, Figure 11): per-table
// and total row/byte counters plus derived throughput. All methods are
// thread-safe; workers update, any thread may snapshot.
class ProgressTracker {
 public:
  struct TableProgress {
    std::string table;
    uint64_t rows_done = 0;
    uint64_t rows_total = 0;
    uint64_t bytes = 0;
    uint64_t packages_done = 0;  // completed work packages (partitions)
    double fraction = 0;  // rows_done / rows_total (1.0 when total is 0)
    // Hex table digest, reported by the engine at the end of a run with
    // compute_digests enabled; empty otherwise / while running.
    std::string digest;
  };

  struct Snapshot {
    std::vector<TableProgress> tables;
    uint64_t rows_done = 0;
    uint64_t rows_total = 0;
    uint64_t bytes = 0;
    double elapsed_seconds = 0;
    double rows_per_second = 0;
    double megabytes_per_second = 0;
    double fraction = 0;
  };

  // `table_names[i]` / `table_rows[i]` describe the tables to track.
  ProgressTracker(std::vector<std::string> table_names,
                  std::vector<uint64_t> table_rows);

  // Records `rows` generated rows / `bytes` output bytes for table `i`.
  // One call corresponds to one completed work package (partition).
  void Add(size_t table_index, uint64_t rows, uint64_t bytes) {
    rows_done_[table_index].fetch_add(rows, std::memory_order_relaxed);
    bytes_[table_index].fetch_add(bytes, std::memory_order_relaxed);
    packages_done_[table_index].fetch_add(1, std::memory_order_relaxed);
  }

  // Publishes the final hex digest of table `i` (engine runs with
  // compute_digests enabled call this once per table at join time).
  void RecordDigest(size_t table_index, std::string digest_hex);

  Snapshot TakeSnapshot() const;

  // Renders a one-line-per-table progress report.
  static std::string Format(const Snapshot& snapshot);

 private:
  std::vector<std::string> table_names_;
  std::vector<uint64_t> table_rows_;
  // unique_ptr-wrapped because atomics are not movable.
  std::unique_ptr<std::atomic<uint64_t>[]> rows_done_;
  std::unique_ptr<std::atomic<uint64_t>[]> bytes_;
  std::unique_ptr<std::atomic<uint64_t>[]> packages_done_;
  // Digest strings are cold (written once per run); a mutex keeps them
  // readable from concurrent snapshot threads without tearing.
  mutable std::mutex digest_mutex_;
  std::vector<std::string> digests_;
  Stopwatch stopwatch_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_PROGRESS_H_
