#ifndef DBSYNTHPP_CORE_SCHEMA_H_
#define DBSYNTHPP_CORE_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/generator.h"

namespace pdgf {

// One column of a generated table: SQL type metadata plus the generator
// tree that produces its values (paper Listing 1, <field> entries).
struct FieldDef {
  std::string name;
  DataType type = DataType::kVarchar;
  int size = 0;       // display width / max length; 0 = unspecified
  int scale = 2;      // decimal scale (kDecimal only)
  bool primary = false;
  bool nullable = true;
  // When false the field keeps its update-0 value in every abstract time
  // unit (e.g. a key); when true its value may differ per update.
  bool mutable_across_updates = false;
  std::unique_ptr<Generator> generator;

  FieldDef() = default;
  FieldDef(FieldDef&&) = default;
  FieldDef& operator=(FieldDef&&) = default;
};

// One table: a size expression (evaluated against the model properties,
// e.g. "6000000 * ${SF}") and its fields.
struct TableDef {
  std::string name;
  std::string size_expression = "1";
  // Number of abstract time units (updates) generated for this table; the
  // expression may reference properties. "1" means static data only.
  std::string updates_expression = "1";
  // Fraction of rows that receive a changed value in each update > 0.
  double update_fraction = 0.1;
  std::vector<FieldDef> fields;

  TableDef() = default;
  TableDef(TableDef&&) = default;
  TableDef& operator=(TableDef&&) = default;

  // Index of the field with `name`, or -1.
  int FindFieldIndex(std::string_view field_name) const;
  const FieldDef* FindField(std::string_view field_name) const;
};

// A model property: a named numeric expression that other expressions can
// reference as ${name}; overridable at generation time ("command line"
// overrides in the paper).
struct PropertyDef {
  std::string name;
  std::string type = "double";  // "double" | "long" — documentation only
  std::string expression;
};

// The full generation model (paper Listing 1 <schema>): project seed,
// PRNG choice, properties and tables.
struct SchemaDef {
  std::string name;
  uint64_t seed = 123456789;
  std::string rng_name = "PdgfDefaultRandom";
  std::vector<PropertyDef> properties;
  std::vector<TableDef> tables;

  SchemaDef() = default;
  SchemaDef(SchemaDef&&) = default;
  SchemaDef& operator=(SchemaDef&&) = default;

  int FindTableIndex(std::string_view table_name) const;
  const TableDef* FindTable(std::string_view table_name) const;
  TableDef* FindTable(std::string_view table_name);

  // Adds or replaces a property.
  void SetProperty(std::string_view property_name, std::string expression);
  const PropertyDef* FindProperty(std::string_view property_name) const;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_SCHEMA_H_
