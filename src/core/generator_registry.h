#ifndef DBSYNTHPP_CORE_GENERATOR_REGISTRY_H_
#define DBSYNTHPP_CORE_GENERATOR_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/generator.h"

namespace pdgf {

class XmlElement;

// Context handed to generator factories while loading a model
// configuration; resolves artifact references (Markov model files,
// dictionary files) relative to the model's directory.
struct ConfigLoadContext {
  std::string base_dir;  // directory of the model file; "" = cwd

  // Resolves `path` against base_dir unless absolute.
  std::string ResolvePath(const std::string& path) const;
};

// Maps XML tag names (e.g. "gen_IdGenerator") to factories, realizing
// the plugin interface of PDGF's architecture (Figure 2 tags generators
// as plugins). All built-in generators are pre-registered; callers may
// register additional ones.
class GeneratorRegistry {
 public:
  using Factory = std::function<StatusOr<GeneratorPtr>(
      const XmlElement& element, const ConfigLoadContext& context)>;

  // The process-wide registry with built-ins registered.
  static GeneratorRegistry& Global();

  // Registers a factory; replaces any existing registration.
  void Register(const std::string& config_name, Factory factory);

  bool Contains(const std::string& config_name) const;

  // Instantiates the generator described by `element` (whose tag is the
  // config name).
  StatusOr<GeneratorPtr> Create(const XmlElement& element,
                                const ConfigLoadContext& context) const;

  // Registered tag names, sorted.
  std::vector<std::string> Names() const;

 private:
  GeneratorRegistry() = default;

  std::map<std::string, Factory> factories_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_GENERATOR_REGISTRY_H_
