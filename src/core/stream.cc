#include "core/stream.h"

#include <algorithm>

#include "core/batch.h"
#include "util/strings.h"

namespace pdgf {

namespace {

// Minimal JSON string escaping for event payloads (the serve layer has
// its own copy; core cannot depend on it).
void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrPrintf("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

UpdateStreamGenerator::UpdateStreamGenerator(const GenerationSession* session,
                                             int table_index,
                                             const RowFormatter* formatter,
                                             UpdateStreamOptions options)
    : session_(session),
      table_index_(table_index),
      formatter_(formatter),
      options_(options),
      table_(&session->schema().tables[static_cast<size_t>(table_index)]) {
  const uint64_t units = session_->TableUpdates(table_index_);
  last_update_ = options_.last_update > 0
                     ? std::min(options_.last_update, units - 1)
                     : units - 1;
  if (options_.first_update == 0) options_.first_update = 1;
  if (options_.batch_rows == 0) {
    options_.batch_rows = RowRangeCursor::kDefaultBatchRows;
  }
  snapshot_phase_ = options_.snapshot;
  current_update_ =
      snapshot_phase_ ? 0 : options_.first_update;
  if (!snapshot_phase_ && current_update_ > last_update_) {
    done_ = true;
    return;
  }
  ResetCursorForPhase();
}

void UpdateStreamGenerator::ResetCursorForPhase() {
  cursor_.Reset(session_, table_index_, 0, session_->TableRows(table_index_),
                current_update_, options_.batch_rows);
}

bool UpdateStreamGenerator::NextBatch() {
  while (true) {
    if (cursor_.Next()) {
      render_buffer_.clear();
      formatter_->AppendBatch(*table_, cursor_.batch(), &render_buffer_,
                              &row_offsets_);
      batch_pos_ = 0;
      batch_valid_ = true;
      return true;
    }
    // Phase exhausted: snapshot rolls into the first update unit, update
    // units advance until the inclusive bound.
    if (snapshot_phase_) {
      snapshot_phase_ = false;
      current_update_ = options_.first_update;
      if (current_update_ > last_update_) return false;
    } else {
      if (current_update_ >= last_update_) return false;
      ++current_update_;
    }
    ResetCursorForPhase();
  }
}

size_t UpdateStreamGenerator::NextEvents(std::string* out, size_t max_events) {
  size_t emitted = 0;
  while (emitted < max_events && !done_) {
    if (!batch_valid_ && !NextBatch()) {
      done_ = true;
      break;
    }
    const RowBatch& batch = cursor_.batch();
    while (batch_pos_ < batch.row_count() && emitted < max_events) {
      const size_t i = batch_pos_++;
      std::string_view data(render_buffer_.data() + row_offsets_[i],
                            row_offsets_[i + 1] - row_offsets_[i]);
      // Strip the row terminator; the event line carries its own.
      while (!data.empty() &&
             (data.back() == '\n' || data.back() == '\r')) {
        data.remove_suffix(1);
      }
      const bool is_insert = cursor_.update() == 0;
      out->append(StrPrintf(
          "{\"event\":%llu,\"op\":\"%s\",\"table\":\"%s\","
          "\"update\":%llu,\"row\":%llu,\"data\":\"",
          static_cast<unsigned long long>(event_index_),
          is_insert ? "insert" : "update", table_->name.c_str(),
          static_cast<unsigned long long>(cursor_.update()),
          static_cast<unsigned long long>(batch.row_index(i))));
      AppendJsonEscaped(data, out);
      out->append("\"}\n");
      ++event_index_;
      ++emitted;
    }
    if (batch_valid_ && batch_pos_ >= batch.row_count()) {
      batch_valid_ = false;
    }
  }
  return emitted;
}

uint64_t UpdateStreamGenerator::CountTotalEvents() const {
  const uint64_t rows = session_->TableRows(table_index_);
  uint64_t total = options_.snapshot ? rows : 0;
  for (uint64_t u = options_.first_update; u <= last_update_; ++u) {
    for (uint64_t r = 0; r < rows; ++r) {
      if (session_->RowChangesInUpdate(table_index_, r, u)) ++total;
    }
  }
  return total;
}

}  // namespace pdgf
