#ifndef DBSYNTHPP_CORE_BATCH_H_
#define DBSYNTHPP_CORE_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/value.h"
#include "core/generator.h"
#include "core/session.h"
#include "util/simd_rng.h"

namespace pdgf {

// Batched generation substrate (ISSUE 3 tentpole).
//
// The scalar pipeline pays, per cell: a virtual Generate() dispatch, a
// GeneratorContext construction, and a two-step seed derivation that
// re-walks the update level of the Figure-1 hierarchy. A RowBatch holds
// a column-major block of reused Values so the engine can amortize all
// three: one virtual GenerateBatch() call per (column, batch), one
// hoisted update-level derivation per (column, batch), and a single
// DeriveSeed per cell. All batch paths are bit-identical to their scalar
// equivalents — the parity suite (tests/core/batch_test.cc) and the
// golden digest fixtures enforce it.

// One column of a RowBatch: `size` reused Values plus a null mask. Value
// storage (including each Value's string capacity) is retained across
// Resize() calls, which is what keeps steady-state batch generation
// allocation-free.
class ValueColumn {
 public:
  // Sets the active row count; grows storage when needed, never shrinks.
  void Resize(size_t rows) {
    if (values_.size() < rows) {
      values_.resize(rows);
      null_mask_.resize(rows);
    }
    size_ = rows;
  }

  size_t size() const { return size_; }

  // Mutable cell for generators to overwrite.
  Value* value(size_t i) { return &values_[i]; }
  const Value& get(size_t i) const { return values_[i]; }

  // Null mask: one byte per row, 1 = NULL. Valid after RefreshNullMask().
  bool is_null(size_t i) const { return null_mask_[i] != 0; }
  const std::vector<uint8_t>& null_mask() const { return null_mask_; }

  // Recomputes the null mask from the value kinds. The session calls this
  // once per generated column so formatters and digests branch on a dense
  // byte array instead of re-reading each Value's kind.
  void RefreshNullMask() {
    for (size_t i = 0; i < size_; ++i) {
      null_mask_[i] = values_[i].is_null() ? 1 : 0;
    }
  }

 private:
  std::vector<Value> values_;
  std::vector<uint8_t> null_mask_;
  size_t size_ = 0;
};

// A column-major block of generated rows: one ValueColumn per field plus
// the global row index of every batch row (row indices need not be
// contiguous — update-mode generation batches only the rows the update
// black box selected).
class RowBatch {
 public:
  // Prepares the batch for `field_count` columns over `row_count` global
  // row indices (copied from `rows`). Storage is reused across calls.
  void Reset(size_t field_count, const uint64_t* rows, size_t row_count) {
    if (columns_.size() < field_count) columns_.resize(field_count);
    field_count_ = field_count;
    rows_.assign(rows, rows + row_count);
    row_count_ = row_count;
    for (size_t f = 0; f < field_count_; ++f) columns_[f].Resize(row_count);
  }

  size_t row_count() const { return row_count_; }
  size_t column_count() const { return field_count_; }

  uint64_t row_index(size_t i) const { return rows_[i]; }
  const uint64_t* row_indices() const { return rows_.data(); }

  ValueColumn& column(size_t f) { return columns_[f]; }
  const ValueColumn& column(size_t f) const { return columns_[f]; }

  // Per-row effective updates of the mutable-field path; sized and filled
  // by GenerationSession::GenerateBatch only when the table has mutable
  // fields and an update stream is being generated.
  std::vector<uint64_t>& mutable_effective_updates() {
    return effective_updates_;
  }
  const std::vector<uint64_t>& effective_updates() const {
    return effective_updates_;
  }

  // Copies row `i` into a row-major vector (for scalar fallbacks like the
  // default RowFormatter::AppendBatch). Reuses `out`'s Value storage.
  void CopyRowTo(size_t i, std::vector<Value>* out) const {
    out->resize(field_count_);
    for (size_t f = 0; f < field_count_; ++f) {
      (*out)[f] = columns_[f].get(i);
    }
  }

 private:
  std::vector<ValueColumn> columns_;
  std::vector<uint64_t> rows_;
  std::vector<uint64_t> effective_updates_;
  size_t field_count_ = 0;
  size_t row_count_ = 0;
};

// Per-(field, batch) generation context handed to Generator::GenerateBatch.
// Carries the hoisted seed base so a row's field seed costs one DeriveSeed
// instead of the full per-cell hierarchy walk:
//
//   FieldSeed(t, f, row, u)
//     == DeriveSeed(DeriveSeed(column_seed ^ kUpdate, u) ^ kRow, row)
//     == SeedForRow(HoistedFieldBase(t, f, u), row)
//
// The inner derivation is loop-invariant across a batch generated at one
// update `u`, so it is computed once (the "hoisted base") and only the
// row-level derivation runs per cell. When per-row effective updates vary
// (mutable fields in update mode) the context falls back to the full
// FieldSeed walk per row — the cold path.
class BatchContext {
 public:
  // Uniform-update batch: every row is generated at `update`;
  // `hoisted_base` must be session->HoistedFieldBase(table, field, update).
  BatchContext(const GenerationSession* session, int table_index,
               int field_index, const uint64_t* rows, size_t row_count,
               uint64_t update, uint64_t hoisted_base)
      : session_(session),
        table_index_(table_index),
        field_index_(field_index),
        rows_(rows),
        row_count_(row_count),
        updates_(nullptr),
        update_(update),
        hoisted_base_(hoisted_base) {}

  // Varying-update batch: row i is generated at `updates[i]` (the
  // per-row effective update resolved once by the session).
  BatchContext(const GenerationSession* session, int table_index,
               int field_index, const uint64_t* rows, size_t row_count,
               const uint64_t* updates)
      : session_(session),
        table_index_(table_index),
        field_index_(field_index),
        rows_(rows),
        row_count_(row_count),
        updates_(updates),
        update_(0),
        hoisted_base_(0) {}

  size_t size() const { return row_count_; }
  const GenerationSession* session() const { return session_; }
  int table_index() const { return table_index_; }
  int field_index() const { return field_index_; }

  uint64_t row(size_t i) const { return rows_[i]; }
  uint64_t update(size_t i) const {
    return updates_ != nullptr ? updates_[i] : update_;
  }

  // The field seed for batch row i — identical to
  // session->FieldSeed(table, field, row(i), update(i)).
  uint64_t seed(size_t i) const {
    return updates_ == nullptr
               ? GenerationSession::SeedForRow(hoisted_base_, rows_[i])
               : session_->FieldSeed(table_index_, field_index_, rows_[i],
                                     updates_[i]);
  }

  // True when every row shares one hoisted base (uniform mode) — the
  // precondition for the vectorized seed/draw fast paths in generator
  // batch overrides.
  bool has_uniform_seeds() const { return updates_ == nullptr; }

  // Fills out[0..count) with seed(begin) .. seed(begin + count - 1). The
  // uniform mode runs the SIMD DeriveSeed kernel (4 lanes under AVX2);
  // varying mode walks the scalar per-row path. Bit-identical to calling
  // seed(i) in a loop either way.
  void FillSeeds(size_t begin, size_t count, uint64_t* out) const {
    if (updates_ == nullptr) {
      simd::DeriveSeedBatch(GenerationSession::RowSeedParent(hoisted_base_),
                            rows_ + begin, count, out);
    } else {
      for (size_t i = 0; i < count; ++i) out[i] = seed(begin + i);
    }
  }

  // Full scalar context for row i; used by the default GenerateBatch
  // fallback and by any generator without a batch override.
  GeneratorContext Scalar(size_t i) const {
    return GeneratorContext(session_, table_index_, rows_[i], update(i),
                            seed(i));
  }

 private:
  const GenerationSession* session_;
  int table_index_;
  int field_index_;
  const uint64_t* rows_;
  size_t row_count_;
  const uint64_t* updates_;  // null => uniform `update_`
  uint64_t update_;
  uint64_t hoisted_base_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_BATCH_H_
