#include "core/engine.h"

#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "util/files.h"
#include "util/stopwatch.h"

namespace pdgf {
namespace {

// One schedulable unit: a row range of one table.
struct WorkPackage {
  int table_index;
  uint64_t begin_row;
  uint64_t end_row;
  uint64_t sequence;  // package order within its table
};

// Per-table output state: serializes writes and, in sorted mode, reorders
// completed packages so the file is written in row order.
class TableOutput {
 public:
  TableOutput(std::unique_ptr<Sink> sink, bool sorted)
      : sink_(std::move(sink)), sorted_(sorted) {}

  Status Deliver(uint64_t sequence, std::string buffer) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!sorted_) {
      return sink_->Write(buffer);
    }
    pending_.emplace(sequence, std::move(buffer));
    while (!pending_.empty() && pending_.begin()->first == next_sequence_) {
      Status status = sink_->Write(pending_.begin()->second);
      if (!status.ok()) return status;
      pending_.erase(pending_.begin());
      ++next_sequence_;
    }
    return Status::Ok();
  }

  Status WriteDirect(std::string_view data) {
    std::lock_guard<std::mutex> lock(mutex_);
    return sink_->Write(data);
  }

  Status Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sorted_ && !pending_.empty()) {
      return InternalError("packages missing at close");
    }
    return sink_->Close();
  }

  uint64_t bytes_written() const { return sink_->bytes_written(); }

 private:
  std::unique_ptr<Sink> sink_;
  bool sorted_;
  std::mutex mutex_;
  std::map<uint64_t, std::string> pending_;
  uint64_t next_sequence_ = 0;
};

}  // namespace

void NodeShare(uint64_t rows, int node_count, int node_id, uint64_t* begin,
               uint64_t* end) {
  if (node_count < 1) node_count = 1;
  if (node_id < 0) node_id = 0;
  if (node_id >= node_count) node_id = node_count - 1;
  uint64_t n = static_cast<uint64_t>(node_count);
  uint64_t i = static_cast<uint64_t>(node_id);
  *begin = rows * i / n;
  *end = rows * (i + 1) / n;
}

GenerationEngine::GenerationEngine(const GenerationSession* session,
                                   const RowFormatter* formatter,
                                   SinkFactory sink_factory,
                                   GenerationOptions options)
    : session_(session),
      formatter_(formatter),
      sink_factory_(std::move(sink_factory)),
      options_(options) {}

Status GenerationEngine::Run(ProgressTracker* progress) {
  const SchemaDef& schema = session_->schema();
  if (options_.worker_count < 1) {
    return InvalidArgumentError(
        "worker_count must be >= 1, got " +
        std::to_string(options_.worker_count));
  }
  if (options_.work_package_rows < 1) options_.work_package_rows = 1;

  // Open sinks and emit headers.
  std::vector<std::unique_ptr<TableOutput>> outputs;
  outputs.reserve(schema.tables.size());
  for (const TableDef& table : schema.tables) {
    PDGF_ASSIGN_OR_RETURN(std::unique_ptr<Sink> sink, sink_factory_(table));
    auto output = std::make_unique<TableOutput>(std::move(sink),
                                                options_.sorted_output);
    std::string header;
    formatter_->AppendHeader(table, &header);
    if (!header.empty()) {
      PDGF_RETURN_IF_ERROR(output->WriteDirect(header));
    }
    outputs.push_back(std::move(output));
  }

  // Meta-scheduler: node-local ranges; scheduler: packages.
  std::vector<WorkPackage> packages;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    uint64_t rows = session_->TableRows(static_cast<int>(t));
    uint64_t begin = 0;
    uint64_t end = rows;
    NodeShare(rows, options_.node_count, options_.node_id, &begin, &end);
    uint64_t sequence = 0;
    for (uint64_t start = begin; start < end;
         start += options_.work_package_rows) {
      uint64_t stop = start + options_.work_package_rows;
      if (stop > end) stop = end;
      packages.push_back(
          WorkPackage{static_cast<int>(t), start, stop, sequence++});
    }
  }

  Stopwatch stopwatch;
  std::atomic<size_t> next_package{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  Status first_error;
  std::atomic<uint64_t> total_rows{0};
  // Digest join point: workers fold rows into private partials and merge
  // them here (under the mutex) exactly once, when they run out of work.
  const bool digests = options_.compute_digests;
  std::mutex digest_mutex;
  std::vector<TableDigest> merged_digests(digests ? schema.tables.size()
                                                  : 0);

  auto worker_main = [&]() {
    std::vector<Value> row;
    std::string buffer;
    std::vector<TableDigest> local_digests(digests ? schema.tables.size()
                                                   : 0);
    while (true) {
      if (failed.load(std::memory_order_relaxed)) break;
      size_t index = next_package.fetch_add(1, std::memory_order_relaxed);
      if (index >= packages.size()) break;
      const WorkPackage& package = packages[index];
      const TableDef& table =
          schema.tables[static_cast<size_t>(package.table_index)];
      buffer.clear();
      uint64_t rows_in_package = 0;
      for (uint64_t r = package.begin_row; r < package.end_row; ++r) {
        if (options_.update > 0 &&
            !session_->RowChangesInUpdate(package.table_index, r,
                                          options_.update)) {
          continue;
        }
        session_->GenerateRow(package.table_index, r, options_.update, &row);
        size_t row_start = buffer.size();
        formatter_->AppendRow(table, row, &buffer);
        if (digests) {
          local_digests[static_cast<size_t>(package.table_index)].AddRow(
              r, std::string_view(buffer).substr(row_start), row);
        }
        ++rows_in_package;
      }
      Status status =
          outputs[static_cast<size_t>(package.table_index)]->Deliver(
              package.sequence, buffer);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = status;
        failed.store(true, std::memory_order_relaxed);
        break;
      }
      total_rows.fetch_add(rows_in_package, std::memory_order_relaxed);
      if (progress != nullptr) {
        progress->Add(static_cast<size_t>(package.table_index),
                      rows_in_package, buffer.size());
      }
    }
    if (digests) {
      std::lock_guard<std::mutex> lock(digest_mutex);
      for (size_t t = 0; t < local_digests.size(); ++t) {
        merged_digests[t].Merge(local_digests[t]);
      }
    }
  };

  if (options_.worker_count == 1) {
    worker_main();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(options_.worker_count));
    for (int w = 0; w < options_.worker_count; ++w) {
      workers.emplace_back(worker_main);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  if (failed.load()) return first_error;

  // Footers and close.
  uint64_t bytes = 0;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    std::string footer;
    formatter_->AppendFooter(schema.tables[t], &footer);
    if (!footer.empty()) {
      PDGF_RETURN_IF_ERROR(outputs[t]->WriteDirect(footer));
    }
    PDGF_RETURN_IF_ERROR(outputs[t]->Close());
    bytes += outputs[t]->bytes_written();
  }

  stats_.rows = total_rows.load();
  stats_.bytes = bytes;
  stats_.seconds = stopwatch.ElapsedSeconds();
  stats_.packages = packages.size();
  if (digests) {
    stats_.table_digests = std::move(merged_digests);
    if (progress != nullptr) {
      for (size_t t = 0; t < stats_.table_digests.size(); ++t) {
        progress->RecordDigest(t, stats_.table_digests[t].Hex());
      }
    }
  }
  stats_.megabytes_per_second =
      stats_.seconds > 0
          ? static_cast<double>(bytes) / (1024.0 * 1024.0) / stats_.seconds
          : 0;
  return Status::Ok();
}

StatusOr<std::string> GenerateTableToString(const GenerationSession& session,
                                            int table_index,
                                            const RowFormatter& formatter,
                                            uint64_t update) {
  const TableDef& table =
      session.schema().tables[static_cast<size_t>(table_index)];
  std::string out;
  formatter.AppendHeader(table, &out);
  std::vector<Value> row;
  uint64_t rows = session.TableRows(table_index);
  for (uint64_t r = 0; r < rows; ++r) {
    if (update > 0 && !session.RowChangesInUpdate(table_index, r, update)) {
      continue;
    }
    session.GenerateRow(table_index, r, update, &row);
    formatter.AppendRow(table, row, &out);
  }
  formatter.AppendFooter(table, &out);
  return out;
}

StatusOr<GenerationEngine::Stats> GenerateToDirectory(
    const GenerationSession& session, const RowFormatter& formatter,
    const std::string& directory, GenerationOptions options,
    ProgressTracker* progress) {
  PDGF_RETURN_IF_ERROR(MakeDirectories(directory));
  std::string extension = formatter.FileExtension();
  // Under the meta-scheduler every node writes its own chunk file
  // ("<table>.<ext>.<node>"), so all nodes may target one directory;
  // single-node runs produce plain "<table>.<ext>".
  std::string node_suffix;
  if (options.node_count > 1) {
    node_suffix = "." + std::to_string(options.node_id + 1);
  }
  SinkFactory factory =
      [&directory, &extension,
       &node_suffix](const TableDef& table) -> StatusOr<std::unique_ptr<Sink>> {
    PDGF_ASSIGN_OR_RETURN(
        std::unique_ptr<FileSink> sink,
        FileSink::Open(JoinPath(
            directory, table.name + "." + extension + node_suffix)));
    return std::unique_ptr<Sink>(std::move(sink));
  };
  GenerationEngine engine(&session, &formatter, factory, options);
  PDGF_RETURN_IF_ERROR(engine.Run(progress));
  return engine.stats();
}

StatusOr<GenerationEngine::Stats> GenerateToNull(
    const GenerationSession& session, const RowFormatter& formatter,
    GenerationOptions options, ProgressTracker* progress) {
  SinkFactory factory =
      [](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
    return std::unique_ptr<Sink>(new NullSink());
  };
  GenerationEngine engine(&session, &formatter, factory, options);
  PDGF_RETURN_IF_ERROR(engine.Run(progress));
  return engine.stats();
}

}  // namespace pdgf
