#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "core/batch.h"
#include "util/files.h"
#include "util/stopwatch.h"

namespace pdgf {
namespace {

// One schedulable unit: a row range of one table.
struct WorkPackage {
  int table_index;
  uint64_t begin_row;
  uint64_t end_row;
  uint64_t sequence;  // package order within its table
};

// Timing of one Deliver call, captured only when the caller passes a
// non-null pointer (metrics-enabled runs). Splitting wait from write
// makes lock contention visible: wait is time spent blocked on the
// table mutex or on reorder-buffer backpressure, write is time spent
// pushing bytes into the sink.
struct DeliverMetrics {
  int64_t wait_nanos = 0;
  int64_t write_nanos = 0;
};

// Per-table output state: serializes writes and, in sorted mode, reorders
// completed packages so the file is written in row order. The reorder
// buffer is bounded (`max_pending`): a worker delivering far ahead of the
// gap package blocks until the gap closes instead of parking packages
// without bound. Progress is guaranteed because workers claim packages
// in sequence order per table, so the worker holding the gap package
// (sequence == next_sequence_) never blocks; aborted runs shed deliveries
// instead of blocking so no worker deadlocks after a failure.
class TableOutput {
 public:
  TableOutput(std::unique_ptr<Sink> sink, bool sorted, uint64_t max_pending)
      : sink_(std::move(sink)),
        sorted_(sorted),
        max_pending_(max_pending < 1 ? 1 : max_pending) {}

  Status Deliver(uint64_t sequence, std::string buffer,
                 DeliverMetrics* metrics) {
    const bool timed = metrics != nullptr;
    int64_t t0 = timed ? MetricsNowNanos() : 0;
    std::unique_lock<std::mutex> lock(mutex_);
    if (!sorted_) {
      int64_t t1 = timed ? MetricsNowNanos() : 0;
      Status status = sink_->Write(buffer);
      if (timed) {
        int64_t t2 = MetricsNowNanos();
        metrics->wait_nanos += t1 - t0;
        metrics->write_nanos += t2 - t1;
      }
      return status;
    }
    while (!aborted_ && sequence > next_sequence_ &&
           pending_.size() >= max_pending_) {
      space_.wait(lock);
    }
    int64_t t1 = timed ? MetricsNowNanos() : 0;
    if (timed) metrics->wait_nanos += t1 - t0;
    if (aborted_) {
      // The run already failed; shed the package rather than write or
      // park it (the engine returns the original error, not ours).
      return Status::Ok();
    }
    if (sequence != next_sequence_) {
      pending_.emplace(sequence, std::move(buffer));
      high_water_ = std::max<uint64_t>(high_water_, pending_.size());
      return Status::Ok();
    }
    Status status = sink_->Write(buffer);
    ++next_sequence_;
    while (status.ok() && !pending_.empty() &&
           pending_.begin()->first == next_sequence_) {
      status = sink_->Write(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_sequence_;
    }
    if (timed) metrics->write_nanos += MetricsNowNanos() - t1;
    // The gap moved (or an error is about to abort the run): wake any
    // worker blocked on reorder space.
    space_.notify_all();
    return status;
  }

  Status WriteDirect(std::string_view data) {
    std::lock_guard<std::mutex> lock(mutex_);
    return sink_->Write(data);
  }

  // Unblocks delivering workers and makes subsequent Deliver calls shed.
  // Called once the engine has recorded a failure.
  void Abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    space_.notify_all();
  }

  // Closes the underlying sink exactly once (idempotent). On the normal
  // path a sorted table with parked packages is an internal error; on the
  // `aborted` path parked packages are expected debris of the failed run
  // and are discarded, so closing cannot mask the original error with a
  // follow-on "packages missing at close".
  Status Close(bool aborted) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Status::Ok();
    closed_ = true;
    if (!aborted && sorted_ && !pending_.empty()) {
      (void)sink_->Close();  // still release the handle
      return InternalError("packages missing at close");
    }
    pending_.clear();
    return sink_->Close();
  }

  uint64_t bytes_written() const { return sink_->bytes_written(); }

  // Peak number of parked out-of-order packages (sorted mode). Only
  // meaningful after the run's workers have joined.
  uint64_t reorder_high_water() {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  std::unique_ptr<Sink> sink_;
  bool sorted_;
  uint64_t max_pending_;
  std::mutex mutex_;
  std::condition_variable space_;
  std::map<uint64_t, std::string> pending_;
  uint64_t next_sequence_ = 0;
  uint64_t high_water_ = 0;
  bool aborted_ = false;
  bool closed_ = false;
};

// One of every 2^4 processed rows pays the extra clock reads that split
// the generate block into row-generation / formatting / digesting
// (legacy scalar pipeline only; the batch pipeline times each batch
// exactly — a handful of clock reads per ~1024 rows is cheaper than the
// sampled per-row reads).
constexpr uint64_t kPhaseSampleMask = 15;

}  // namespace

void NodeShare(uint64_t rows, int node_count, int node_id, uint64_t* begin,
               uint64_t* end) {
  if (node_count < 1) node_count = 1;
  if (node_id < 0) node_id = 0;
  if (node_id >= node_count) node_id = node_count - 1;
  uint64_t n = static_cast<uint64_t>(node_count);
  uint64_t i = static_cast<uint64_t>(node_id);
#if defined(__SIZEOF_INT128__)
  // rows * (i + 1) overflows 64 bits once rows x node_count exceeds
  // 2^64; widen the intermediate so the floor split stays exact (and
  // bit-identical to the historical result for all non-overflowing
  // inputs).
  unsigned __int128 wide = rows;
  *begin = static_cast<uint64_t>(wide * i / n);
  *end = static_cast<uint64_t>(wide * (i + 1) / n);
#else
  // Portable fallback: quotient+remainder distribution. Exhaustive and
  // disjoint like the floor split (boundaries differ, which is fine —
  // correctness only requires a contiguous exact partition).
  uint64_t base = rows / n;
  uint64_t remainder = rows % n;
  uint64_t extra = i < remainder ? i : remainder;
  *begin = base * i + extra;
  *end = *begin + base + (i < remainder ? 1 : 0);
#endif
}

GenerationEngine::GenerationEngine(const GenerationSession* session,
                                   const RowFormatter* formatter,
                                   SinkFactory sink_factory,
                                   GenerationOptions options)
    : session_(session),
      formatter_(formatter),
      sink_factory_(std::move(sink_factory)),
      options_(options) {}

Status GenerationEngine::Run(ProgressTracker* progress) {
  const SchemaDef& schema = session_->schema();
  if (options_.worker_count < 1) {
    return InvalidArgumentError(
        "worker_count must be >= 1, got " +
        std::to_string(options_.worker_count));
  }
  if (options_.work_package_rows < 1) options_.work_package_rows = 1;

  // Sorted-mode reorder bound: enough headroom that workers rarely
  // block, small enough that a stalled package cannot buffer the rest of
  // the table in memory.
  const uint64_t reorder_capacity =
      options_.reorder_buffer_packages > 0
          ? options_.reorder_buffer_packages
          : std::max<uint64_t>(
                8, 2 * static_cast<uint64_t>(options_.worker_count));

  // Open sinks and emit headers. Any failure past the first open must
  // close the sinks already opened — sinks are never leaked, even on the
  // error path.
  std::vector<std::unique_ptr<TableOutput>> outputs;
  outputs.reserve(schema.tables.size());
  auto abort_close_all = [&outputs]() {
    for (std::unique_ptr<TableOutput>& output : outputs) {
      (void)output->Close(/*aborted=*/true);
    }
  };
  for (const TableDef& table : schema.tables) {
    auto sink = sink_factory_(table);
    if (!sink.ok()) {
      abort_close_all();
      return sink.status();
    }
    auto output = std::make_unique<TableOutput>(
        std::move(*sink), options_.sorted_output, reorder_capacity);
    std::string header;
    formatter_->AppendHeader(table, &header);
    if (!header.empty()) {
      Status written = output->WriteDirect(header);
      if (!written.ok()) {
        (void)output->Close(/*aborted=*/true);
        abort_close_all();
        return written;
      }
    }
    outputs.push_back(std::move(output));
  }

  // Meta-scheduler: node-local ranges; scheduler: packages.
  std::vector<WorkPackage> packages;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    uint64_t rows = session_->TableRows(static_cast<int>(t));
    uint64_t begin = 0;
    uint64_t end = rows;
    NodeShare(rows, options_.node_count, options_.node_id, &begin, &end);
    uint64_t sequence = 0;
    for (uint64_t start = begin; start < end;
         start += options_.work_package_rows) {
      uint64_t stop = start + options_.work_package_rows;
      if (stop > end) stop = end;
      packages.push_back(
          WorkPackage{static_cast<int>(t), start, stop, sequence++});
    }
  }

  Stopwatch stopwatch;
  std::atomic<size_t> next_package{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  Status first_error;
  std::atomic<uint64_t> total_rows{0};
  // Digest join point: workers fold rows into private partials and merge
  // them here (under the mutex) exactly once, when they run out of work.
  const bool digests = options_.compute_digests;
  std::mutex digest_mutex;
  std::vector<TableDigest> merged_digests(digests ? schema.tables.size()
                                                  : 0);
  // Metrics join point, same discipline: thread-private WorkerMetrics on
  // each worker's stack, merged exactly once at join. A disabled run
  // allocates nothing and never reads the clock in the hot path.
  const bool metrics_on = options_.metrics_enabled;
  const size_t trace_capacity =
      metrics_on && options_.trace_events
          ? static_cast<size_t>(options_.trace_capacity_per_worker)
          : 0;
  const int64_t metrics_epoch = metrics_on ? MetricsNowNanos() : 0;
  std::mutex metrics_mutex;
  MetricsReport metrics_report;

  // First failure wins: record the error once, then wake any worker
  // blocked on reorder backpressure so the run winds down instead of
  // deadlocking; later deliveries are shed.
  auto record_failure = [&](const Status& status) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.ok()) first_error = status;
    }
    failed.store(true, std::memory_order_relaxed);
    for (std::unique_ptr<TableOutput>& output : outputs) {
      output->Abort();
    }
  };

  const bool use_batch = !options_.scalar_pipeline;
  const uint64_t batch_rows =
      options_.batch_rows < 1 ? 1 : options_.batch_rows;

  auto worker_main = [&]() {
    std::vector<Value> row;
    std::string buffer;
    // Batch-pipeline working set, reused across packages: the row-index
    // gather list, the column-major batch (Value string capacity is
    // retained) and the formatter's per-row byte offsets.
    std::vector<uint64_t> row_indices;
    RowBatch batch;
    std::vector<size_t> row_offsets;
    std::vector<TableDigest> local_digests(digests ? schema.tables.size()
                                                   : 0);
    WorkerMetrics local_metrics(metrics_on ? schema.tables.size() : 0,
                                trace_capacity);
    const int64_t worker_start = metrics_on ? MetricsNowNanos() : 0;
    uint64_t sample_counter = 0;
    while (true) {
      if (failed.load(std::memory_order_relaxed)) break;
      size_t index = next_package.fetch_add(1, std::memory_order_relaxed);
      if (index >= packages.size()) break;
      const WorkPackage& package = packages[index];
      const size_t table_index = static_cast<size_t>(package.table_index);
      const TableDef& table = schema.tables[table_index];
      buffer.clear();
      uint64_t rows_in_package = 0;
      const int64_t package_start = metrics_on ? MetricsNowNanos() : 0;
      // Phase split. Batch pipeline: each batch's generate / format /
      // digest blocks are timed exactly (a few clock reads per ~1024
      // rows). Scalar pipeline: every 16th row samples its own phase
      // durations and the package's exact block time is apportioned by
      // the sampled split at package end.
      int64_t sampled_generate = 0;
      int64_t sampled_format = 0;
      int64_t sampled_digest = 0;
      if (use_batch) {
        for (uint64_t start = package.begin_row; start < package.end_row;
             start += batch_rows) {
          uint64_t stop = start + batch_rows;
          if (stop > package.end_row) stop = package.end_row;
          row_indices.clear();
          if (options_.update > 0) {
            // Update mode: batch only the rows the update black box
            // selected for this time unit.
            for (uint64_t r = start; r < stop; ++r) {
              if (session_->RowChangesInUpdate(package.table_index, r,
                                               options_.update)) {
                row_indices.push_back(r);
              }
            }
            if (row_indices.empty()) continue;
          } else {
            for (uint64_t r = start; r < stop; ++r) row_indices.push_back(r);
          }
          const int64_t t0 = metrics_on ? MetricsNowNanos() : 0;
          session_->GenerateBatch(package.table_index, row_indices.data(),
                                  row_indices.size(), options_.update,
                                  &batch);
          const int64_t t1 = metrics_on ? MetricsNowNanos() : 0;
          formatter_->AppendBatch(table, batch, &buffer,
                                  digests ? &row_offsets : nullptr);
          const int64_t t2 = metrics_on ? MetricsNowNanos() : 0;
          if (digests) {
            // Row-byte hashes from the formatter's offset spans, column
            // checksums column-major — every digest accumulator is
            // commutative, so this matches the scalar AddRow-per-row
            // result exactly.
            TableDigest& digest = local_digests[table_index];
            const std::string_view bytes_view(buffer);
            for (size_t i = 0; i < batch.row_count(); ++i) {
              digest.AddRowBytes(
                  batch.row_index(i),
                  bytes_view.substr(row_offsets[i],
                                    row_offsets[i + 1] - row_offsets[i]));
            }
            for (size_t c = 0; c < batch.column_count(); ++c) {
              const ValueColumn& column = batch.column(c);
              for (size_t i = 0; i < column.size(); ++i) {
                digest.AddColumnValue(c, column.get(i));
              }
            }
          }
          if (metrics_on) {
            const int64_t t3 = digests ? MetricsNowNanos() : t2;
            sampled_generate += t1 - t0;
            sampled_format += t2 - t1;
            sampled_digest += t3 - t2;
          }
          rows_in_package += row_indices.size();
        }
      } else {
        for (uint64_t r = package.begin_row; r < package.end_row; ++r) {
          if (options_.update > 0 &&
              !session_->RowChangesInUpdate(package.table_index, r,
                                            options_.update)) {
            continue;
          }
          const bool sampled =
              metrics_on && ((sample_counter++ & kPhaseSampleMask) == 0);
          const int64_t t0 = sampled ? MetricsNowNanos() : 0;
          session_->GenerateRow(package.table_index, r, options_.update,
                                &row);
          const int64_t t1 = sampled ? MetricsNowNanos() : 0;
          size_t row_start = buffer.size();
          formatter_->AppendRow(table, row, &buffer);
          const int64_t t2 = sampled ? MetricsNowNanos() : 0;
          if (digests) {
            local_digests[table_index].AddRow(
                r, std::string_view(buffer).substr(row_start), row);
          }
          if (sampled) {
            const int64_t t3 = digests ? MetricsNowNanos() : t2;
            sampled_generate += t1 - t0;
            sampled_format += t2 - t1;
            sampled_digest += t3 - t2;
          }
          ++rows_in_package;
        }
      }
      DeliverMetrics deliver_metrics;
      int64_t generate_nanos = 0;
      if (metrics_on) generate_nanos = MetricsNowNanos() - package_start;
      Status status = outputs[table_index]->Deliver(
          package.sequence, buffer,
          metrics_on ? &deliver_metrics : nullptr);
      if (!status.ok()) {
        record_failure(status);
        break;
      }
      total_rows.fetch_add(rows_in_package, std::memory_order_relaxed);
      if (progress != nullptr) {
        progress->Add(table_index, rows_in_package, buffer.size());
      }
      if (metrics_on) {
        if (use_batch) {
          // Batch phases are measured exactly; the residual of the
          // package block (row-index gathering, update filtering, loop
          // bookkeeping) is charged to row generation.
          int64_t residual = generate_nanos - sampled_generate -
                             sampled_format - sampled_digest;
          if (residual < 0) residual = 0;
          local_metrics.AddPhase(Phase::kRowGeneration,
                                 sampled_generate + residual);
          local_metrics.AddPhase(Phase::kFormatting, sampled_format);
          local_metrics.AddPhase(Phase::kDigesting, sampled_digest);
        } else {
          // Apportion the exact block time among the three row phases by
          // the sampled split (all to row generation when nothing was
          // sampled, e.g. an empty package).
          const int64_t sampled_total =
              sampled_generate + sampled_format + sampled_digest;
          if (sampled_total > 0) {
            const double scale = static_cast<double>(generate_nanos) /
                                 static_cast<double>(sampled_total);
            local_metrics.AddPhase(
                Phase::kRowGeneration,
                static_cast<int64_t>(
                    scale * static_cast<double>(sampled_generate)));
            local_metrics.AddPhase(
                Phase::kFormatting,
                static_cast<int64_t>(scale *
                                     static_cast<double>(sampled_format)));
            local_metrics.AddPhase(
                Phase::kDigesting,
                static_cast<int64_t>(scale *
                                     static_cast<double>(sampled_digest)));
          } else {
            local_metrics.AddPhase(Phase::kRowGeneration, generate_nanos);
          }
        }
        local_metrics.AddPhase(Phase::kSinkWait,
                               deliver_metrics.wait_nanos);
        local_metrics.AddPhase(Phase::kSinkWrite,
                               deliver_metrics.write_nanos);
        local_metrics.AddTablePackage(table_index, rows_in_package,
                                      buffer.size());
        if (trace_capacity > 0) {
          local_metrics.AddTrace("package", package.table_index,
                                 package.sequence,
                                 package_start - metrics_epoch,
                                 MetricsNowNanos() - package_start);
        }
      }
    }
    if (digests) {
      std::lock_guard<std::mutex> lock(digest_mutex);
      for (size_t t = 0; t < local_digests.size(); ++t) {
        merged_digests[t].Merge(local_digests[t]);
      }
    }
    if (metrics_on) {
      local_metrics.set_active_nanos(MetricsNowNanos() - worker_start);
      std::lock_guard<std::mutex> lock(metrics_mutex);
      metrics_report.MergeWorker(local_metrics);
    }
  };

  if (options_.worker_count == 1) {
    worker_main();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(options_.worker_count));
    for (int w = 0; w < options_.worker_count; ++w) {
      workers.emplace_back(worker_main);
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  if (failed.load()) {
    // Best-effort close: no sink handle outlives the run, and closing an
    // aborted sorted table (which legitimately has parked packages)
    // cannot mask the original error.
    abort_close_all();
    return first_error;
  }

  // Footers and close. On an error here the remaining outputs are still
  // closed (best effort) before the first error is returned.
  uint64_t bytes = 0;
  Status close_error;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    std::string footer;
    formatter_->AppendFooter(schema.tables[t], &footer);
    if (close_error.ok() && !footer.empty()) {
      Status written = outputs[t]->WriteDirect(footer);
      if (!written.ok()) close_error = written;
    }
    Status closed = outputs[t]->Close(/*aborted=*/!close_error.ok());
    if (close_error.ok() && !closed.ok()) close_error = closed;
    bytes += outputs[t]->bytes_written();
  }
  if (!close_error.ok()) {
    abort_close_all();  // idempotent; covers outputs after the failure
    return close_error;
  }

  stats_.rows = total_rows.load();
  stats_.bytes = bytes;
  stats_.seconds = stopwatch.ElapsedSeconds();
  stats_.packages = packages.size();
  if (digests) {
    stats_.table_digests = std::move(merged_digests);
    if (progress != nullptr) {
      for (size_t t = 0; t < stats_.table_digests.size(); ++t) {
        progress->RecordDigest(t, stats_.table_digests[t].Hex());
      }
    }
  }
  stats_.megabytes_per_second =
      stats_.seconds > 0
          ? static_cast<double>(bytes) / (1024.0 * 1024.0) / stats_.seconds
          : 0;
  if (metrics_on) {
    metrics_report.enabled = true;
    metrics_report.wall_seconds = stats_.seconds;
    metrics_report.rows = stats_.rows;
    metrics_report.bytes = stats_.bytes;
    metrics_report.packages = stats_.packages;
    metrics_report.tables.resize(schema.tables.size());
    for (size_t t = 0; t < schema.tables.size(); ++t) {
      MetricsReport::TableReport& table_report = metrics_report.tables[t];
      table_report.name = schema.tables[t].name;
      // Authoritative byte count comes from the sink (includes headers
      // and footers); worker-accumulated bytes remain in the per-worker
      // reports as formatted row payload.
      table_report.bytes = outputs[t]->bytes_written();
      table_report.reorder_buffer_high_water =
          options_.sorted_output ? outputs[t]->reorder_high_water() : 0;
      table_report.reorder_buffer_capacity =
          options_.sorted_output ? reorder_capacity : 0;
    }
    metrics_report.Finalize();
    stats_.metrics = std::move(metrics_report);
  }
  return Status::Ok();
}

StatusOr<std::string> GenerateTableToString(const GenerationSession& session,
                                            int table_index,
                                            const RowFormatter& formatter,
                                            uint64_t update) {
  const TableDef& table =
      session.schema().tables[static_cast<size_t>(table_index)];
  std::string out;
  formatter.AppendHeader(table, &out);
  // Single-threaded batch pipeline: same per-chunk gather as the engine's
  // worker loop, bit-identical to the historical per-row rendering.
  constexpr uint64_t kChunkRows = 1024;
  std::vector<uint64_t> row_indices;
  RowBatch batch;
  uint64_t rows = session.TableRows(table_index);
  for (uint64_t start = 0; start < rows; start += kChunkRows) {
    uint64_t stop = start + kChunkRows;
    if (stop > rows) stop = rows;
    row_indices.clear();
    for (uint64_t r = start; r < stop; ++r) {
      if (update > 0 && !session.RowChangesInUpdate(table_index, r, update)) {
        continue;
      }
      row_indices.push_back(r);
    }
    if (row_indices.empty()) continue;
    session.GenerateBatch(table_index, row_indices.data(),
                          row_indices.size(), update, &batch);
    formatter.AppendBatch(table, batch, &out);
  }
  formatter.AppendFooter(table, &out);
  return out;
}

StatusOr<GenerationEngine::Stats> GenerateToDirectory(
    const GenerationSession& session, const RowFormatter& formatter,
    const std::string& directory, GenerationOptions options,
    ProgressTracker* progress) {
  PDGF_RETURN_IF_ERROR(MakeDirectories(directory));
  std::string extension = formatter.FileExtension();
  // Under the meta-scheduler every node writes its own chunk file
  // ("<table>.<ext>.<node>"), so all nodes may target one directory;
  // single-node runs produce plain "<table>.<ext>".
  std::string node_suffix;
  if (options.node_count > 1) {
    node_suffix = "." + std::to_string(options.node_id + 1);
  }
  SinkFactory factory =
      [&directory, &extension,
       &node_suffix](const TableDef& table) -> StatusOr<std::unique_ptr<Sink>> {
    PDGF_ASSIGN_OR_RETURN(
        std::unique_ptr<FileSink> sink,
        FileSink::Open(JoinPath(
            directory, table.name + "." + extension + node_suffix)));
    return std::unique_ptr<Sink>(std::move(sink));
  };
  GenerationEngine engine(&session, &formatter, factory, options);
  PDGF_RETURN_IF_ERROR(engine.Run(progress));
  return engine.stats();
}

StatusOr<GenerationEngine::Stats> GenerateToNull(
    const GenerationSession& session, const RowFormatter& formatter,
    GenerationOptions options, ProgressTracker* progress) {
  SinkFactory factory =
      [](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
    return std::unique_ptr<Sink>(new NullSink());
  };
  GenerationEngine engine(&session, &formatter, factory, options);
  PDGF_RETURN_IF_ERROR(engine.Run(progress));
  return engine.stats();
}

}  // namespace pdgf
