#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "core/batch.h"
#include "core/cursor.h"
#include "core/output/writer.h"
#include "util/files.h"
#include "util/stopwatch.h"

namespace pdgf {
namespace {

// One of every 2^4 processed rows pays the extra clock reads that split
// the generate block into row-generation / formatting / digesting
// (legacy scalar pipeline only; the batch pipeline times each batch
// exactly — a handful of clock reads per ~1024 rows is cheaper than the
// sampled per-row reads).
constexpr uint64_t kPhaseSampleMask = 15;

}  // namespace

GenerationEngine::GenerationEngine(const GenerationSession* session,
                                   const RowFormatter* formatter,
                                   SinkFactory sink_factory,
                                   GenerationOptions options)
    : session_(session),
      formatter_(formatter),
      sink_factory_(std::move(sink_factory)),
      options_(options) {}

Status GenerationEngine::Run(ProgressTracker* progress) {
  const SchemaDef& schema = session_->schema();
  if (options_.worker_count < 1) {
    return InvalidArgumentError(
        "worker_count must be >= 1, got " +
        std::to_string(options_.worker_count));
  }
  if (options_.writer_threads < 0) {
    return InvalidArgumentError(
        "writer_threads must be >= 0 (0 writes inline), got " +
        std::to_string(options_.writer_threads));
  }
  if (options_.work_package_rows < 1) options_.work_package_rows = 1;

  // NUMA placement. Every decision below is an optimization only —
  // which node generates a package, which free list a buffer sits on and
  // where a thread runs never change the bytes produced. A single-node
  // topology (or numa=off) degenerates to the historical behaviour.
  const Topology& topology =
      options_.topology != nullptr ? *options_.topology : Topology::System();
  const bool placement_on =
      options_.numa != NumaMode::kOff && topology.node_count() > 1;
  // Worker -> home node map. kOn places contiguous proportional blocks
  // (workers sharing a node share their stripe's cache traffic only);
  // kInterleave round-robins workers across nodes so every table's
  // packages spread over all memory controllers.
  std::vector<int> worker_nodes(static_cast<size_t>(options_.worker_count),
                                0);
  if (placement_on) {
    for (int w = 0; w < options_.worker_count; ++w) {
      worker_nodes[static_cast<size_t>(w)] =
          options_.numa == NumaMode::kInterleave
              ? w % topology.node_count()
              : topology.NodeForWorker(w, options_.worker_count);
    }
  }

  // Sorted-mode reorder bound: enough headroom that workers rarely
  // block, small enough that a stalled package cannot buffer the rest of
  // the table in memory. Inline mode parks up to this many packages per
  // table; async mode uses it as the writer stage's reorder window.
  const uint64_t reorder_capacity =
      options_.reorder_buffer_packages > 0
          ? options_.reorder_buffer_packages
          : std::max<uint64_t>(
                8, 2 * static_cast<uint64_t>(options_.worker_count));

  // Stage layout: with writer_threads > 0 the run is a staged pipeline
  // (workers generate + format, writer threads order + write) and
  // TableOutput is a plain serialized write wrapper — ordering lives in
  // the WriterStage. writer_threads == 0 is the legacy inline path.
  const bool async_writer =
      options_.writer_threads > 0 && !schema.tables.empty();

  // Open sinks and emit headers. Any failure past the first open must
  // close the sinks already opened — sinks are never leaked, even on the
  // error path.
  std::vector<std::unique_ptr<TableOutput>> outputs;
  outputs.reserve(schema.tables.size());
  auto abort_close_all = [&outputs]() {
    for (std::unique_ptr<TableOutput>& output : outputs) {
      (void)output->Close(/*aborted=*/true);
    }
  };
  for (const TableDef& table : schema.tables) {
    auto sink = sink_factory_(table);
    if (!sink.ok()) {
      abort_close_all();
      return sink.status();
    }
    auto output = std::make_unique<TableOutput>(
        std::move(*sink), options_.sorted_output && !async_writer,
        reorder_capacity);
    std::string header;
    formatter_->AppendHeader(table, &header);
    if (!header.empty()) {
      Status written = output->WriteDirect(header);
      if (!written.ok()) {
        (void)output->Close(/*aborted=*/true);
        abort_close_all();
        return written;
      }
    }
    outputs.push_back(std::move(output));
  }

  // Meta-scheduler: node-local ranges; scheduler: packages.
  std::vector<uint64_t> table_rows(schema.tables.size(), 0);
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    table_rows[t] = session_->TableRows(static_cast<int>(t));
  }
  const std::vector<WorkPackage> packages =
      BuildWorkPackages(table_rows, options_.work_package_rows,
                        options_.node_count, options_.node_id);
  std::unique_ptr<Scheduler> scheduler =
      MakeScheduler(options_.scheduler, packages.size(),
                    options_.worker_count, worker_nodes);

  Stopwatch stopwatch;
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  Status first_error;
  std::atomic<uint64_t> total_rows{0};
  // Digest join point: workers fold rows into private partials and merge
  // them here (under the mutex) exactly once, when they run out of work.
  const bool digests = options_.compute_digests;
  std::mutex digest_mutex;
  std::vector<TableDigest> merged_digests(digests ? schema.tables.size()
                                                  : 0);
  // Metrics join point, same discipline: thread-private WorkerMetrics on
  // each worker's stack, merged exactly once at join. A disabled run
  // allocates nothing and never reads the clock in the hot path.
  const bool metrics_on = options_.metrics_enabled;
  const size_t trace_capacity =
      metrics_on && options_.trace_events
          ? static_cast<size_t>(options_.trace_capacity_per_worker)
          : 0;
  const int64_t metrics_epoch = metrics_on ? MetricsNowNanos() : 0;
  std::mutex metrics_mutex;
  MetricsReport metrics_report;

  // Async-writer plumbing (created below, before workers start; the
  // failure recorder needs the pointers in scope).
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<WriterStage> writer;

  // First failure wins: record the error once, then wake every thread
  // blocked on backpressure — reorder space (inline), the reorder
  // window or the buffer pool (async) — so the run winds down instead
  // of deadlocking; later deliveries are shed.
  auto record_failure = [&](const Status& status) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.ok()) first_error = status;
    }
    failed.store(true, std::memory_order_relaxed);
    for (std::unique_ptr<TableOutput>& output : outputs) {
      output->Abort();
    }
    if (writer != nullptr) writer->Abort();
    if (pool != nullptr) pool->Abort();
  };

  if (async_writer) {
    // Deadlock-safe pool floor: one buffer per parked slot the writer
    // stage can hold (window - 1 per table in sorted mode), one per
    // worker in flight, plus one circulating so the package that can
    // advance a write gap always finds a buffer. --io-buffers may only
    // raise the capacity above this floor.
    const uint64_t window = reorder_capacity < 1 ? 1 : reorder_capacity;
    size_t floor = static_cast<size_t>(options_.worker_count) + 1;
    if (options_.sorted_output) {
      floor += schema.tables.size() * static_cast<size_t>(window - 1);
    }
    const size_t capacity =
        std::max<size_t>(static_cast<size_t>(options_.io_buffers), floor);
    pool = std::make_unique<BufferPool>(
        capacity, placement_on ? topology.node_count() : 1);
    std::vector<TableOutput*> raw_outputs;
    raw_outputs.reserve(outputs.size());
    for (std::unique_ptr<TableOutput>& output : outputs) {
      raw_outputs.push_back(output.get());
    }
    WriterStageOptions writer_options;
    writer_options.threads = options_.writer_threads;
    writer_options.sorted = options_.sorted_output;
    writer_options.reorder_window = window;
    writer_options.metrics = metrics_on;
    if (placement_on && options_.scheduler == SchedulerKind::kNuma &&
        !packages.empty()) {
      // Route each writer thread to the node that generates the bulk of
      // the packages of the tables it serves, using the same stripe
      // split the kNuma scheduler dispatches with (packages are
      // table-major, so package index i in [bounds[n], bounds[n+1])
      // belongs to node n's stripe).
      const size_t thread_count = std::min<size_t>(
          static_cast<size_t>(options_.writer_threads), outputs.size());
      std::vector<int> per_node(
          static_cast<size_t>(topology.node_count()), 0);
      for (int node : worker_nodes) {
        if (node >= 0 && node < topology.node_count()) {
          ++per_node[static_cast<size_t>(node)];
        }
      }
      const std::vector<uint64_t> bounds =
          PartitionPackagesByNode(packages.size(), per_node);
      std::vector<std::vector<uint64_t>> counts(
          thread_count, std::vector<uint64_t>(
                            static_cast<size_t>(topology.node_count()), 0));
      for (int n = 0; n < topology.node_count(); ++n) {
        for (uint64_t i = bounds[static_cast<size_t>(n)];
             i < bounds[static_cast<size_t>(n) + 1]; ++i) {
          const size_t thread =
              static_cast<size_t>(packages[i].table_index) % thread_count;
          ++counts[thread][static_cast<size_t>(n)];
        }
      }
      writer_options.thread_nodes.assign(thread_count, 0);
      for (size_t th = 0; th < thread_count; ++th) {
        int best = 0;
        for (int n = 1; n < topology.node_count(); ++n) {
          if (counts[th][static_cast<size_t>(n)] >
              counts[th][static_cast<size_t>(best)]) {
            best = n;
          }
        }
        writer_options.thread_nodes[th] = best;
      }
      writer_options.topology = &topology;
    }
    writer = std::make_unique<WriterStage>(std::move(raw_outputs),
                                           pool.get(), writer_options,
                                           record_failure);
    writer->Start();
  }

  const bool use_batch = !options_.scalar_pipeline;
  const uint64_t batch_rows =
      options_.batch_rows < 1 ? 1 : options_.batch_rows;

  auto worker_main = [&](int worker_id) {
    const int home_node =
        worker_id >= 0 &&
                worker_id < static_cast<int>(worker_nodes.size())
            ? worker_nodes[static_cast<size_t>(worker_id)]
            : 0;
    std::vector<Value> row;
    std::string inline_buffer;
    std::string pooled_buffer;
    // Batch-pipeline working set, reused across packages: one cursor
    // (which recycles its row-index gather list and column-major batch,
    // Value string capacity included) and the formatter's per-row byte
    // offsets.
    RowRangeCursor cursor;
    std::vector<size_t> row_offsets;
    std::vector<TableDigest> local_digests(digests ? schema.tables.size()
                                                   : 0);
    WorkerMetrics local_metrics(metrics_on ? schema.tables.size() : 0,
                                trace_capacity);
    const int64_t worker_start = metrics_on ? MetricsNowNanos() : 0;
    uint64_t sample_counter = 0;
    while (true) {
      if (failed.load(std::memory_order_relaxed)) break;
      size_t index = 0;
      if (!scheduler->Next(worker_id, &index)) break;
      const WorkPackage& package = packages[index];
      const size_t table_index = static_cast<size_t>(package.table_index);
      const TableDef& table = schema.tables[table_index];
      // Async: wait for the reorder window *before* taking a buffer (a
      // blocked worker must never sit on pool capacity), then acquire
      // the package's output buffer from the pool. Both waits are
      // backpressure and are charged to sink_wait.
      int64_t backpressure_nanos = 0;
      if (async_writer) {
        if (!writer->WaitForTurn(table_index, package.sequence,
                                 metrics_on ? &backpressure_nanos
                                            : nullptr)) {
          break;  // run aborted
        }
        const int64_t t0 = metrics_on ? MetricsNowNanos() : 0;
        // Node-routed acquire: the home free list first, then a fresh
        // allocation this thread first-touches on its own node.
        if (!pool->AcquireOnNode(home_node, &pooled_buffer)) {
          break;  // run aborted
        }
        if (metrics_on) backpressure_nanos += MetricsNowNanos() - t0;
      } else {
        inline_buffer.clear();
      }
      std::string& buffer = async_writer ? pooled_buffer : inline_buffer;
      uint64_t rows_in_package = 0;
      const int64_t package_start = metrics_on ? MetricsNowNanos() : 0;
      // Phase split. Batch pipeline: each batch's generate / format /
      // digest blocks are timed exactly (a few clock reads per ~1024
      // rows). Scalar pipeline: every 16th row samples its own phase
      // durations and the package's exact block time is apportioned by
      // the sampled split at package end.
      int64_t sampled_generate = 0;
      int64_t sampled_format = 0;
      int64_t sampled_digest = 0;
      if (use_batch) {
        // The engine is just one cursor consumer: the package's row range
        // is pulled through a reused RowRangeCursor (row-index gathering,
        // update filtering and batch generation live in the cursor now).
        cursor.Reset(session_, package.table_index, package.begin_row,
                     package.end_row, options_.update, batch_rows);
        while (true) {
          const int64_t t0 = metrics_on ? MetricsNowNanos() : 0;
          if (!cursor.Next()) break;
          const RowBatch& batch = cursor.batch();
          const int64_t t1 = metrics_on ? MetricsNowNanos() : 0;
          formatter_->AppendBatch(table, batch, &buffer,
                                  digests ? &row_offsets : nullptr);
          const int64_t t2 = metrics_on ? MetricsNowNanos() : 0;
          if (digests) {
            FoldBatchIntoDigest(batch, buffer, row_offsets,
                                &local_digests[table_index]);
          }
          if (metrics_on) {
            const int64_t t3 = digests ? MetricsNowNanos() : t2;
            sampled_generate += t1 - t0;
            sampled_format += t2 - t1;
            sampled_digest += t3 - t2;
          }
          rows_in_package += batch.row_count();
        }
      } else {
        for (uint64_t r = package.begin_row; r < package.end_row; ++r) {
          if (options_.update > 0 &&
              !session_->RowChangesInUpdate(package.table_index, r,
                                            options_.update)) {
            continue;
          }
          const bool sampled =
              metrics_on && ((sample_counter++ & kPhaseSampleMask) == 0);
          const int64_t t0 = sampled ? MetricsNowNanos() : 0;
          session_->GenerateRow(package.table_index, r, options_.update,
                                &row);
          const int64_t t1 = sampled ? MetricsNowNanos() : 0;
          size_t row_start = buffer.size();
          formatter_->AppendRow(table, row, &buffer);
          const int64_t t2 = sampled ? MetricsNowNanos() : 0;
          if (digests) {
            local_digests[table_index].AddRow(
                r, std::string_view(buffer).substr(row_start), row);
          }
          if (sampled) {
            const int64_t t3 = digests ? MetricsNowNanos() : t2;
            sampled_generate += t1 - t0;
            sampled_format += t2 - t1;
            sampled_digest += t3 - t2;
          }
          ++rows_in_package;
        }
      }
      DeliverMetrics deliver_metrics;
      deliver_metrics.wait_nanos = backpressure_nanos;
      int64_t generate_nanos = 0;
      if (metrics_on) generate_nanos = MetricsNowNanos() - package_start;
      const size_t buffer_bytes = buffer.size();
      if (async_writer) {
        // Hand-off is a queue push — the buffer (and its heap block)
        // travels to the writer thread and comes back via the pool,
        // landing on its home node's free list.
        writer->Submit(table_index, package.sequence,
                       std::move(pooled_buffer), home_node);
      } else {
        Status status = outputs[table_index]->Deliver(
            package.sequence, buffer,
            metrics_on ? &deliver_metrics : nullptr);
        if (!status.ok()) {
          record_failure(status);
          break;
        }
      }
      total_rows.fetch_add(rows_in_package, std::memory_order_relaxed);
      if (progress != nullptr) {
        progress->Add(table_index, rows_in_package, buffer_bytes);
      }
      if (metrics_on) {
        if (use_batch) {
          // Batch phases are measured exactly; the cursor pull (row-index
          // gathering, update filtering, generation) is timed as row
          // generation and the package block's residual (loop
          // bookkeeping) is charged there too.
          int64_t residual = generate_nanos - sampled_generate -
                             sampled_format - sampled_digest;
          if (residual < 0) residual = 0;
          local_metrics.AddPhase(Phase::kRowGeneration,
                                 sampled_generate + residual);
          local_metrics.AddPhase(Phase::kFormatting, sampled_format);
          local_metrics.AddPhase(Phase::kDigesting, sampled_digest);
        } else {
          // Apportion the exact block time among the three row phases by
          // the sampled split (all to row generation when nothing was
          // sampled, e.g. an empty package).
          const int64_t sampled_total =
              sampled_generate + sampled_format + sampled_digest;
          if (sampled_total > 0) {
            const double scale = static_cast<double>(generate_nanos) /
                                 static_cast<double>(sampled_total);
            local_metrics.AddPhase(
                Phase::kRowGeneration,
                static_cast<int64_t>(
                    scale * static_cast<double>(sampled_generate)));
            local_metrics.AddPhase(
                Phase::kFormatting,
                static_cast<int64_t>(scale *
                                     static_cast<double>(sampled_format)));
            local_metrics.AddPhase(
                Phase::kDigesting,
                static_cast<int64_t>(scale *
                                     static_cast<double>(sampled_digest)));
          } else {
            local_metrics.AddPhase(Phase::kRowGeneration, generate_nanos);
          }
        }
        local_metrics.AddPhase(Phase::kSinkWait,
                               deliver_metrics.wait_nanos);
        local_metrics.AddPhase(Phase::kSinkWrite,
                               deliver_metrics.write_nanos);
        local_metrics.AddTablePackage(table_index, rows_in_package,
                                      buffer_bytes);
        if (trace_capacity > 0) {
          local_metrics.AddTrace("package", package.table_index,
                                 package.sequence,
                                 package_start - metrics_epoch,
                                 MetricsNowNanos() - package_start);
        }
      }
    }
    if (digests) {
      std::lock_guard<std::mutex> lock(digest_mutex);
      for (size_t t = 0; t < local_digests.size(); ++t) {
        merged_digests[t].Merge(local_digests[t]);
      }
    }
    if (metrics_on) {
      local_metrics.set_node(home_node);
      local_metrics.set_active_nanos(MetricsNowNanos() - worker_start);
      std::lock_guard<std::mutex> lock(metrics_mutex);
      metrics_report.MergeWorker(local_metrics);
    }
  };

  if (options_.worker_count == 1) {
    // Runs inline on the caller's thread — never pinned, so the engine
    // cannot leak an affinity mask back to the caller.
    worker_main(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(options_.worker_count));
    for (int w = 0; w < options_.worker_count; ++w) {
      workers.emplace_back([&worker_main, &topology, &worker_nodes,
                            placement_on, w]() {
        if (placement_on) {
          (void)topology.BindCurrentThread(
              worker_nodes[static_cast<size_t>(w)]);
        }
        worker_main(w);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  // Drain the writer stage (it sheds on the failed path). A writer-side
  // ordering hole on a clean run is an error like any other.
  if (writer != nullptr) {
    Status writer_status = writer->Finish();
    if (!writer_status.ok() && !failed.load()) {
      record_failure(writer_status);
    }
  }
  if (failed.load()) {
    // Best-effort close: no sink handle outlives the run, and closing an
    // aborted sorted table (which legitimately has parked packages)
    // cannot mask the original error.
    abort_close_all();
    return first_error;
  }

  // Footers and close. On an error here the remaining outputs are still
  // closed (best effort) before the first error is returned.
  uint64_t bytes = 0;
  Status close_error;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    std::string footer;
    formatter_->AppendFooter(schema.tables[t], &footer);
    if (close_error.ok() && !footer.empty()) {
      Status written = outputs[t]->WriteDirect(footer);
      if (!written.ok()) close_error = written;
    }
    Status closed = outputs[t]->Close(/*aborted=*/!close_error.ok());
    if (close_error.ok() && !closed.ok()) close_error = closed;
    bytes += outputs[t]->bytes_written();
  }
  if (!close_error.ok()) {
    abort_close_all();  // idempotent; covers outputs after the failure
    return close_error;
  }

  stats_.rows = total_rows.load();
  stats_.bytes = bytes;
  stats_.seconds = stopwatch.ElapsedSeconds();
  stats_.packages = packages.size();
  if (digests) {
    stats_.table_digests = std::move(merged_digests);
    if (progress != nullptr) {
      for (size_t t = 0; t < stats_.table_digests.size(); ++t) {
        progress->RecordDigest(t, stats_.table_digests[t].Hex());
      }
    }
  }
  stats_.megabytes_per_second =
      stats_.seconds > 0
          ? static_cast<double>(bytes) / (1024.0 * 1024.0) / stats_.seconds
          : 0;
  if (metrics_on) {
    metrics_report.enabled = true;
    metrics_report.simd_dispatch = simd::SimdDispatchName();
    metrics_report.numa_mode = NumaModeName(options_.numa);
    metrics_report.topology = topology.Describe();
    metrics_report.wall_seconds = stats_.seconds;
    metrics_report.rows = stats_.rows;
    metrics_report.bytes = stats_.bytes;
    metrics_report.packages = stats_.packages;
    metrics_report.tables.resize(schema.tables.size());
    for (size_t t = 0; t < schema.tables.size(); ++t) {
      MetricsReport::TableReport& table_report = metrics_report.tables[t];
      table_report.name = schema.tables[t].name;
      // Authoritative byte count comes from the sink (includes headers
      // and footers); worker-accumulated bytes remain in the per-worker
      // reports as formatted row payload.
      table_report.bytes = outputs[t]->bytes_written();
      if (options_.sorted_output) {
        table_report.reorder_buffer_high_water =
            async_writer ? writer->table_parked_high_water(t)
                         : outputs[t]->reorder_high_water();
        table_report.reorder_buffer_capacity = reorder_capacity;
      }
    }
    if (writer != nullptr) {
      const std::vector<WriterStage::ThreadReport>& reports =
          writer->thread_reports();
      for (size_t i = 0; i < reports.size(); ++i) {
        MetricsReport::WriterThreadReport writer_report;
        writer_report.writer = static_cast<int>(i);
        writer_report.write_seconds = reports[i].write_seconds;
        writer_report.idle_seconds = reports[i].idle_seconds;
        writer_report.packages = reports[i].packages;
        writer_report.bytes = reports[i].bytes;
        writer_report.queue_high_water = reports[i].queue_high_water;
        metrics_report.writer_threads.push_back(writer_report);
        // Writer busy time joins the phase totals; idle time is not
        // busy time and stays per-thread only.
        metrics_report
            .phase_seconds[static_cast<int>(Phase::kWriterWrite)] +=
            reports[i].write_seconds;
      }
      metrics_report.buffer_pool.capacity = pool->capacity();
      metrics_report.buffer_pool.allocations = pool->allocations();
      metrics_report.buffer_pool.peak_in_flight = pool->peak_in_flight();
      metrics_report.buffer_pool.node_domains =
          static_cast<uint64_t>(pool->node_count());
      metrics_report.buffer_pool.cross_node_acquires =
          pool->cross_node_acquires();
    }
    // Steal counters come from the dispatch layer (kNuma only); the
    // rows/bytes/packages per node were rolled up at worker join.
    for (const SchedulerNodeReport& node_report :
         scheduler->node_reports()) {
      const size_t n = static_cast<size_t>(node_report.node);
      if (metrics_report.nodes.size() <= n) {
        metrics_report.nodes.resize(n + 1);
        for (size_t i = 0; i < metrics_report.nodes.size(); ++i) {
          metrics_report.nodes[i].node = static_cast<int>(i);
        }
      }
      metrics_report.nodes[n].steals = node_report.steals;
    }
    metrics_report.Finalize();
    stats_.metrics = std::move(metrics_report);
  }
  return Status::Ok();
}

StatusOr<std::string> GenerateTableToString(const GenerationSession& session,
                                            int table_index,
                                            const RowFormatter& formatter,
                                            uint64_t update) {
  const TableDef& table =
      session.schema().tables[static_cast<size_t>(table_index)];
  std::string out;
  formatter.AppendHeader(table, &out);
  // Single-threaded cursor pull over the whole table — bit-identical to
  // the engine's worker loop over the same rows.
  RowRangeCursor cursor(&session, table_index, 0,
                        session.TableRows(table_index), update);
  while (cursor.Next()) {
    formatter.AppendBatch(table, cursor.batch(), &out);
  }
  formatter.AppendFooter(table, &out);
  return out;
}

StatusOr<GenerationEngine::Stats> GenerateToDirectory(
    const GenerationSession& session, const RowFormatter& formatter,
    const std::string& directory, GenerationOptions options,
    ProgressTracker* progress) {
  PDGF_RETURN_IF_ERROR(MakeDirectories(directory));
  std::string extension = formatter.FileExtension();
  // Under the meta-scheduler every node writes its own chunk file
  // ("<table>.<ext>.<node>"), so all nodes may target one directory;
  // single-node runs produce plain "<table>.<ext>".
  std::string node_suffix;
  if (options.node_count > 1) {
    node_suffix = "." + std::to_string(options.node_id + 1);
  }
  SinkFactory factory =
      [&directory, &extension,
       &node_suffix](const TableDef& table) -> StatusOr<std::unique_ptr<Sink>> {
    PDGF_ASSIGN_OR_RETURN(
        std::unique_ptr<FileSink> sink,
        FileSink::Open(JoinPath(
            directory, table.name + "." + extension + node_suffix)));
    return std::unique_ptr<Sink>(std::move(sink));
  };
  GenerationEngine engine(&session, &formatter, factory, options);
  PDGF_RETURN_IF_ERROR(engine.Run(progress));
  return engine.stats();
}

StatusOr<GenerationEngine::Stats> GenerateToNull(
    const GenerationSession& session, const RowFormatter& formatter,
    GenerationOptions options, ProgressTracker* progress) {
  SinkFactory factory =
      [](const TableDef&) -> StatusOr<std::unique_ptr<Sink>> {
    return std::unique_ptr<Sink>(new NullSink());
  };
  GenerationEngine engine(&session, &formatter, factory, options);
  PDGF_RETURN_IF_ERROR(engine.Run(progress));
  return engine.stats();
}

}  // namespace pdgf
