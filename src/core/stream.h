#ifndef DBSYNTHPP_CORE_STREAM_H_
#define DBSYNTHPP_CORE_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cursor.h"
#include "core/output/formatter.h"
#include "core/session.h"

namespace pdgf {

// CDC-style update stream generation on top of the update black box
// (paper §2.2): turns a table's abstract time units into an ordered,
// replayable sequence of insert/update events. Because every event is a
// pure function of (table, row, update) — the same purity that makes
// arbitrary-range generation possible — the stream is replayable by
// construction: the same session and options always produce the same
// byte sequence, so a consumer can restart from scratch and re-verify.
//
// Events are emitted as one JSON object per '\n'-terminated line:
//
//   {"event":0,"op":"insert","table":"orders","update":0,"row":7,
//    "data":"8|35|O|154828.91|..."}
//   {"event":1,"op":"update","table":"orders","update":1,"row":3,...}
//
// `event` is the 0-based sequence number, `data` the row rendered by the
// formatter (terminator stripped, JSON-escaped). With `snapshot` set the
// stream opens with every base row as an "insert" event (update 0), then
// plays units first_update..last_update in order; within a unit, events
// are ordered by row — the deterministic order the cursor yields.
struct UpdateStreamOptions {
  bool snapshot = false;      // open with base rows as insert events
  uint64_t first_update = 1;  // first time unit to play
  // Last unit to play, inclusive; 0 = through the table's final unit
  // (TableUpdates - 1; a static table then plays no update events).
  uint64_t last_update = 0;
  uint64_t batch_rows = RowRangeCursor::kDefaultBatchRows;
};

class UpdateStreamGenerator {
 public:
  // `session` and `formatter` must outlive the generator.
  UpdateStreamGenerator(const GenerationSession* session, int table_index,
                        const RowFormatter* formatter,
                        UpdateStreamOptions options = {});

  // Appends up to `max_events` event lines to *out (not cleared) and
  // returns the number appended; 0 = the stream is exhausted.
  size_t NextEvents(std::string* out, size_t max_events);

  bool done() const { return done_; }
  // Events emitted so far == the next event's sequence number.
  uint64_t events_emitted() const { return event_index_; }
  // Total events this stream will emit (counts the update black box
  // per unit up front only when asked; O(rows * units)).
  uint64_t CountTotalEvents() const;

 private:
  // Renders the cursor's next non-empty batch; advances through the
  // snapshot phase and the update units. False = stream exhausted.
  bool NextBatch();
  void ResetCursorForPhase();

  const GenerationSession* session_;
  int table_index_;
  const RowFormatter* formatter_;
  UpdateStreamOptions options_;
  const TableDef* table_;
  uint64_t last_update_;   // resolved inclusive bound
  uint64_t current_update_ = 0;
  bool snapshot_phase_ = false;
  bool done_ = false;
  uint64_t event_index_ = 0;

  RowRangeCursor cursor_;
  std::string render_buffer_;
  std::vector<size_t> row_offsets_;
  size_t batch_pos_ = 0;
  bool batch_valid_ = false;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_STREAM_H_
