#ifndef DBSYNTHPP_CORE_SIMCLUSTER_H_
#define DBSYNTHPP_CORE_SIMCLUSTER_H_

#include <vector>

namespace pdgf {

// Timing model for parallel hardware this container does not have
// (DESIGN.md substitution S20). PDGF's generation is embarrassingly
// parallel and share-nothing — node/worker partitions exchange no data —
// so the wall clock of a real parallel run is determined by per-partition
// busy times, which we *measure* sequentially, and by how many partitions
// the hardware can run concurrently, which we *model* here.
struct SimulatedMachine {
  // Physical cores per node (the paper's single node: 2 sockets x 8).
  int physical_cores = 16;
  // Hardware threads per node (SMT doubles the cores).
  int hardware_threads = 32;
  // Marginal throughput of an SMT sibling relative to a full core. The
  // paper observes throughput "further increases with the number of
  // hardware threads (32), but not as significantly as for the cores".
  double smt_efficiency = 0.35;
  // Relative capacity lost when the worker count exactly matches the
  // core or hardware-thread count: PDGF's internal scheduling and I/O
  // threads then compete with workers ("scheduling exactly the same
  // number of workers as the number of system cores or threads is not
  // optimal", paper §4).
  double scheduler_interference = 0.06;
};

// Effective parallel capacity (in units of one core's throughput) of
// `workers` worker threads on `machine`.
double EffectiveCapacity(const SimulatedMachine& machine, int workers);

// Estimates the parallel wall clock of running `lane_seconds` (measured
// sequential busy time per worker partition) with `workers` threads on
// `machine`: work conservation bounded below by the longest single lane.
double EstimateParallelWallClock(const std::vector<double>& lane_seconds,
                                 const SimulatedMachine& machine,
                                 int workers);

// Estimates the wall clock of a shared-nothing multi-node run from the
// measured per-node busy times: the slowest node finishes last.
double EstimateClusterWallClock(const std::vector<double>& node_seconds);

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_SIMCLUSTER_H_
