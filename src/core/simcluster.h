#ifndef DBSYNTHPP_CORE_SIMCLUSTER_H_
#define DBSYNTHPP_CORE_SIMCLUSTER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "util/hash.h"

namespace pdgf {

// Timing model for parallel hardware this container does not have
// (DESIGN.md substitution S20). PDGF's generation is embarrassingly
// parallel and share-nothing — node/worker partitions exchange no data —
// so the wall clock of a real parallel run is determined by per-partition
// busy times, which we *measure* sequentially, and by how many partitions
// the hardware can run concurrently, which we *model* here.
struct SimulatedMachine {
  // Physical cores per node (the paper's single node: 2 sockets x 8).
  int physical_cores = 16;
  // Hardware threads per node (SMT doubles the cores).
  int hardware_threads = 32;
  // Marginal throughput of an SMT sibling relative to a full core. The
  // paper observes throughput "further increases with the number of
  // hardware threads (32), but not as significantly as for the cores".
  double smt_efficiency = 0.35;
  // Relative capacity lost when the worker count exactly matches the
  // core or hardware-thread count: PDGF's internal scheduling and I/O
  // threads then compete with workers ("scheduling exactly the same
  // number of workers as the number of system cores or threads is not
  // optimal", paper §4).
  double scheduler_interference = 0.06;
};

// Effective parallel capacity (in units of one core's throughput) of
// `workers` worker threads on `machine`.
double EffectiveCapacity(const SimulatedMachine& machine, int workers);

// Estimates the parallel wall clock of running `lane_seconds` (measured
// sequential busy time per worker partition) with `workers` threads on
// `machine`: work conservation bounded below by the longest single lane.
double EstimateParallelWallClock(const std::vector<double>& lane_seconds,
                                 const SimulatedMachine& machine,
                                 int workers);

// Estimates the wall clock of a shared-nothing multi-node run from the
// measured per-node busy times: the slowest node finishes last.
double EstimateClusterWallClock(const std::vector<double>& node_seconds);

// Result of a simulated share-nothing cluster run: every node's engine
// output folded together. Because the table digests are mergeable and
// order-insensitive, `table_digests` must equal a single-node run's
// digests — the invariant `pdgf verify` and the simcluster tests check.
struct ClusterRunResult {
  // Per schema table, merged across all nodes.
  std::vector<TableDigest> table_digests;
  // Measured sequential busy seconds per node, for the timing model
  // (EstimateClusterWallClock).
  std::vector<double> node_seconds;
  uint64_t rows = 0;
  uint64_t bytes = 0;
};

// Runs `session` as `node_count` simulated share-nothing nodes executed
// sequentially on this machine: node i generates its NodeShare of every
// table with an independent engine (worker threads / package size /
// sorted mode from `options`; node_count and node_id are overridden).
// Digest computation is forced on and the per-node partial digests are
// merged. `sink_factory` (called once per node per table) may be empty,
// in which case each node's bytes are discarded through NullSinks.
StatusOr<ClusterRunResult> RunSimulatedCluster(
    const GenerationSession& session, const RowFormatter& formatter,
    GenerationOptions options, int node_count,
    SinkFactory sink_factory = nullptr);

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_SIMCLUSTER_H_
