#ifndef DBSYNTHPP_CORE_SESSION_H_
#define DBSYNTHPP_CORE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "core/generator.h"
#include "core/schema.h"

namespace pdgf {

class RowBatch;

// A SchemaDef resolved for generation: property expressions evaluated
// (with optional command-line-style overrides), table sizes and update
// counts computed, and the seeding hierarchy's table/column seeds cached
// (paper §2: "most of the seeds can be cached and the cost for
// generating single values is very low").
//
// A session is immutable and thread-safe; all workers share one.
class GenerationSession {
 public:
  // `overrides` replaces property expressions by name before evaluation
  // (e.g. {"SF", "10"}), mirroring PDGF's command-line interface.
  static StatusOr<std::unique_ptr<GenerationSession>> Create(
      const SchemaDef* schema,
      const std::map<std::string, std::string>& overrides = {});

  const SchemaDef& schema() const { return *schema_; }

  // Resolved numeric property value.
  StatusOr<double> Property(std::string_view name) const;

  // Row count of table `table_index` after size-expression evaluation.
  uint64_t TableRows(int table_index) const {
    return table_rows_[static_cast<size_t>(table_index)];
  }
  // Number of abstract time units for the table (>= 1).
  uint64_t TableUpdates(int table_index) const {
    return table_updates_[static_cast<size_t>(table_index)];
  }

  // The per-field seed: the leaf of the Figure-1 hierarchy
  // (project -> table -> column -> update -> row).
  uint64_t FieldSeed(int table_index, int field_index, uint64_t row,
                     uint64_t update) const;

  // Seed hoisting (batch pipeline). The per-field seed factors as
  //
  //   FieldSeed(t, f, row, u) == SeedForRow(HoistedFieldBase(t, f, u), row)
  //
  // because FieldSeed first derives the update-level seed from the cached
  // column seed and only then folds in the row. HoistedFieldBase IS that
  // update-level seed; across a batch generated at one update it is
  // loop-invariant, so each cell pays a single DeriveSeed instead of the
  // two-step walk. Identity is exact — the batch/scalar parity tests
  // assert it per generated value.
  uint64_t HoistedFieldBase(int table_index, int field_index,
                            uint64_t update) const {
    return DeriveSeed(column_seeds_[static_cast<size_t>(table_index)]
                                   [static_cast<size_t>(field_index)] ^
                          kUpdateLevel,
                      update);
  }
  static uint64_t SeedForRow(uint64_t hoisted_base, uint64_t row) {
    return DeriveSeed(RowSeedParent(hoisted_base), row);
  }

  // The parent seed P with FieldSeed == DeriveSeed(P, row) — the form the
  // vectorized seed kernel consumes (util/simd_rng.h): a uniform-update
  // batch derives all of its row seeds as DeriveSeedBatch(P, rows).
  static uint64_t RowSeedParent(uint64_t hoisted_base) {
    return hoisted_base ^ kRowLevel;
  }

  // The effective time unit of `row` at `update` under point-in-time
  // semantics: the last unit <= `update` whose update black box selected
  // the row (unit 0, the base load, always applies). Resolved once per
  // row and shared by every mutable field of that row.
  uint64_t EffectiveUpdate(int table_index, uint64_t row,
                           uint64_t update) const;

  // Generates one field value. `update` is clamped to 0 for fields not
  // marked mutable_across_updates.
  void GenerateField(int table_index, int field_index, uint64_t row,
                     uint64_t update, Value* out) const;

  // Generates a full row into `out` (resized to the field count).
  void GenerateRow(int table_index, uint64_t row, uint64_t update,
                   std::vector<Value>* out) const;

  // Batch generation (core/batch.h): generates the `row_count` global
  // rows listed in `rows` at time unit `update` into `out`, one column
  // at a time with hoisted seed derivation. Values, null masks and
  // update semantics are bit-identical to `row_count` GenerateRow calls.
  void GenerateBatch(int table_index, const uint64_t* rows,
                     size_t row_count, uint64_t update, RowBatch* out) const;

  // True if `row` of the table changes its mutable fields in time unit
  // `update` (> 0): PDGF's update black box selects a deterministic
  // pseudo-random subset of rows per time unit.
  bool RowChangesInUpdate(int table_index, uint64_t row,
                          uint64_t update) const;

  // Convenience: formats the first `limit` rows of a table for quick
  // inspection ("preview generation", paper §4: shows samples of the
  // generated data instantaneously).
  std::vector<std::vector<std::string>> Preview(int table_index,
                                                uint64_t limit) const;

  // Estimated bytes per row of a table when CSV-formatted; used for
  // throughput accounting and work-package sizing heuristics.
  double EstimateRowBytes(int table_index) const;

 private:
  GenerationSession() = default;

  // Level tags keep the hierarchy's seed derivations domain-separated.
  // kUpdateLevel/kRowLevel live here (not session.cc) so the inline
  // hoisting helpers above can use them.
  static constexpr uint64_t kUpdateLevel = 0x0bd8000000000003ULL;
  static constexpr uint64_t kRowLevel = 0x20e000000000004ULL;

  // Generates one field whose update has already been resolved to its
  // effective unit (0 for immutable fields).
  void GenerateFieldResolved(int table_index, int field_index, uint64_t row,
                             uint64_t resolved_update, Value* out) const;

  const SchemaDef* schema_ = nullptr;
  std::map<std::string, double, std::less<>> property_values_;
  std::vector<uint64_t> table_seeds_;
  std::vector<std::vector<uint64_t>> column_seeds_;
  std::vector<uint64_t> table_rows_;
  std::vector<uint64_t> table_updates_;
  std::vector<double> table_update_fractions_;
  // 1 if any field of the table is mutable_across_updates: lets the
  // per-row effective-update resolution be skipped entirely for the
  // (common) tables without mutable fields.
  std::vector<uint8_t> table_has_mutable_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_SESSION_H_
