#ifndef DBSYNTHPP_CORE_GENERATOR_H_
#define DBSYNTHPP_CORE_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/value.h"
#include "util/rng.h"

namespace pdgf {

class BatchContext;
class GenerationSession;
class ValueColumn;
class XmlElement;

// Per-field evaluation context handed to a Generator. Carries the PRNG
// stream for the current (table, column, update, row) coordinate — the
// leaf of the seeding hierarchy in Figure 1 — plus the hooks needed by
// meta and reference generators.
//
// Contexts are tiny and created on the stack per field; sub-generators
// get derived child contexts so sibling subtrees consume independent
// random streams regardless of how many draws each makes.
class GeneratorContext {
 public:
  GeneratorContext() = default;
  GeneratorContext(const GenerationSession* session, int table_index,
                   uint64_t row, uint64_t update, uint64_t field_seed)
      : rng_(field_seed),
        session_(session),
        table_index_(table_index),
        row_(row),
        update_(update),
        field_seed_(field_seed) {}

  Xorshift64& rng() { return rng_; }
  const GenerationSession* session() const { return session_; }
  int table_index() const { return table_index_; }
  uint64_t row() const { return row_; }
  uint64_t update() const { return update_; }
  uint64_t field_seed() const { return field_seed_; }

  // Context for sub-generator `child_index`: same coordinate, independent
  // stream derived from this field's seed.
  GeneratorContext Child(uint32_t child_index) const {
    return GeneratorContext(
        session_, table_index_, row_, update_,
        DeriveSeed(field_seed_, 0xc1d0000000000000ULL + child_index));
  }

 private:
  Xorshift64 rng_;
  const GenerationSession* session_ = nullptr;
  int table_index_ = -1;
  uint64_t row_ = 0;
  uint64_t update_ = 0;
  uint64_t field_seed_ = 0;
};

// A field value generator (paper §2): a pure function from a
// GeneratorContext to a Value. Implementations must be immutable after
// construction and thread-safe — the same Generator instance is invoked
// concurrently from every worker.
class Generator {
 public:
  virtual ~Generator() = default;

  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;

  // Produces the value for the context's coordinate into `*out`. `out`
  // may hold a previous row's value; implementations overwrite it.
  virtual void Generate(GeneratorContext* context, Value* out) const = 0;

  // Batch generation (core/batch.h): produces one value per batch row
  // into the column. The base implementation loops Generate() over
  // per-row scalar contexts; hot generators override it with tight
  // loops that hoist loop-invariant work and skip the per-cell virtual
  // dispatch. Overrides MUST be bit-identical to the scalar loop — the
  // batch/scalar parity suite and the golden digest fixtures enforce it.
  virtual void GenerateBatch(BatchContext* context, ValueColumn* out) const;

  // The XML tag this generator (de)serializes as, e.g. "gen_IdGenerator".
  virtual std::string ConfigName() const = 0;

  // Serializes parameters as a child element of `parent`.
  virtual void WriteConfig(XmlElement* parent) const = 0;

 protected:
  Generator() = default;
};

using GeneratorPtr = std::unique_ptr<Generator>;

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_GENERATOR_H_
