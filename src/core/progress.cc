#include "core/progress.h"

#include "util/strings.h"

namespace pdgf {

ProgressTracker::ProgressTracker(std::vector<std::string> table_names,
                                 std::vector<uint64_t> table_rows)
    : table_names_(std::move(table_names)),
      table_rows_(std::move(table_rows)),
      rows_done_(new std::atomic<uint64_t>[table_names_.size()]),
      bytes_(new std::atomic<uint64_t>[table_names_.size()]),
      packages_done_(new std::atomic<uint64_t>[table_names_.size()]),
      digests_(table_names_.size()) {
  for (size_t i = 0; i < table_names_.size(); ++i) {
    rows_done_[i].store(0, std::memory_order_relaxed);
    bytes_[i].store(0, std::memory_order_relaxed);
    packages_done_[i].store(0, std::memory_order_relaxed);
  }
}

void ProgressTracker::RecordDigest(size_t table_index,
                                   std::string digest_hex) {
  std::lock_guard<std::mutex> lock(digest_mutex_);
  if (table_index < digests_.size()) {
    digests_[table_index] = std::move(digest_hex);
  }
}

ProgressTracker::Snapshot ProgressTracker::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.elapsed_seconds = stopwatch_.ElapsedSeconds();
  for (size_t i = 0; i < table_names_.size(); ++i) {
    TableProgress table;
    table.table = table_names_[i];
    table.rows_done = rows_done_[i].load(std::memory_order_relaxed);
    table.rows_total = table_rows_[i];
    table.bytes = bytes_[i].load(std::memory_order_relaxed);
    table.packages_done = packages_done_[i].load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(digest_mutex_);
      table.digest = digests_[i];
    }
    table.fraction =
        table.rows_total == 0
            ? 1.0
            : static_cast<double>(table.rows_done) /
                  static_cast<double>(table.rows_total);
    snapshot.rows_done += table.rows_done;
    snapshot.rows_total += table.rows_total;
    snapshot.bytes += table.bytes;
    snapshot.tables.push_back(std::move(table));
  }
  snapshot.fraction = snapshot.rows_total == 0
                          ? 1.0
                          : static_cast<double>(snapshot.rows_done) /
                                static_cast<double>(snapshot.rows_total);
  if (snapshot.elapsed_seconds > 0) {
    snapshot.rows_per_second =
        static_cast<double>(snapshot.rows_done) / snapshot.elapsed_seconds;
    snapshot.megabytes_per_second = static_cast<double>(snapshot.bytes) /
                                    (1024.0 * 1024.0) /
                                    snapshot.elapsed_seconds;
  }
  return snapshot;
}

std::string ProgressTracker::Format(const Snapshot& snapshot) {
  std::string out = StrPrintf(
      "total: %5.1f%%  %llu/%llu rows  %.1f MB  %.0f rows/s  %.1f MB/s\n",
      snapshot.fraction * 100.0,
      static_cast<unsigned long long>(snapshot.rows_done),
      static_cast<unsigned long long>(snapshot.rows_total),
      static_cast<double>(snapshot.bytes) / (1024.0 * 1024.0),
      snapshot.rows_per_second, snapshot.megabytes_per_second);
  for (const TableProgress& table : snapshot.tables) {
    out += StrPrintf("  %-20s %5.1f%%  %llu/%llu rows  %llu pkgs",
                     table.table.c_str(), table.fraction * 100.0,
                     static_cast<unsigned long long>(table.rows_done),
                     static_cast<unsigned long long>(table.rows_total),
                     static_cast<unsigned long long>(table.packages_done));
    if (!table.digest.empty()) {
      out += "  digest=" + table.digest;
    }
    out += "\n";
  }
  return out;
}

}  // namespace pdgf
