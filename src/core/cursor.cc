#include "core/cursor.h"

namespace pdgf {

void RowRangeCursor::Reset(const GenerationSession* session, int table_index,
                           uint64_t first_row, uint64_t last_row,
                           uint64_t update, uint64_t batch_rows) {
  session_ = session;
  table_index_ = table_index;
  first_row_ = first_row;
  last_row_ = last_row < first_row ? first_row : last_row;
  update_ = update;
  batch_rows_ = batch_rows < 1 ? 1 : batch_rows;
  position_ = first_row_;
  rows_yielded_ = 0;
}

void RowRangeCursor::Seek(uint64_t row) {
  if (row < first_row_) row = first_row_;
  if (row > last_row_) row = last_row_;
  position_ = row;
  rows_yielded_ = 0;
}

bool RowRangeCursor::Next() {
  while (position_ < last_row_) {
    uint64_t stop = position_ + batch_rows_;
    if (stop > last_row_) stop = last_row_;
    row_indices_.clear();
    if (update_ > 0) {
      // Update mode: batch only the rows the update black box selected
      // for this time unit.
      for (uint64_t r = position_; r < stop; ++r) {
        if (session_->RowChangesInUpdate(table_index_, r, update_)) {
          row_indices_.push_back(r);
        }
      }
    } else {
      for (uint64_t r = position_; r < stop; ++r) row_indices_.push_back(r);
    }
    position_ = stop;
    if (row_indices_.empty()) continue;
    session_->GenerateBatch(table_index_, row_indices_.data(),
                            row_indices_.size(), update_, &batch_);
    rows_yielded_ += row_indices_.size();
    return true;
  }
  return false;
}

void FoldBatchIntoDigest(const RowBatch& batch, std::string_view buffer,
                         const std::vector<size_t>& row_offsets,
                         TableDigest* digest) {
  for (size_t i = 0; i < batch.row_count(); ++i) {
    digest->AddRowBytes(
        batch.row_index(i),
        buffer.substr(row_offsets[i], row_offsets[i + 1] - row_offsets[i]));
  }
  for (size_t c = 0; c < batch.column_count(); ++c) {
    const ValueColumn& column = batch.column(c);
    for (size_t i = 0; i < column.size(); ++i) {
      digest->AddColumnValue(c, column.get(i));
    }
  }
}

}  // namespace pdgf
