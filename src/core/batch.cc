#include "core/batch.h"

namespace pdgf {

// Default batch implementation: the scalar loop. Correct for every
// generator; hot generators override it with tight loops (see
// core/generators/*). Lives here rather than a generator.cc so the
// Generator interface header stays dependency-free of the batch types.
void Generator::GenerateBatch(BatchContext* context, ValueColumn* out) const {
  const size_t n = context->size();
  for (size_t i = 0; i < n; ++i) {
    GeneratorContext scalar = context->Scalar(i);
    Generate(&scalar, out->value(i));
  }
}

}  // namespace pdgf
