#include "core/text/builtin_dictionaries.h"

#include <algorithm>
#include <map>

namespace pdgf {
namespace {

Dictionary MakeDictionary(const char* const* values, size_t count) {
  Dictionary dictionary;
  for (size_t i = 0; i < count; ++i) {
    dictionary.Add(values[i]);
  }
  dictionary.Finalize();
  return dictionary;
}

const char* const kFirstNames[] = {
    "James",   "Mary",     "Robert",  "Patricia", "John",    "Jennifer",
    "Michael", "Linda",    "David",   "Elizabeth", "William", "Barbara",
    "Richard", "Susan",    "Joseph",  "Jessica",  "Thomas",  "Sarah",
    "Charles", "Karen",    "Chris",   "Lisa",     "Daniel",  "Nancy",
    "Matthew", "Betty",    "Anthony", "Margaret", "Mark",    "Sandra",
    "Donald",  "Ashley",   "Steven",  "Kimberly", "Paul",    "Emily",
    "Andrew",  "Donna",    "Joshua",  "Michelle", "Kenneth", "Dorothy",
    "Kevin",   "Carol",    "Brian",   "Amanda",   "George",  "Melissa",
    "Edward",  "Deborah",  "Ronald",  "Stephanie", "Timothy", "Rebecca",
    "Jason",   "Sharon",   "Jeffrey", "Laura",    "Ryan",    "Cynthia",
    "Jacob",   "Kathleen", "Gary",    "Amy",      "Nicholas", "Angela",
    "Eric",    "Shirley",  "Jonathan", "Anna",    "Stephen", "Brenda",
    "Larry",   "Pamela",   "Justin",  "Emma",     "Scott",   "Nicole",
    "Brandon", "Helen",    "Benjamin", "Samantha", "Samuel", "Katherine",
    "Gregory", "Christine", "Frank",  "Debra",    "Alexander", "Rachel",
    "Raymond", "Catherine", "Patrick", "Carolyn", "Jack",    "Janet",
    "Dennis",  "Ruth",     "Jerry",   "Maria",    "Tyler",   "Heather",
};

const char* const kLastNames[] = {
    "Smith",    "Johnson",  "Williams", "Brown",    "Jones",    "Garcia",
    "Miller",   "Davis",    "Rodriguez", "Martinez", "Hernandez", "Lopez",
    "Gonzalez", "Wilson",   "Anderson", "Thomas",   "Taylor",   "Moore",
    "Jackson",  "Martin",   "Lee",      "Perez",    "Thompson", "White",
    "Harris",   "Sanchez",  "Clark",    "Ramirez",  "Lewis",    "Robinson",
    "Walker",   "Young",    "Allen",    "King",     "Wright",   "Scott",
    "Torres",   "Nguyen",   "Hill",     "Flores",   "Green",    "Adams",
    "Nelson",   "Baker",    "Hall",     "Rivera",   "Campbell", "Mitchell",
    "Carter",   "Roberts",  "Gomez",    "Phillips", "Evans",    "Turner",
    "Diaz",     "Parker",   "Cruz",     "Edwards",  "Collins",  "Reyes",
    "Stewart",  "Morris",   "Morales",  "Murphy",   "Cook",     "Rogers",
    "Gutierrez", "Ortiz",   "Morgan",   "Cooper",   "Peterson", "Bailey",
    "Reed",     "Kelly",    "Howard",   "Ramos",    "Kim",      "Cox",
    "Ward",     "Richardson", "Watson", "Brooks",   "Chavez",   "Wood",
    "James",    "Bennett",  "Gray",     "Mendoza",  "Ruiz",     "Hughes",
    "Price",    "Alvarez",  "Castillo", "Sanders",  "Patel",    "Myers",
};

const char* const kCities[] = {
    "Springfield", "Riverton",  "Fairview",   "Kingsport",  "Lakewood",
    "Maplewood",   "Oakdale",   "Brookfield", "Greenville", "Bristol",
    "Clinton",     "Georgetown", "Salem",     "Madison",    "Arlington",
    "Ashland",     "Burlington", "Manchester", "Milton",    "Newport",
    "Auburn",      "Centerville", "Clayton",  "Dayton",     "Dover",
    "Franklin",    "Hudson",    "Jackson",    "Lebanon",    "Lexington",
    "Marion",      "Milford",   "Monroe",     "Newton",     "Oxford",
    "Princeton",   "Richmond",  "Troy",       "Vernon",     "Winchester",
    "Harborview",  "Eastfield", "Westbrook",  "Northgate",  "Southport",
    "Cedar Falls", "Elm Grove", "Pine Bluff", "Stonebridge", "Ironwood",
};

const char* const kStreets[] = {
    "Main",    "Oak",     "Pine",    "Maple",  "Cedar",   "Elm",
    "Washington", "Lake", "Hill",    "Walnut", "Spring",  "North",
    "Ridge",   "Church",  "Willow",  "Mill",   "Sunset",  "Railroad",
    "Jackson", "River",   "Highland", "Forest", "Jefferson", "Center",
    "Franklin", "Park",   "Meadow",  "Chestnut", "Birch", "Hickory",
    "Dogwood", "Locust",  "Poplar",  "Sycamore", "Juniper", "Magnolia",
};

const char* const kStreetSuffixes[] = {
    "Street", "Avenue", "Boulevard", "Drive", "Lane",
    "Road",   "Court",  "Place",     "Way",   "Terrace",
};

const char* const kCountries[] = {
    "Algeria",   "Argentina", "Brazil",   "Canada",        "China",
    "Egypt",     "Ethiopia",  "France",   "Germany",       "India",
    "Indonesia", "Iran",      "Iraq",     "Japan",         "Jordan",
    "Kenya",     "Morocco",   "Mozambique", "Peru",        "Romania",
    "Russia",    "Saudi Arabia", "United Kingdom", "United States",
    "Vietnam",
};

// The 25 TPC-H nations.
const char* const kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",  "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",   "INDONESIA",
    "IRAN",    "IRAQ",      "JAPAN",   "JORDAN",  "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU",   "CHINA",   "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
};

const char* const kRegions[] = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST",
};

const char* const kStates[] = {
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
    "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
    "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
};

const char* const kCompanySuffixes[] = {
    "Inc", "LLC", "Corp", "Ltd", "Group", "Holdings", "Partners",
    "Industries", "Systems", "Solutions",
};

const char* const kColors[] = {
    "almond",  "antique", "aquamarine", "azure",   "beige",   "bisque",
    "black",   "blanched", "blue",      "blush",   "brown",   "burlywood",
    "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
    "cornsilk", "cream",  "cyan",       "dark",    "deep",    "dim",
    "dodger",  "drab",    "firebrick",  "floral",  "forest",  "frosted",
    "gainsboro", "ghost", "goldenrod",  "green",   "grey",    "honeydew",
    "hot",     "indian",  "ivory",      "khaki",   "lace",    "lavender",
    "lawn",    "lemon",   "light",      "lime",    "linen",   "magenta",
    "maroon",  "medium",  "metallic",   "midnight", "mint",   "misty",
    "moccasin", "navajo", "navy",       "olive",   "orange",  "orchid",
    "pale",    "papaya",  "peach",      "peru",    "pink",    "plum",
    "powder",  "puff",    "purple",     "red",     "rose",    "rosy",
    "royal",   "saddle",  "salmon",     "sandy",   "seashell", "sienna",
    "sky",     "slate",   "smoke",      "snow",    "spring",  "steel",
    "tan",     "thistle", "tomato",     "turquoise", "violet", "wheat",
    "white",   "yellow",
};

const char* const kAdjectives[] = {
    "quick",  "final",   "regular", "special", "express", "pending",
    "bold",   "careful", "daring",  "even",    "furious", "ironic",
    "quiet",  "ruthless", "silent", "slow",    "sly",     "stealthy",
    "thin",   "unusual", "blithe",  "busy",    "close",   "dogged",
};

const char* const kNouns[] = {
    "accounts",  "deposits", "packages", "requests",  "instructions",
    "foxes",     "ideas",    "theodolites", "pinto beans", "platelets",
    "dependencies", "excuses", "asymptotes", "courts",  "dolphins",
    "multipliers", "sauternes", "warthogs", "frets",    "dinos",
    "attainments", "sentiments", "waters", "realms",    "braids",
    "hockey players", "escapades", "frays", "decoys",   "grouches",
};

const char* const kVerbs[] = {
    "sleep",  "wake",  "nag",     "haggle", "cajole",  "detect",
    "integrate", "use", "maintain", "snooze", "boost", "doze",
    "engage", "affix", "breach",  "doubt",  "lose",    "print",
    "promise", "run",  "solve",   "wake",   "x-ray",   "play",
};

const char* const kAdverbs[] = {
    "quickly",  "finally",  "carefully", "blithely", "furiously",
    "slyly",    "silently", "daringly",  "evenly",   "boldly",
    "ruthlessly", "stealthily", "thinly", "closely", "doggedly",
};

const char* const kPrepositions[] = {
    "about", "above", "according to", "across", "after",  "against",
    "along", "among", "around",       "at",     "before", "behind",
    "beneath", "beside", "besides",   "between", "beyond", "during",
    "except", "for",  "from",         "inside", "instead of", "near",
    "outside", "over", "through",     "toward", "under",  "without",
};

const char* const kEmailDomains[] = {
    "example.com",  "mail.example.org", "post.example.net",
    "corp.example", "inbox.example.io", "mx.example.co",
};

const char* const kUrlWords[] = {
    "home",    "products", "catalog", "news",   "shop",   "support",
    "account", "search",   "docs",    "about",  "events", "press",
    "careers", "blog",     "store",   "help",   "media",  "forum",
};

const char* const kProductCategories[] = {
    "Books", "Electronics", "Clothing", "Home & Garden", "Sports",
    "Toys",  "Automotive",  "Grocery",  "Health",        "Music",
    "Office", "Jewelry",    "Shoes",    "Outdoors",      "Tools",
};

const char* const kMarketSegments[] = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY",
};

const char* const kShipModes[] = {
    "AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK",
};

const char* const kOrderPriorities[] = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW",
};

// Lazily built registry; function-local static reference avoids the
// static-destruction-order pitfalls flagged by the style guide.
const std::map<std::string, Dictionary, std::less<>>& Registry() {
  static const auto& registry = *new std::map<std::string, Dictionary,
                                              std::less<>>([] {
    std::map<std::string, Dictionary, std::less<>> dictionaries;
    auto add = [&dictionaries](const char* name, const char* const* values,
                               size_t count) {
      dictionaries.emplace(name, MakeDictionary(values, count));
    };
    add("first_names", kFirstNames, std::size(kFirstNames));
    add("last_names", kLastNames, std::size(kLastNames));
    add("cities", kCities, std::size(kCities));
    add("streets", kStreets, std::size(kStreets));
    add("street_suffixes", kStreetSuffixes, std::size(kStreetSuffixes));
    add("countries", kCountries, std::size(kCountries));
    add("nations", kNations, std::size(kNations));
    add("regions", kRegions, std::size(kRegions));
    add("states", kStates, std::size(kStates));
    add("company_suffixes", kCompanySuffixes, std::size(kCompanySuffixes));
    add("colors", kColors, std::size(kColors));
    add("adjectives", kAdjectives, std::size(kAdjectives));
    add("nouns", kNouns, std::size(kNouns));
    add("verbs", kVerbs, std::size(kVerbs));
    add("adverbs", kAdverbs, std::size(kAdverbs));
    add("prepositions", kPrepositions, std::size(kPrepositions));
    add("email_domains", kEmailDomains, std::size(kEmailDomains));
    add("url_words", kUrlWords, std::size(kUrlWords));
    add("product_categories", kProductCategories,
        std::size(kProductCategories));
    add("market_segments", kMarketSegments, std::size(kMarketSegments));
    add("ship_modes", kShipModes, std::size(kShipModes));
    add("order_priorities", kOrderPriorities, std::size(kOrderPriorities));
    return dictionaries;
  }());
  return registry;
}

}  // namespace

const Dictionary* FindBuiltinDictionary(std::string_view name) {
  const auto& registry = Registry();
  auto it = registry.find(name);
  return it == registry.end() ? nullptr : &it->second;
}

std::vector<std::string> BuiltinDictionaryNames() {
  std::vector<std::string> names;
  for (const auto& [name, dictionary] : Registry()) {
    names.push_back(name);
  }
  return names;
}

std::string_view BuiltinCommentCorpus() {
  // Deliberately in the register of TPC-H comments: short clauses built
  // from adverb/adjective/noun/verb stock phrases.
  static constexpr std::string_view kCorpus =
      "the quick foxes sleep blithely. regular deposits haggle carefully. "
      "final requests wake furiously across the silent platelets. "
      "express instructions nag slyly among the pending accounts. "
      "bold ideas cajole quickly above the even theodolites. "
      "careful packages boost daringly. the furious excuses detect slowly "
      "according to the special requests. pinto beans sleep evenly. "
      "ironic dependencies integrate ruthlessly along the quiet courts. "
      "stealthy dolphins snooze silently behind the unusual asymptotes. "
      "blithe multipliers doze finally beneath the close sauternes. "
      "busy warthogs haggle boldly near the dogged frets. "
      "the slow dinos engage carefully. quiet attainments affix blithely "
      "inside the regular sentiments. sly waters breach furiously. "
      "thin realms doubt quickly about the final braids. "
      "the special hockey players lose evenly. daring escapades print "
      "slyly between the express frays. even decoys promise silently. "
      "furious grouches run carefully around the bold accounts. "
      "pending packages solve ruthlessly during the ironic requests. "
      "unusual deposits wake stealthily without the careful foxes. "
      "the regular ideas x-ray thinly toward the busy platelets. "
      "silent instructions play closely beyond the quick theodolites. "
      "final pinto beans nag doggedly over the sly dependencies. "
      "express courts cajole blithely except the stealthy dolphins. "
      "the bold asymptotes sleep quickly. careful multipliers haggle "
      "furiously beside the thin sauternes. quiet warthogs boost evenly. "
      "slow frets detect daringly among the blithe dinos. "
      "ironic attainments snooze boldly underneath the busy sentiments. "
      "the unusual waters doze carefully. dogged realms integrate slyly "
      "after the even braids. special escapades use silently. "
      "regular decoys maintain ruthlessly before the final grouches. "
      "quick requests engage stealthily against the pending accounts. "
      "furiously bold deposits affix closely along the silent packages. "
      "the careful excuses breach thinly near the express ideas.";
  return kCorpus;
}

}  // namespace pdgf
