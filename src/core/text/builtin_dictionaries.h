#ifndef DBSYNTHPP_CORE_TEXT_BUILTIN_DICTIONARIES_H_
#define DBSYNTHPP_CORE_TEXT_BUILTIN_DICTIONARIES_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/text/dictionary.h"

namespace pdgf {

// PDGF ships built-in dictionaries so that models can produce plausible
// semantic values (names, addresses, URLs, ...) even when the original
// data cannot be sampled (paper §3: "DBSynth falls back to ... predefined
// generators for URLs, addresses, etc." and "uses its built in
// dictionaries to increase the value domain in scale out scenarios").
//
// Returns the named dictionary, or nullptr for unknown names. Valid
// names: first_names, last_names, cities, streets, street_suffixes,
// countries, nations, regions, states, company_suffixes, colors,
// adjectives, nouns, verbs, adverbs, email_domains, url_words,
// product_categories, market_segments, ship_modes, order_priorities.
const Dictionary* FindBuiltinDictionary(std::string_view name);

// All registered dictionary names (sorted), for discovery/UI.
std::vector<std::string> BuiltinDictionaryNames();

// A built-in English sample corpus used to bootstrap Markov models when a
// model does not ship an extracted one (and used by tests/benches). The
// text deliberately mimics the register of TPC-H comment columns.
std::string_view BuiltinCommentCorpus();

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_TEXT_BUILTIN_DICTIONARIES_H_
