#ifndef DBSYNTHPP_CORE_TEXT_DICTIONARY_H_
#define DBSYNTHPP_CORE_TEXT_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "util/rng.h"

namespace pdgf {

// A weighted list of string values, the model DBSynth extracts for
// single-word text columns (paper §3) and the backing store of the
// DictList generator. Sampling reproduces the extracted relative
// frequencies.
//
// Two sampling backends are provided — binary search over the cumulative
// weight table (default) and Walker's alias method — so the design choice
// can be benchmarked (bench_ablation_dict).
class Dictionary {
 public:
  Dictionary() = default;

  // Adds an entry. Call Finalize() before sampling.
  void Add(std::string value, double weight = 1.0);

  // Loads "value" or "value<TAB>weight" lines. '#'-prefixed lines are
  // comments. The dictionary is finalized on return.
  static StatusOr<Dictionary> FromFile(const std::string& path);
  // Same format, from a string.
  static StatusOr<Dictionary> FromText(std::string_view text);

  // Saves in the FromFile format (weights included when non-uniform).
  Status SaveToFile(const std::string& path) const;

  // Builds the cumulative and alias tables. Idempotent.
  void Finalize();

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::string& value(size_t index) const { return entries_[index].value; }
  double weight(size_t index) const { return entries_[index].weight; }
  double total_weight() const { return total_weight_; }

  // Weighted sample via cumulative binary search. Requires Finalize().
  const std::string& Sample(Xorshift64* rng) const;
  // Weighted sample via the alias table. Requires Finalize().
  const std::string& SampleAlias(Xorshift64* rng) const;
  // Uniform sample ignoring weights.
  const std::string& SampleUniform(Xorshift64* rng) const;

  // Index lookup variants (used by tests and by generators that need the
  // index rather than the string).
  size_t SampleIndex(Xorshift64* rng) const;
  size_t SampleAliasIndex(Xorshift64* rng) const;

  // Returns the index of `value`, or -1. Linear scan; intended for tests.
  int Find(std::string_view value) const;

 private:
  struct Entry {
    std::string value;
    double weight;
  };

  std::vector<Entry> entries_;
  std::vector<double> cumulative_;
  double total_weight_ = 0;
  bool finalized_ = false;
  // Alias method tables.
  std::vector<double> alias_probability_;
  std::vector<uint32_t> alias_index_;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_TEXT_DICTIONARY_H_
