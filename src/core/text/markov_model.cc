#include "core/text/markov_model.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "util/files.h"

namespace pdgf {
namespace {

constexpr char kMagic[8] = {'P', 'D', 'G', 'F', 'M', 'K', 'V', '1'};

void PutU32(std::string* out, uint32_t v) {
  char buffer[4];
  std::memcpy(buffer, &v, 4);
  out->append(buffer, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buffer[8];
  std::memcpy(buffer, &v, 8);
  out->append(buffer, 8);
}

bool GetU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (*pos + 4 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool IsSentenceEnd(char c) { return c == '.' || c == '!' || c == '?'; }

}  // namespace

int32_t MarkovModel::InternWord(std::string_view word) {
  auto it = word_ids_.find(std::string(word));
  if (it != word_ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(words_.size());
  words_.emplace_back(word);
  word_ids_.emplace(words_.back(), id);
  raw_transitions_.emplace_back();
  raw_end_counts_.push_back(0);
  return id;
}

int32_t MarkovModel::FindWord(std::string_view word) const {
  auto it = word_ids_.find(std::string(word));
  return it == word_ids_.end() ? -1 : it->second;
}

void MarkovModel::AddSample(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) != 0)) {
      ++i;
    }
    size_t start = i;
    bool sentence_end = false;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      ++i;
    }
    size_t end = i;
    // Strip trailing sentence punctuation from the token.
    while (end > start && IsSentenceEnd(text[end - 1])) {
      --end;
      sentence_end = true;
    }
    if (end > start) {
      tokens.push_back(text.substr(start, end - start));
    }
    if (sentence_end && !tokens.empty()) {
      TrainSentence(tokens);
      tokens.clear();
    }
  }
  if (!tokens.empty()) {
    TrainSentence(tokens);
  }
}

void MarkovModel::TrainSentence(const std::vector<std::string_view>& tokens) {
  if (tokens.empty()) return;
  finalized_ = false;
  int32_t previous = -1;
  for (size_t i = 0; i < tokens.size(); ++i) {
    int32_t id = InternWord(tokens[i]);
    if (i == 0) {
      ++raw_starts_[id];
    } else {
      ++raw_transitions_[static_cast<size_t>(previous)][id];
    }
    previous = id;
  }
  ++raw_end_counts_[static_cast<size_t>(previous)];
}

void MarkovModel::Finalize() {
  transitions_.clear();
  transitions_.resize(words_.size());
  for (size_t w = 0; w < words_.size(); ++w) {
    // Deterministic ordering: sort successors by id.
    std::vector<std::pair<int32_t, uint64_t>> sorted(
        raw_transitions_[w].begin(), raw_transitions_[w].end());
    std::sort(sorted.begin(), sorted.end());
    TransitionTable& table = transitions_[w];
    table.next.reserve(sorted.size());
    table.cumulative.reserve(sorted.size());
    uint64_t running = 0;
    for (const auto& [next_id, count] : sorted) {
      running += count;
      table.next.push_back(next_id);
      table.cumulative.push_back(running);
    }
    table.end_weight = raw_end_counts_[w];
    table.total = running + table.end_weight;
  }
  std::vector<std::pair<int32_t, uint64_t>> starts(raw_starts_.begin(),
                                                   raw_starts_.end());
  std::sort(starts.begin(), starts.end());
  start_words_.clear();
  start_cumulative_.clear();
  start_total_ = 0;
  for (const auto& [id, count] : starts) {
    start_total_ += count;
    start_words_.push_back(id);
    start_cumulative_.push_back(start_total_);
  }
  start_entries_ = start_words_.size();
  finalized_ = true;
}

size_t MarkovModel::transition_count() const {
  size_t count = 0;
  for (const TransitionTable& table : transitions_) {
    count += table.next.size();
  }
  return count;
}

double MarkovModel::TransitionProbability(std::string_view first,
                                          std::string_view second) const {
  int32_t a = FindWord(first);
  int32_t b = FindWord(second);
  if (a < 0 || b < 0) return 0;
  const TransitionTable& table = transitions_[static_cast<size_t>(a)];
  if (table.total == 0) return 0;
  uint64_t previous = 0;
  for (size_t i = 0; i < table.next.size(); ++i) {
    uint64_t weight = table.cumulative[i] - previous;
    if (table.next[i] == b) {
      return static_cast<double>(weight) / static_cast<double>(table.total);
    }
    previous = table.cumulative[i];
  }
  return 0;
}

std::string MarkovModel::Generate(Xorshift64* rng, int min_words,
                                  int max_words) const {
  std::string out;
  if (!finalized_ || start_words_.empty() || max_words <= 0) return out;
  if (min_words < 1) min_words = 1;
  if (max_words < min_words) max_words = min_words;
  // Target length drawn uniformly; the chain may end sentences early and
  // restart, mimicking multi-sentence comment fields.
  int target =
      static_cast<int>(rng->NextInRange(min_words, max_words));
  int produced = 0;
  int32_t current = -1;
  while (produced < target) {
    if (current < 0) {
      // Draw a start state.
      uint64_t pick = rng->NextBounded(start_total_) + 1;
      auto it = std::lower_bound(start_cumulative_.begin(),
                                 start_cumulative_.end(), pick);
      current = start_words_[static_cast<size_t>(
          it - start_cumulative_.begin())];
    } else {
      const TransitionTable& table =
          transitions_[static_cast<size_t>(current)];
      if (table.total == 0) {
        current = -1;
        continue;
      }
      uint64_t pick = rng->NextBounded(table.total) + 1;
      if (pick > (table.next.empty() ? 0 : table.cumulative.back())) {
        // End-of-sentence: restart (unless we have enough words).
        current = -1;
        continue;
      }
      auto it = std::lower_bound(table.cumulative.begin(),
                                 table.cumulative.end(), pick);
      current = table.next[static_cast<size_t>(it - table.cumulative.begin())];
    }
    if (produced > 0) out.push_back(' ');
    out.append(words_[static_cast<size_t>(current)]);
    ++produced;
  }
  return out;
}

std::string MarkovModel::SerializeToString() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, static_cast<uint32_t>(words_.size()));
  for (const std::string& word : words_) {
    PutU32(&out, static_cast<uint32_t>(word.size()));
    out.append(word);
  }
  // Start states.
  PutU32(&out, static_cast<uint32_t>(start_words_.size()));
  for (size_t i = 0; i < start_words_.size(); ++i) {
    PutU32(&out, static_cast<uint32_t>(start_words_[i]));
    PutU64(&out, start_cumulative_[i]);
  }
  // Transitions.
  for (const TransitionTable& table : transitions_) {
    PutU32(&out, static_cast<uint32_t>(table.next.size()));
    PutU64(&out, table.end_weight);
    for (size_t i = 0; i < table.next.size(); ++i) {
      PutU32(&out, static_cast<uint32_t>(table.next[i]));
      PutU64(&out, table.cumulative[i]);
    }
  }
  return out;
}

StatusOr<MarkovModel> MarkovModel::ParseFromString(std::string_view data) {
  MarkovModel model;
  size_t pos = 0;
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return ParseError("not a Markov model file (bad magic)");
  }
  pos = sizeof(kMagic);
  uint32_t word_count = 0;
  if (!GetU32(data, &pos, &word_count)) return ParseError("truncated model");
  // Sanity bound before reserving: every word record needs >= 4 bytes.
  if (static_cast<uint64_t>(word_count) * 4 > data.size() - pos) {
    return ParseError("corrupt model (word count exceeds file size)");
  }
  model.words_.reserve(word_count);
  for (uint32_t w = 0; w < word_count; ++w) {
    uint32_t length = 0;
    if (!GetU32(data, &pos, &length) || pos + length > data.size()) {
      return ParseError("truncated model (words)");
    }
    model.words_.emplace_back(data.substr(pos, length));
    model.word_ids_.emplace(model.words_.back(), static_cast<int32_t>(w));
    pos += length;
  }
  uint32_t start_count = 0;
  if (!GetU32(data, &pos, &start_count)) return ParseError("truncated model");
  // Each start record is 12 bytes.
  if (static_cast<uint64_t>(start_count) * 12 > data.size() - pos) {
    return ParseError("corrupt model (start count exceeds file size)");
  }
  model.start_words_.reserve(start_count);
  model.start_cumulative_.reserve(start_count);
  for (uint32_t i = 0; i < start_count; ++i) {
    uint32_t id = 0;
    uint64_t cumulative = 0;
    if (!GetU32(data, &pos, &id) || !GetU64(data, &pos, &cumulative)) {
      return ParseError("truncated model (starts)");
    }
    if (id >= word_count) return ParseError("corrupt model (start id)");
    if (!model.start_cumulative_.empty() &&
        cumulative <= model.start_cumulative_.back()) {
      return ParseError("corrupt model (start weights not increasing)");
    }
    model.start_words_.push_back(static_cast<int32_t>(id));
    model.start_cumulative_.push_back(cumulative);
  }
  model.start_total_ =
      model.start_cumulative_.empty() ? 0 : model.start_cumulative_.back();
  model.start_entries_ = model.start_words_.size();
  model.transitions_.resize(word_count);
  for (uint32_t w = 0; w < word_count; ++w) {
    uint32_t edge_count = 0;
    uint64_t end_weight = 0;
    if (!GetU32(data, &pos, &edge_count) || !GetU64(data, &pos, &end_weight)) {
      return ParseError("truncated model (transitions)");
    }
    // Each edge record is 12 bytes.
    if (static_cast<uint64_t>(edge_count) * 12 > data.size() - pos) {
      return ParseError("corrupt model (edge count exceeds file size)");
    }
    TransitionTable& table = model.transitions_[w];
    table.end_weight = end_weight;
    table.next.reserve(edge_count);
    table.cumulative.reserve(edge_count);
    for (uint32_t e = 0; e < edge_count; ++e) {
      uint32_t id = 0;
      uint64_t cumulative = 0;
      if (!GetU32(data, &pos, &id) || !GetU64(data, &pos, &cumulative)) {
        return ParseError("truncated model (edges)");
      }
      if (id >= word_count) return ParseError("corrupt model (edge id)");
      if (!table.cumulative.empty() &&
          cumulative <= table.cumulative.back()) {
        return ParseError("corrupt model (edge weights not increasing)");
      }
      table.next.push_back(static_cast<int32_t>(id));
      table.cumulative.push_back(cumulative);
    }
    table.total =
        (table.next.empty() ? 0 : table.cumulative.back()) + end_weight;
  }
  if (pos != data.size()) return ParseError("trailing bytes in model file");
  model.finalized_ = true;
  return model;
}

Status MarkovModel::Save(const std::string& path) const {
  return WriteStringToFile(path, SerializeToString());
}

StatusOr<MarkovModel> MarkovModel::Load(const std::string& path) {
  PDGF_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return ParseFromString(data);
}

}  // namespace pdgf
