#include "core/text/dictionary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/files.h"
#include "util/strings.h"

namespace pdgf {

void Dictionary::Add(std::string value, double weight) {
  if (weight <= 0) weight = 1e-12;
  entries_.push_back(Entry{std::move(value), weight});
  finalized_ = false;
}

StatusOr<Dictionary> Dictionary::FromText(std::string_view text) {
  Dictionary dictionary;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    line = StripWhitespace(line);
    if (line.empty() || line[0] == '#') {
      if (end == text.size()) break;
      continue;
    }
    size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      dictionary.Add(std::string(line));
    } else {
      std::string_view value = StripWhitespace(line.substr(0, tab));
      std::string_view weight_text = StripWhitespace(line.substr(tab + 1));
      char* parse_end = nullptr;
      std::string weight_string(weight_text);
      double weight = std::strtod(weight_string.c_str(), &parse_end);
      if (parse_end != weight_string.c_str() + weight_string.size() ||
          weight <= 0) {
        return ParseError("bad dictionary weight: '" + weight_string + "'");
      }
      dictionary.Add(std::string(value), weight);
    }
    if (end == text.size()) break;
  }
  dictionary.Finalize();
  return dictionary;
}

StatusOr<Dictionary> Dictionary::FromFile(const std::string& path) {
  PDGF_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return FromText(contents);
}

Status Dictionary::SaveToFile(const std::string& path) const {
  std::string out;
  bool uniform = true;
  for (const Entry& entry : entries_) {
    if (entry.weight != entries_.front().weight) {
      uniform = false;
      break;
    }
  }
  for (const Entry& entry : entries_) {
    out.append(entry.value);
    if (!uniform) {
      out.push_back('\t');
      char buffer[40];
      std::snprintf(buffer, sizeof(buffer), "%.17g", entry.weight);
      out.append(buffer);
    }
    out.push_back('\n');
  }
  return WriteStringToFile(path, out);
}

void Dictionary::Finalize() {
  if (finalized_) return;
  cumulative_.resize(entries_.size());
  total_weight_ = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    total_weight_ += entries_[i].weight;
    cumulative_[i] = total_weight_;
  }
  // Alias table (Walker / Vose).
  size_t n = entries_.size();
  alias_probability_.assign(n, 1.0);
  alias_index_.assign(n, 0);
  if (n > 0 && total_weight_ > 0) {
    std::vector<double> scaled(n);
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = entries_[i].weight * static_cast<double>(n) / total_weight_;
      alias_index_[i] = static_cast<uint32_t>(i);
    }
    std::vector<uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      uint32_t s = small.back();
      small.pop_back();
      uint32_t l = large.back();
      large.pop_back();
      alias_probability_[s] = scaled[s];
      alias_index_[s] = l;
      scaled[l] = scaled[l] + scaled[s] - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Leftovers get probability 1 (numerical residue).
    for (uint32_t s : small) alias_probability_[s] = 1.0;
    for (uint32_t l : large) alias_probability_[l] = 1.0;
  }
  finalized_ = true;
}

size_t Dictionary::SampleIndex(Xorshift64* rng) const {
  if (entries_.empty()) return 0;
  double target = rng->NextDouble() * total_weight_;
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  size_t index = static_cast<size_t>(it - cumulative_.begin());
  if (index >= entries_.size()) index = entries_.size() - 1;
  return index;
}

size_t Dictionary::SampleAliasIndex(Xorshift64* rng) const {
  if (entries_.empty()) return 0;
  uint64_t slot = rng->NextBounded(entries_.size());
  double coin = rng->NextDouble();
  if (coin < alias_probability_[slot]) return slot;
  return alias_index_[slot];
}

const std::string& Dictionary::Sample(Xorshift64* rng) const {
  return entries_[SampleIndex(rng)].value;
}

const std::string& Dictionary::SampleAlias(Xorshift64* rng) const {
  return entries_[SampleAliasIndex(rng)].value;
}

const std::string& Dictionary::SampleUniform(Xorshift64* rng) const {
  return entries_[rng->NextBounded(entries_.size())].value;
}

int Dictionary::Find(std::string_view value) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].value == value) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace pdgf
