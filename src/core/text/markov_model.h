#ifndef DBSYNTHPP_CORE_TEXT_MARKOV_MODEL_H_
#define DBSYNTHPP_CORE_TEXT_MARKOV_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "util/rng.h"

namespace pdgf {

// A first-order word-level Markov chain: the model DBSynth builds from
// sampled free-text columns and the MarkovChainGenerator replays
// (paper §3: "analyzes the word combination frequencies and
// probabilities"; the TPC-H comment model has ~1500 words and 95 start
// states).
//
// Training accumulates start-state counts and word→word transition
// counts (plus an end-of-sentence weight per word). Finalize() freezes
// cumulative tables for O(log k) sampling. Models serialize to a compact
// binary format (the "markovSamples.bin" files of Listing 1).
class MarkovModel {
 public:
  MarkovModel() = default;

  MarkovModel(MarkovModel&&) = default;
  MarkovModel& operator=(MarkovModel&&) = default;

  // Adds one text sample; it is tokenized on whitespace. Sentences
  // (separated by '.', '!', '?') are trained independently.
  void AddSample(std::string_view text);

  // Freezes the model for sampling. Further AddSample calls are invalid.
  void Finalize();
  bool finalized() const { return finalized_; }

  // Generates text with a word count in [min_words, max_words]. If the
  // chain reaches a word with no outgoing transition before min_words, a
  // fresh start state is drawn (deterministically from `rng`).
  std::string Generate(Xorshift64* rng, int min_words, int max_words) const;

  // Vocabulary size (distinct words seen).
  size_t word_count() const { return words_.size(); }
  // Number of distinct sentence-starting words.
  size_t start_state_count() const { return start_entries_; }
  // Total transition edges (distinct word bigrams).
  size_t transition_count() const;

  // Probability that `second` follows `first` among observed successors,
  // or 0. For tests and model inspection.
  double TransitionProbability(std::string_view first,
                               std::string_view second) const;

  // Binary (de)serialization.
  Status Save(const std::string& path) const;
  static StatusOr<MarkovModel> Load(const std::string& path);

  // Serializes into a string (same format as Save).
  std::string SerializeToString() const;
  static StatusOr<MarkovModel> ParseFromString(std::string_view data);

 private:
  int32_t InternWord(std::string_view word);
  int32_t FindWord(std::string_view word) const;
  void TrainSentence(const std::vector<std::string_view>& tokens);

  struct TransitionTable {
    // Successor word ids with cumulative counts; parallel arrays.
    std::vector<int32_t> next;
    std::vector<uint64_t> cumulative;
    uint64_t total = 0;       // including end-of-sentence weight
    uint64_t end_weight = 0;  // times the word terminated a sentence
  };

  std::vector<std::string> words_;
  std::unordered_map<std::string, int32_t> word_ids_;
  // During training: raw counts. After Finalize(): cumulative tables.
  std::vector<std::unordered_map<int32_t, uint64_t>> raw_transitions_;
  std::vector<uint64_t> raw_end_counts_;
  std::unordered_map<int32_t, uint64_t> raw_starts_;

  std::vector<TransitionTable> transitions_;
  std::vector<int32_t> start_words_;
  std::vector<uint64_t> start_cumulative_;
  uint64_t start_total_ = 0;
  size_t start_entries_ = 0;
  bool finalized_ = false;
};

}  // namespace pdgf

#endif  // DBSYNTHPP_CORE_TEXT_MARKOV_MODEL_H_
