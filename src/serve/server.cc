#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/output/sink.h"
#include "serve/connection.h"
#include "serve/protocol.h"
#include "util/files.h"
#include "util/strings.h"
#include "workloads/imdb.h"  // BuildBundledModel lives with the models

namespace serve {

using pdgf::Status;
using pdgf::StatusOr;

Server::Server(ServeOptions options)
    : options_(std::move(options)), queue_(options_.max_jobs) {}

Server::~Server() {
  RequestShutdown();
  Wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status Server::Start() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return pdgf::IoError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return pdgf::InvalidArgumentError("bad bind address \"" +
                                      options_.bind_address + "\"");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = pdgf::IoError(pdgf::StrPrintf(
        "bind to %s:%d failed: %s", options_.bind_address.c_str(),
        options_.port, std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    Status status =
        pdgf::IoError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    Status status = pdgf::IoError(std::string("getsockname failed: ") +
                                  std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;

  if (!options_.port_file.empty()) {
    PDGF_RETURN_IF_ERROR(pdgf::WriteStringToFile(
        options_.port_file, std::to_string(port_) + "\n"));
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::AcceptLoop() {
  while (!shutting_down()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EINVAL/EBADF: the listener was shut down under us — exit.
      break;
    }
    if (shutting_down()) {
      ::close(fd);
      break;
    }

    timeval timeout{};
    timeout.tv_sec = options_.request_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof(options_.send_buffer_bytes));
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (active_connections_ >= options_.max_connections) {
        connections_rejected_.fetch_add(1, std::memory_order_relaxed);
        pdgf::WriteAllToFd(
            fd, FormatErrorLine(pdgf::ResourceExhaustedError(
                    "connection limit reached; retry later")));
        ::close(fd);
        continue;
      }
      ++active_connections_;
      connection_fds_.insert(fd);
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    // Detached: connection threads outlive this loop's iteration and are
    // accounted for via active_connections_, which Wait() drains.
    std::thread([this, fd] {
      RunConnection(this, fd);
      std::lock_guard<std::mutex> lock(mu_);
      connection_fds_.erase(fd);
      ::close(fd);
      --active_connections_;
      drained_.notify_all();
    }).detach();
  }
}

void Server::RequestShutdown() {
  if (shutting_down_.exchange(true)) return;
  queue_.CancelAll();
  // Wake the accept loop and every blocked connection read/write; the
  // fds stay open (their owners close them) but refuse further I/O.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return active_connections_ == 0; });
}

StatusOr<std::shared_ptr<const Server::ModelEntry>> Server::GetModel(
    const std::string& model, const std::string& scale_factor) {
  std::string key = model + "@" + scale_factor;
  std::lock_guard<std::mutex> lock(models_mu_);
  auto it = models_.find(key);
  if (it != models_.end()) return it->second;

  auto entry = std::make_shared<ModelEntry>();
  PDGF_ASSIGN_OR_RETURN(entry->schema, workloads::BuildBundledModel(model));
  std::map<std::string, std::string> overrides;
  if (!scale_factor.empty()) overrides["SF"] = scale_factor;
  PDGF_ASSIGN_OR_RETURN(
      entry->session,
      pdgf::GenerationSession::Create(&entry->schema, overrides));
  std::shared_ptr<const ModelEntry> shared = std::move(entry);
  models_.emplace(std::move(key), shared);
  return shared;
}

std::string Server::MetricsJson() {
  pdgf::ServeCounters counters;
  queue_.FillCounters(&counters);
  counters.max_connections = options_.max_connections;
  counters.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  counters.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.active_connections = active_connections_;
  }
  std::string last_job = queue_.LastJobMetricsJson();
  return "{\"serve\":" + counters.ToJson(false) +
         ",\"last_job\":" + (last_job.empty() ? "null" : last_job) + "}";
}

}  // namespace serve
