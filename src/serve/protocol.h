#ifndef DBSYNTHPP_SERVE_PROTOCOL_H_
#define DBSYNTHPP_SERVE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace serve {

// The serve daemon's wire protocol (docs/serve.md): line-delimited JSON
// control frames with raw payload bytes in between. Every request is ONE
// JSON object on one '\n'-terminated line; every control response is the
// same. Generation streams interleave raw bytes after per-chunk headers:
//
//   client > {"model":"tpch","scale_factor":"0.01","node_id":0,
//             "node_count":4,"format":"csv","digests":true}
//   server < {"status":"streaming","job":7}
//   server < {"table":"region","bytes":335}
//   server < <335 raw payload bytes>
//   ...
//   server < {"table_digest":"region","rows":5,"bytes":335,
//             "digest":"<hex>","state":"<mergeable state>"}   (--digests)
//   server < {"status":"ok","job":7,"rows":86630,"bytes":11355168,
//             "seconds":0.41}
//
// Control ops share the request shape: {"op":"metrics"}, {"op":"ping"},
// {"op":"cancel","job":7}, {"op":"shutdown"}. Errors are
// {"status":"error","code":"<StatusCodeName>","message":"..."}.
//
// On-the-fly ops reuse the chunked framing:
//   {"op":"range","model":"tpch","table":"lineitem","first_row":500,
//    "row_count":1000}             streams exactly that row window;
//   {"op":"stream","model":"tpch","table":"orders","rate":500,
//    "snapshot":true}              streams CDC insert/update event lines
// (core/stream.h) chunked under the table's name, so the generate-path
// client consumes both without changes.
//
// The parser is deliberately minimal: one flat JSON object per line,
// string / number / true / false / null values, no nesting — exactly the
// request grammar. Responses the daemon emits may nest (the metrics
// document embeds MetricsReport schema v2); clients scrape those with
// ExtractJson* below or a real JSON parser on their side.

// One parsed request. `op` defaults to "generate" when a model is named
// and no explicit op is present.
struct JobRequest {
  std::string op = "generate";
  std::string model;         // bundled model name: tpch | ssb | imdb
  std::string scale_factor;  // raw numeric text ("0.01"); empty = default
  int node_id = 0;           // meta-scheduler share of this job
  int node_count = 1;
  std::string format = "csv";
  int workers = 1;           // engine worker threads for this job
  uint64_t update = 0;       // generate/range: time unit; stream: last
                             // unit to play (0 = through the final unit)
  bool digests = false;      // compute + ship per-table digest states
  uint64_t job_id = 0;       // cancel target
  std::string table;         // range/stream: target table name
  uint64_t first_row = 0;    // range: window start (row ordinal)
  uint64_t row_count = 0;    // range: window length; required > 0
  uint64_t rate = 0;         // stream: events/second pacing; 0 = full speed
  uint64_t events = 0;       // stream: stop after N events; 0 = all
  bool snapshot = false;     // stream: open with base-row insert events
};

// Parses one request line. Unknown keys fail (a typo must not silently
// fall back to a default); malformed JSON fails with ParseError.
pdgf::StatusOr<JobRequest> ParseJobRequest(std::string_view line);

// Flat-object JSON scanner backing ParseJobRequest; exposed for tests
// and for client-side parsing of flat control frames (chunk headers,
// table_digest lines, error lines). Values are returned as raw text with
// string escapes resolved.
pdgf::StatusOr<std::map<std::string, std::string>> ParseFlatJsonObject(
    std::string_view text);

// JSON string escaping for emitted frames.
std::string JsonEscape(std::string_view text);

// Response frames ------------------------------------------------------

std::string FormatErrorLine(const pdgf::Status& status);
std::string FormatStreamingHeader(uint64_t job_id);
std::string FormatChunkHeader(std::string_view table, size_t payload_bytes);
// One per table when the request asked for digests; `state` is
// TableDigest::SerializeState().
std::string FormatTableDigestLine(std::string_view table, uint64_t rows,
                                  uint64_t bytes, std::string_view hex,
                                  std::string_view state);
std::string FormatOkTrailer(uint64_t job_id, uint64_t rows, uint64_t bytes,
                            double seconds);

// Scraping helpers for nested response documents (the metrics endpoint):
// find the first `"key":` occurrence and parse the value after it.
// Textual, not a full parser — fine for tests and smoke checks.
pdgf::StatusOr<double> ExtractJsonNumber(std::string_view json,
                                         std::string_view key);

}  // namespace serve

#endif  // DBSYNTHPP_SERVE_PROTOCOL_H_
