#ifndef DBSYNTHPP_SERVE_SERVER_H_
#define DBSYNTHPP_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/status.h"
#include "core/session.h"
#include "serve/job_queue.h"

namespace serve {

// Configuration of one daemon instance. Every limit is a hard bound:
// the daemon refuses work past it instead of queueing unboundedly.
struct ServeOptions {
  int port = 0;                      // 0 = kernel-assigned ephemeral port
  std::string bind_address = "127.0.0.1";  // loopback only by default
  // When non-empty the daemon writes the bound port (decimal, one line)
  // here after listen() succeeds — how scripts find an ephemeral port.
  std::string port_file;
  uint64_t max_jobs = 4;             // admitted-but-unfinished jobs
  uint64_t max_connections = 32;     // concurrent client connections
  int max_workers_per_job = 4;       // clamp on the request's "workers"
  // Writer threads per job. 1 (the default) keeps each job's output
  // stream deterministic: one worker + one writer thread produce a
  // table-major frame order that repeats byte-identically across runs
  // (docs/serve.md, determinism guarantees).
  int writer_threads = 1;
  uint64_t work_package_rows = 10000;
  // Idle limit while waiting for a request line (SO_RCVTIMEO); a silent
  // client is disconnected so it cannot pin a connection slot forever.
  int request_timeout_seconds = 60;
  // SO_SNDBUF for accepted connections; 0 keeps the kernel default. The
  // failure tests shrink this so an unread stream applies backpressure
  // after a few KB instead of a few MB, making "job still running while
  // the client refuses to read" a deterministic state to assert on.
  int send_buffer_bytes = 0;
};

// The `dbsynthpp serve` daemon: accepts connections, parses line-
// delimited JSON requests (serve/protocol.h) and runs generation jobs
// through the standard GenerationEngine with a socket-backed sink per
// connection. One thread per connection; jobs gate on the JobQueue's
// admission control, so --max-jobs bounds the engine fan-out no matter
// how many clients connect.
class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and starts the accept thread. Fails (without leaking
  // an fd) if the address is unavailable.
  pdgf::Status Start();

  // The bound port (differs from options().port when that was 0).
  int port() const { return port_; }

  // Idempotent, thread-safe: stops accepting, cancels running jobs and
  // shuts down live connection sockets so blocked reads/writes fail
  // fast. Returns without waiting; Wait() observes the drain.
  void RequestShutdown();

  // Joins the accept thread and blocks until every connection thread has
  // finished. Safe to call once after Start().
  void Wait();

  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_relaxed);
  }

  JobQueue& queue() { return queue_; }
  const ServeOptions& options() const { return options_; }

  // A bundled model resolved at a scale factor, cached across jobs.
  // The schema is owned here because the session keeps a pointer into
  // it; both are immutable after Create, so concurrent jobs share one
  // entry freely.
  struct ModelEntry {
    pdgf::SchemaDef schema;
    std::unique_ptr<pdgf::GenerationSession> session;
  };
  // `scale_factor` is the raw numeric token from the request ("" =
  // model default); it becomes the SF property override, exactly like
  // the CLI's --sf.
  pdgf::StatusOr<std::shared_ptr<const ModelEntry>> GetModel(
      const std::string& model, const std::string& scale_factor);

  // The metrics document (docs/serve.md): one compact JSON line
  // {"serve":<ServeCounters>,"last_job":<MetricsReport schema v2>|null}.
  std::string MetricsJson();

 private:
  void AcceptLoop();

  ServeOptions options_;
  JobQueue queue_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};

  mutable std::mutex mu_;
  std::condition_variable drained_;
  uint64_t active_connections_ = 0;  // guarded by mu_
  std::set<int> connection_fds_;     // guarded by mu_; live client fds

  std::mutex models_mu_;
  std::map<std::string, std::shared_ptr<const ModelEntry>> models_;
};

}  // namespace serve

#endif  // DBSYNTHPP_SERVE_SERVER_H_
