#ifndef DBSYNTHPP_SERVE_JOB_QUEUE_H_
#define DBSYNTHPP_SERVE_JOB_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/metrics/metrics.h"

namespace serve {

// One admitted generation job. Connections own a shared_ptr while the
// job runs; the queue's registry holds another so a `cancel` request
// from a DIFFERENT connection can find it by id. Cancellation is
// cooperative: the flag is checked by the job's sink on every write, so
// an in-flight engine run aborts via its normal first-error-wins path
// (which releases buffer-pool buffers and joins workers — no special
// teardown).
struct Job {
  uint64_t id = 0;
  std::string model;
  std::atomic<bool> cancelled{false};

  void Cancel() { cancelled.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled.load(std::memory_order_relaxed);
  }
};

// Admission control plus the per-job half of the serve metrics. At most
// `max_jobs` admitted-but-unfinished jobs exist at a time; a request
// past the limit is rejected IMMEDIATELY with ResourceExhausted rather
// than queued — the client owns retry policy, and a bounded daemon that
// says "no" fast is easier to reason about (and to test) than one that
// parks connections.
class JobQueue {
 public:
  explicit JobQueue(uint64_t max_jobs) : max_jobs_(max_jobs) {}

  // Admits a new job or fails with ResourceExhausted. Thread-safe.
  pdgf::StatusOr<std::shared_ptr<Job>> Admit(const std::string& model);

  // Terminal transitions. Exactly one must be called per admitted job;
  // each removes the job from the registry and decrements the depth.
  void FinishOk(const std::shared_ptr<Job>& job);
  void FinishFailed(const std::shared_ptr<Job>& job);
  void FinishCancelled(const std::shared_ptr<Job>& job);

  // Flags job `id` for cancellation (NotFound if it is not running).
  pdgf::Status Cancel(uint64_t id);
  // Flags every running job — used at shutdown to unblock streams fast.
  void CancelAll();

  void AddBytesStreamed(uint64_t bytes) {
    bytes_streamed_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void AddRowsStreamed(uint64_t rows) {
    rows_streamed_.fetch_add(rows, std::memory_order_relaxed);
  }
  void AddStreamEvents(uint64_t events) {
    stream_events_.fetch_add(events, std::memory_order_relaxed);
  }
  // Gauge around each stream job's playback, cancel/disconnect included.
  void StreamStarted() {
    streams_active_.fetch_add(1, std::memory_order_relaxed);
  }
  void StreamFinished() {
    streams_active_.fetch_sub(1, std::memory_order_relaxed);
  }
  void AddMalformedRequest() {
    requests_malformed_.fetch_add(1, std::memory_order_relaxed);
  }
  // A connection died (idle timeout, EOF, reset) with a partial request
  // line buffered — a half-sent request, distinct from a clean idle close.
  void AddTruncatedRequest() {
    requests_truncated_.fetch_add(1, std::memory_order_relaxed);
  }

  // Stashes the engine MetricsReport JSON of the most recently completed
  // job; the metrics endpoint embeds it so one scrape answers both the
  // daemon-level and engine-level questions.
  void SetLastJobMetricsJson(std::string json);
  std::string LastJobMetricsJson() const;

  // Fills the job-scoped fields of `out` (connection gauges are the
  // server's to fill). Gauges are read at snapshot time; counters are
  // monotonic.
  void FillCounters(pdgf::ServeCounters* out) const;

  uint64_t max_jobs() const { return max_jobs_; }
  uint64_t depth() const { return depth_.load(std::memory_order_relaxed); }

 private:
  void Finish(const std::shared_ptr<Job>& job, std::atomic<uint64_t>* bucket);

  const uint64_t max_jobs_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> depth_{0};

  std::atomic<uint64_t> jobs_accepted_{0};
  std::atomic<uint64_t> jobs_completed_{0};
  std::atomic<uint64_t> jobs_failed_{0};
  std::atomic<uint64_t> jobs_cancelled_{0};
  std::atomic<uint64_t> jobs_rejected_{0};
  std::atomic<uint64_t> bytes_streamed_{0};
  std::atomic<uint64_t> rows_streamed_{0};
  std::atomic<uint64_t> stream_events_{0};
  std::atomic<uint64_t> streams_active_{0};
  std::atomic<uint64_t> requests_malformed_{0};
  std::atomic<uint64_t> requests_truncated_{0};

  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<Job>> running_;  // guarded by mu_
  std::string last_job_metrics_json_;                 // guarded by mu_
};

}  // namespace serve

#endif  // DBSYNTHPP_SERVE_JOB_QUEUE_H_
