#include "serve/job_queue.h"

#include "util/strings.h"

namespace serve {

using pdgf::Status;
using pdgf::StatusOr;

StatusOr<std::shared_ptr<Job>> JobQueue::Admit(const std::string& model) {
  // Depth is maintained under mu_ (not a lock-free CAS) so the
  // admit/reject decision and the registry insert are one atomic step —
  // a cancel racing an admit can never observe the id without the entry.
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.size() >= max_jobs_) {
    jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
    return pdgf::ResourceExhaustedError(pdgf::StrPrintf(
        "job queue saturated (%zu of %llu jobs running); retry later",
        running_.size(), static_cast<unsigned long long>(max_jobs_)));
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job->model = model;
  running_.emplace(job->id, job);
  depth_.store(running_.size(), std::memory_order_relaxed);
  jobs_accepted_.fetch_add(1, std::memory_order_relaxed);
  return job;
}

void JobQueue::Finish(const std::shared_ptr<Job>& job,
                      std::atomic<uint64_t>* bucket) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_.erase(job->id);
    depth_.store(running_.size(), std::memory_order_relaxed);
  }
  bucket->fetch_add(1, std::memory_order_relaxed);
}

void JobQueue::FinishOk(const std::shared_ptr<Job>& job) {
  Finish(job, &jobs_completed_);
}

void JobQueue::FinishFailed(const std::shared_ptr<Job>& job) {
  Finish(job, &jobs_failed_);
}

void JobQueue::FinishCancelled(const std::shared_ptr<Job>& job) {
  Finish(job, &jobs_cancelled_);
}

Status JobQueue::Cancel(uint64_t id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = running_.find(id);
    if (it == running_.end()) {
      return pdgf::NotFoundError(pdgf::StrPrintf(
          "no running job %llu", static_cast<unsigned long long>(id)));
    }
    job = it->second;
  }
  job->Cancel();
  return Status::Ok();
}

void JobQueue::CancelAll() {
  std::vector<std::shared_ptr<Job>> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs.reserve(running_.size());
    for (const auto& [id, job] : running_) jobs.push_back(job);
  }
  for (const auto& job : jobs) job->Cancel();
}

void JobQueue::SetLastJobMetricsJson(std::string json) {
  std::lock_guard<std::mutex> lock(mu_);
  last_job_metrics_json_ = std::move(json);
}

std::string JobQueue::LastJobMetricsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_job_metrics_json_;
}

void JobQueue::FillCounters(pdgf::ServeCounters* out) const {
  out->jobs_accepted = jobs_accepted_.load(std::memory_order_relaxed);
  out->jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  out->jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  out->jobs_cancelled = jobs_cancelled_.load(std::memory_order_relaxed);
  out->jobs_rejected = jobs_rejected_.load(std::memory_order_relaxed);
  out->bytes_streamed = bytes_streamed_.load(std::memory_order_relaxed);
  out->rows_streamed = rows_streamed_.load(std::memory_order_relaxed);
  out->stream_events = stream_events_.load(std::memory_order_relaxed);
  out->streams_active = streams_active_.load(std::memory_order_relaxed);
  out->requests_malformed =
      requests_malformed_.load(std::memory_order_relaxed);
  out->requests_truncated =
      requests_truncated_.load(std::memory_order_relaxed);
  out->queue_depth = depth_.load(std::memory_order_relaxed);
  out->max_jobs = max_jobs_;
}

}  // namespace serve
