#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "core/output/sink.h"
#include "serve/protocol.h"
#include "util/strings.h"

namespace serve {

using pdgf::Status;
using pdgf::StatusOr;

StatusOr<ServeClient> ServeClient::Connect(int port, const std::string& host,
                                           int recv_buffer_bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return pdgf::IoError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  if (recv_buffer_bytes > 0) {
    // Before connect() so the shrunken window is what gets negotiated.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &recv_buffer_bytes,
                 sizeof(recv_buffer_bytes));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return pdgf::InvalidArgumentError("bad host \"" + host + "\"");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = pdgf::IoError(pdgf::StrPrintf(
        "connect to %s:%d failed: %s", host.c_str(), port,
        std::strerror(errno)));
    ::close(fd);
    return status;
  }
  // A stuck daemon must fail the caller, not hang it: generous relative
  // to any test job, far below a CI timeout.
  timeval timeout{};
  timeout.tv_sec = 120;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Abort();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

ServeClient::~ServeClient() { Abort(); }

void ServeClient::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ServeClient::SendLine(const std::string& line) {
  if (fd_ < 0) return pdgf::FailedPreconditionError("client closed");
  return pdgf::WriteAllToFd(fd_, line + "\n");
}

StatusOr<std::string> ServeClient::ReadLine() {
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return pdgf::IoError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return pdgf::IoError(std::string("recv failed: ") +
                           std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<std::string> ServeClient::ReadBytes(size_t n) {
  while (buffer_.size() < n) {
    char chunk[65536];
    ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got == 0) return pdgf::IoError("server closed mid-payload");
    if (got < 0) {
      if (errno == EINTR) continue;
      return pdgf::IoError(std::string("recv failed: ") +
                           std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
  std::string payload = buffer_.substr(0, n);
  buffer_.erase(0, n);
  return payload;
}

StatusOr<std::string> ServeClient::Request(const std::string& line) {
  PDGF_RETURN_IF_ERROR(SendLine(line));
  return ReadLine();
}

namespace {

uint64_t FieldU64(const std::map<std::string, std::string>& fields,
                  const std::string& key) {
  auto it = fields.find(key);
  if (it == fields.end()) return 0;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

std::string FieldStr(const std::map<std::string, std::string>& fields,
                     const std::string& key) {
  auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

}  // namespace

StatusOr<StreamedJob> ServeClient::RunJob(const std::string& request_line) {
  PDGF_RETURN_IF_ERROR(SendLine(request_line));
  return ConsumeJobStream();
}

StatusOr<StreamedJob> ServeClient::ConsumeJobStream() {
  StreamedJob job;

  PDGF_ASSIGN_OR_RETURN(std::string header, ReadLine());
  job.raw = header + "\n";
  PDGF_ASSIGN_OR_RETURN(auto header_fields, ParseFlatJsonObject(header));
  std::string status = FieldStr(header_fields, "status");
  if (status == "error") {
    job.ok = false;
    job.error_code = FieldStr(header_fields, "code");
    job.error_message = FieldStr(header_fields, "message");
    return job;
  }
  if (status != "streaming") {
    return pdgf::ParseError("expected a streaming header, got: " + header);
  }
  job.job_id = FieldU64(header_fields, "job");

  while (true) {
    PDGF_ASSIGN_OR_RETURN(std::string line, ReadLine());
    job.raw += line + "\n";
    PDGF_ASSIGN_OR_RETURN(auto fields, ParseFlatJsonObject(line));

    if (fields.count("table") != 0) {
      size_t bytes = static_cast<size_t>(FieldU64(fields, "bytes"));
      PDGF_ASSIGN_OR_RETURN(std::string payload, ReadBytes(bytes));
      job.raw += payload;
      job.table_payload[FieldStr(fields, "table")] += payload;
      continue;
    }
    if (fields.count("table_digest") != 0) {
      ReceivedDigest digest;
      digest.table = FieldStr(fields, "table_digest");
      digest.rows = FieldU64(fields, "rows");
      digest.bytes = FieldU64(fields, "bytes");
      digest.hex = FieldStr(fields, "digest");
      PDGF_ASSIGN_OR_RETURN(
          digest.state,
          pdgf::TableDigest::DeserializeState(FieldStr(fields, "state")));
      job.digests.push_back(std::move(digest));
      continue;
    }
    std::string line_status = FieldStr(fields, "status");
    if (line_status == "ok") {
      job.ok = true;
      job.rows = FieldU64(fields, "rows");
      job.bytes = FieldU64(fields, "bytes");
      job.seconds = std::strtod(FieldStr(fields, "seconds").c_str(), nullptr);
      return job;
    }
    if (line_status == "error") {
      job.ok = false;
      job.error_code = FieldStr(fields, "code");
      job.error_message = FieldStr(fields, "message");
      return job;
    }
    return pdgf::ParseError("unexpected stream line: " + line);
  }
}

}  // namespace serve
