#ifndef DBSYNTHPP_SERVE_CONNECTION_H_
#define DBSYNTHPP_SERVE_CONNECTION_H_

namespace serve {

class Server;

// Serves one accepted client connection until the peer disconnects, a
// fatal protocol error occurs, or the server shuts down. Runs on the
// connection's own thread; does NOT close `fd` (the accept loop owns the
// fd's lifetime so it can shut it down during drain).
void RunConnection(Server* server, int fd);

}  // namespace serve

#endif  // DBSYNTHPP_SERVE_CONNECTION_H_
