#include "serve/protocol.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/strings.h"

namespace serve {

using pdgf::Status;
using pdgf::StatusOr;

namespace {

// Hand-rolled scanner for ONE flat JSON object — the whole request
// grammar. Kept separate from the emit side so a fuzz-ish failure test
// can hammer it without a socket in the loop.
class FlatScanner {
 public:
  explicit FlatScanner(std::string_view text) : text_(text) {}

  StatusOr<std::map<std::string, std::string>> Run() {
    std::map<std::string, std::string> out;
    SkipSpace();
    if (!Consume('{')) return Fail("expected '{'");
    SkipSpace();
    if (Consume('}')) return FinishAtEnd(std::move(out));
    while (true) {
      SkipSpace();
      std::string key;
      PDGF_RETURN_IF_ERROR(ScanString(&key));
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':' after key");
      SkipSpace();
      std::string value;
      PDGF_RETURN_IF_ERROR(ScanValue(&value));
      if (!out.emplace(std::move(key), std::move(value)).second) {
        return Fail("duplicate key");
      }
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return FinishAtEnd(std::move(out));
      return Fail("expected ',' or '}'");
    }
  }

 private:
  StatusOr<std::map<std::string, std::string>> FinishAtEnd(
      std::map<std::string, std::string> out) {
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing bytes after object");
    return out;
  }

  Status ScanValue(std::string* out) {
    if (pos_ < text_.size() && text_[pos_] == '"') return ScanString(out);
    if (ConsumeWord("true")) {
      *out = "true";
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      *out = "false";
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      *out = "null";
      return Status::Ok();
    }
    // Number: keep the raw token text so "0.01" survives verbatim and can
    // be fed back through the same scale-factor parser the CLI uses.
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a JSON value");
    *out = std::string(text_.substr(start, pos_ - start));
    // Validate the token is a number (the loop above is permissive).
    char* end = nullptr;
    std::string token(*out);
    std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Fail("malformed number");
    }
    return Status::Ok();
  }

  Status ScanString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return Fail("bad \\u escape digit");
          }
          // Requests are ASCII in practice; encode BMP code points as
          // UTF-8 so escapes round-trip, reject surrogates outright.
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Fail("surrogate \\u escapes unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown string escape");
      }
    }
    return Fail("unterminated string");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status Fail(const char* what) {
    return pdgf::ParseError(pdgf::StrPrintf("request JSON: %s at byte %zu",
                                            what, pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<int> ParseIntField(const std::string& key, const std::string& text,
                            int min, int max) {
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return pdgf::ParseError("field \"" + key + "\" is not an integer: " +
                            text);
  }
  if (value < min || value > max) {
    return pdgf::InvalidArgumentError(
        pdgf::StrPrintf("field \"%s\" out of range [%d, %d]: %d", key.c_str(),
                        min, max, value));
  }
  return value;
}

StatusOr<uint64_t> ParseUint64Field(const std::string& key,
                                    const std::string& text) {
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return pdgf::ParseError("field \"" + key +
                            "\" is not a non-negative integer: " + text);
  }
  return value;
}

}  // namespace

StatusOr<std::map<std::string, std::string>> ParseFlatJsonObject(
    std::string_view text) {
  return FlatScanner(text).Run();
}

StatusOr<JobRequest> ParseJobRequest(std::string_view line) {
  PDGF_ASSIGN_OR_RETURN(auto fields, ParseFlatJsonObject(line));
  JobRequest request;
  bool has_op = false;
  for (const auto& [key, value] : fields) {
    if (key == "op") {
      request.op = value;
      has_op = true;
    } else if (key == "model") {
      request.model = value;
    } else if (key == "scale_factor") {
      request.scale_factor = value;
    } else if (key == "format") {
      request.format = value;
    } else if (key == "node_id") {
      PDGF_ASSIGN_OR_RETURN(request.node_id,
                            ParseIntField(key, value, 0, 1 << 20));
    } else if (key == "node_count") {
      PDGF_ASSIGN_OR_RETURN(request.node_count,
                            ParseIntField(key, value, 1, 1 << 20));
    } else if (key == "workers") {
      PDGF_ASSIGN_OR_RETURN(request.workers, ParseIntField(key, value, 1, 256));
    } else if (key == "update") {
      PDGF_ASSIGN_OR_RETURN(request.update, ParseUint64Field(key, value));
    } else if (key == "digests") {
      if (value != "true" && value != "false") {
        return pdgf::ParseError("field \"digests\" must be true or false");
      }
      request.digests = value == "true";
    } else if (key == "table") {
      request.table = value;
    } else if (key == "first_row") {
      PDGF_ASSIGN_OR_RETURN(request.first_row, ParseUint64Field(key, value));
    } else if (key == "row_count") {
      PDGF_ASSIGN_OR_RETURN(request.row_count, ParseUint64Field(key, value));
    } else if (key == "rate") {
      PDGF_ASSIGN_OR_RETURN(request.rate, ParseUint64Field(key, value));
    } else if (key == "events") {
      PDGF_ASSIGN_OR_RETURN(request.events, ParseUint64Field(key, value));
    } else if (key == "snapshot") {
      if (value != "true" && value != "false") {
        return pdgf::ParseError("field \"snapshot\" must be true or false");
      }
      request.snapshot = value == "true";
    } else if (key == "job") {
      PDGF_ASSIGN_OR_RETURN(request.job_id, ParseUint64Field(key, value));
    } else {
      return pdgf::InvalidArgumentError("unknown request field \"" + key +
                                        "\"");
    }
  }
  if (!has_op) {
    if (request.model.empty()) {
      return pdgf::InvalidArgumentError(
          "request needs an \"op\" or a \"model\"");
    }
    request.op = "generate";
  }
  if (request.op == "generate" && request.model.empty()) {
    return pdgf::InvalidArgumentError("generate request needs a \"model\"");
  }
  if (request.op == "range" || request.op == "stream") {
    if (request.model.empty()) {
      return pdgf::InvalidArgumentError(request.op +
                                        " request needs a \"model\"");
    }
    if (request.table.empty()) {
      return pdgf::InvalidArgumentError(request.op +
                                        " request needs a \"table\"");
    }
    if (request.op == "range" && request.row_count == 0) {
      return pdgf::InvalidArgumentError(
          "range request needs a positive \"row_count\"");
    }
  }
  if (request.node_id >= request.node_count) {
    return pdgf::InvalidArgumentError(pdgf::StrPrintf(
        "node_id %d out of range for node_count %d", request.node_id,
        request.node_count));
  }
  return request;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out.append(pdgf::StrPrintf("\\u%04x", c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FormatErrorLine(const Status& status) {
  return pdgf::StrPrintf("{\"status\":\"error\",\"code\":\"%s\",\"message\":\"%s\"}\n",
                         pdgf::StatusCodeName(status.code()),
                         JsonEscape(status.message()).c_str());
}

std::string FormatStreamingHeader(uint64_t job_id) {
  return pdgf::StrPrintf("{\"status\":\"streaming\",\"job\":%llu}\n",
                         static_cast<unsigned long long>(job_id));
}

std::string FormatChunkHeader(std::string_view table, size_t payload_bytes) {
  return pdgf::StrPrintf("{\"table\":\"%s\",\"bytes\":%zu}\n",
                         JsonEscape(table).c_str(), payload_bytes);
}

std::string FormatTableDigestLine(std::string_view table, uint64_t rows,
                                  uint64_t bytes, std::string_view hex,
                                  std::string_view state) {
  return pdgf::StrPrintf(
      "{\"table_digest\":\"%s\",\"rows\":%llu,\"bytes\":%llu,"
      "\"digest\":\"%s\",\"state\":\"%s\"}\n",
      JsonEscape(table).c_str(), static_cast<unsigned long long>(rows),
      static_cast<unsigned long long>(bytes),
      std::string(hex).c_str(), std::string(state).c_str());
}

std::string FormatOkTrailer(uint64_t job_id, uint64_t rows, uint64_t bytes,
                            double seconds) {
  return pdgf::StrPrintf(
      "{\"status\":\"ok\",\"job\":%llu,\"rows\":%llu,\"bytes\":%llu,"
      "\"seconds\":%.6f}\n",
      static_cast<unsigned long long>(job_id),
      static_cast<unsigned long long>(rows),
      static_cast<unsigned long long>(bytes), seconds);
}

StatusOr<double> ExtractJsonNumber(std::string_view json,
                                   std::string_view key) {
  std::string needle = "\"" + std::string(key) + "\":";
  size_t at = json.find(needle);
  if (at == std::string_view::npos) {
    return pdgf::NotFoundError("key \"" + std::string(key) +
                               "\" not present in JSON text");
  }
  size_t start = at + needle.size();
  while (start < json.size() && (json[start] == ' ' || json[start] == '\n')) {
    ++start;
  }
  std::string token;
  while (start < json.size() &&
         (std::isdigit(static_cast<unsigned char>(json[start])) ||
          json[start] == '-' || json[start] == '+' || json[start] == '.' ||
          json[start] == 'e' || json[start] == 'E')) {
    token.push_back(json[start++]);
  }
  if (token.empty()) {
    return pdgf::ParseError("value for key \"" + std::string(key) +
                            "\" is not a number");
  }
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    return pdgf::ParseError("malformed number for key \"" + std::string(key) +
                            "\"");
  }
  return value;
}

}  // namespace serve
