#ifndef DBSYNTHPP_SERVE_CLIENT_H_
#define DBSYNTHPP_SERVE_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "util/hash.h"

namespace serve {

// One shard digest received in a stream trailer: the folded value for
// display plus the full mergeable accumulator state, so a client
// coordinating N node-shares can Merge() the states and compare the
// result against a single-node golden digest.
struct ReceivedDigest {
  std::string table;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  std::string hex;           // folded Digest128::Hex() of this shard
  pdgf::TableDigest state;   // mergeable accumulator
};

// A fully consumed generate stream.
struct StreamedJob {
  uint64_t job_id = 0;
  bool ok = false;
  std::string error_code;     // set when !ok
  std::string error_message;  // set when !ok
  uint64_t rows = 0;          // trailer totals
  uint64_t bytes = 0;
  double seconds = 0;
  // Payload bytes per table, chunk frames reassembled in arrival order.
  std::map<std::string, std::string> table_payload;
  std::vector<ReceivedDigest> digests;
  // Every byte received, frames and payload verbatim — the unit the
  // repeat-run byte-identity test compares.
  std::string raw;
};

// Minimal blocking client for the serve protocol (docs/serve.md). Used
// by the test tier and the `dbsynthpp request` verb; move-only, owns
// the socket.
class ServeClient {
 public:
  // `recv_buffer_bytes` > 0 shrinks SO_RCVBUF before connecting (the
  // failure tests use a tiny window to make server-side backpressure
  // kick in deterministically).
  static pdgf::StatusOr<ServeClient> Connect(
      int port, const std::string& host = "127.0.0.1",
      int recv_buffer_bytes = 0);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  // Sends one already-formatted request line (terminator added).
  pdgf::Status SendLine(const std::string& line);

  // Reads one '\n'-terminated response line (terminator stripped).
  pdgf::StatusOr<std::string> ReadLine();
  // Reads exactly `n` raw payload bytes.
  pdgf::StatusOr<std::string> ReadBytes(size_t n);

  // Sends a control request and returns its single response line.
  pdgf::StatusOr<std::string> Request(const std::string& line);

  // Sends a generate request line and consumes the whole stream. An
  // in-band job failure returns OK with job.ok == false; a transport
  // failure returns the error status.
  pdgf::StatusOr<StreamedJob> RunJob(const std::string& request_line);

  // The read half of RunJob, for callers that SendLine()d the request
  // earlier and deliberately let the server block on backpressure first
  // (the failure tests drive cancellation and saturation this way).
  pdgf::StatusOr<StreamedJob> ConsumeJobStream();

  // Hard-closes the socket without draining — the "client vanished
  // mid-stream" failure tests use this.
  void Abort();

  int fd() const { return fd_; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // read-ahead
};

}  // namespace serve

#endif  // DBSYNTHPP_SERVE_CLIENT_H_
