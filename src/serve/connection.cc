#include "serve/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>

#include "core/engine.h"
#include "core/output/formatter.h"
#include "core/output/sink.h"
#include "serve/job_queue.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/strings.h"

namespace serve {
namespace {

using pdgf::Status;
using pdgf::StatusOr;

// A request line (one flat JSON object) comfortably fits in a fraction
// of this; anything longer is a broken or hostile client.
constexpr size_t kMaxRequestBytes = 64 * 1024;

// Buffered reader returning one '\n'-terminated line at a time. Relies
// on the fd's SO_RCVTIMEO for the idle limit: a blocked recv() fails
// with EAGAIN when the peer goes silent.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // true = `line` holds a request line (terminator stripped);
  // false = clean EOF. Timeouts, resets and truncated trailing data
  // (bytes then EOF with no '\n') are errors; when the failure struck
  // with a partial line buffered, saw_truncation() reports it so the
  // caller can distinguish a half-sent request from a clean idle close.
  StatusOr<bool> ReadLine(std::string* line) {
    while (true) {
      size_t newline = buffer_.find('\n', scanned_);
      if (newline != std::string::npos) {
        line->assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        scanned_ = 0;
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      scanned_ = buffer_.size();
      if (buffer_.size() > kMaxRequestBytes) {
        return pdgf::ParseError("request line exceeds 64 KiB");
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == ENOTSOCK) {
        n = ::read(fd_, chunk, sizeof(chunk));
      }
      if (n == 0) {
        if (!buffer_.empty()) {
          saw_truncation_ = true;
          return pdgf::ParseError("connection closed mid-request");
        }
        return false;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        saw_truncation_ = !buffer_.empty();
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return pdgf::IoError("timed out waiting for a request line");
        }
        return pdgf::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // True if the last ReadLine failure (idle timeout, EOF, reset) left a
  // partial request line buffered. Oversized lines are not truncation —
  // those bytes all arrived; the client sent garbage.
  bool saw_truncation() const { return saw_truncation_; }

 private:
  int fd_;
  std::string buffer_;
  size_t scanned_ = 0;
  bool saw_truncation_ = false;
};

// The connection's shared output stream. Every table sink of a job plus
// the control-frame writer go through here, so one mutex both
// serializes frame emission (a chunk header and its payload must be
// adjacent on the wire) and makes the byte accounting exact.
struct ConnectionStream {
  int fd;
  std::mutex mu;
  JobQueue* queue;

  Status WriteLocked(std::string_view data) {
    std::lock_guard<std::mutex> lock(mu);
    PDGF_RETURN_IF_ERROR(pdgf::WriteAllToFd(fd, data));
    queue->AddBytesStreamed(data.size());
    return Status::Ok();
  }
};

// Socket-backed per-table sink: frames every engine write as a chunk
// header line plus raw payload bytes, and aborts the job's engine run
// when the job has been cancelled or the peer is gone. Writer threads
// of the same job write concurrently; the stream mutex keeps frames
// intact.
class ChunkedStreamSink final : public pdgf::Sink {
 public:
  ChunkedStreamSink(ConnectionStream* stream, std::shared_ptr<Job> job,
                    std::string table)
      : stream_(stream), job_(std::move(job)), table_(std::move(table)) {}

  Status Write(std::string_view data) override {
    if (data.empty()) return Status::Ok();
    if (job_->IsCancelled()) {
      return pdgf::CancelledError("job " + std::to_string(job_->id) +
                                  " cancelled");
    }
    std::lock_guard<std::mutex> lock(stream_->mu);
    std::string header = FormatChunkHeader(table_, data.size());
    PDGF_RETURN_IF_ERROR(pdgf::WriteAllToFd(stream_->fd, header));
    PDGF_RETURN_IF_ERROR(pdgf::WriteAllToFd(stream_->fd, data));
    stream_->queue->AddBytesStreamed(header.size() + data.size());
    AddBytes(data.size());
    return Status::Ok();
  }

 private:
  ConnectionStream* stream_;
  std::shared_ptr<Job> job_;
  std::string table_;
};

// Runs one generate request end to end. Connection-level failures (the
// peer is unreachable) come back as an error status so the caller drops
// the connection; job-level failures are reported to the peer in-band
// and return OK here.
Status HandleGenerate(Server* server, ConnectionStream* stream,
                      const JobRequest& request) {
  auto model = server->GetModel(request.model, request.scale_factor);
  if (!model.ok()) return stream->WriteLocked(FormatErrorLine(model.status()));
  auto formatter = pdgf::MakeFormatter(request.format);
  if (!formatter.ok()) {
    return stream->WriteLocked(FormatErrorLine(formatter.status()));
  }

  auto admitted = server->queue().Admit(request.model);
  if (!admitted.ok()) {
    return stream->WriteLocked(FormatErrorLine(admitted.status()));
  }
  std::shared_ptr<Job> job = *admitted;

  Status sent = stream->WriteLocked(FormatStreamingHeader(job->id));
  if (!sent.ok()) {
    server->queue().FinishFailed(job);
    return sent;
  }

  pdgf::GenerationOptions options;
  options.worker_count =
      std::min(request.workers, server->options().max_workers_per_job);
  options.work_package_rows = server->options().work_package_rows;
  options.node_count = request.node_count;
  options.node_id = request.node_id;
  options.update = request.update;
  options.sorted_output = true;
  options.compute_digests = request.digests;
  // Always collected: the metrics endpoint exposes the last job's engine
  // report, and the failure tests assert buffer-pool health through it.
  options.metrics_enabled = true;
  options.writer_threads = server->options().writer_threads;

  pdgf::GenerationEngine engine(
      (*model)->session.get(), formatter->get(),
      [stream, job](const pdgf::TableDef& table)
          -> StatusOr<std::unique_ptr<pdgf::Sink>> {
        return std::unique_ptr<pdgf::Sink>(
            std::make_unique<ChunkedStreamSink>(stream, job, table.name));
      },
      options);

  Status run = engine.Run();
  const pdgf::GenerationEngine::Stats& stats = engine.stats();

  if (!run.ok()) {
    if (run.code() == pdgf::StatusCode::kCancelled) {
      server->queue().FinishCancelled(job);
    } else {
      server->queue().FinishFailed(job);
    }
    // Best-effort: after a disconnect this write fails too, which is
    // fine — the connection is being torn down either way.
    return stream->WriteLocked(FormatErrorLine(run));
  }

  server->queue().FinishOk(job);
  server->queue().SetLastJobMetricsJson(stats.metrics.ToJson(false));

  std::string tail;
  if (request.digests) {
    const pdgf::SchemaDef& schema = (*model)->schema;
    for (size_t t = 0; t < stats.table_digests.size(); ++t) {
      const pdgf::TableDigest& digest = stats.table_digests[t];
      tail += FormatTableDigestLine(schema.tables[t].name, digest.rows(),
                                    digest.bytes(), digest.Hex(),
                                    digest.SerializeState());
    }
  }
  tail += FormatOkTrailer(job->id, stats.rows, stats.bytes, stats.seconds);
  return stream->WriteLocked(tail);
}

}  // namespace

void RunConnection(Server* server, int fd) {
  LineReader reader(fd);
  ConnectionStream stream{fd, {}, &server->queue()};
  std::string line;
  while (!server->shutting_down()) {
    auto got = reader.ReadLine(&line);
    if (!got.ok()) {
      // Truncated or oversized requests count as malformed; a clean
      // error line is attempted but the connection is done either way.
      // A failure with a partial line buffered (the SO_RCVTIMEO idle
      // drop mid-request, EOF, reset) additionally counts as truncated —
      // otherwise it is indistinguishable from a clean idle close.
      if (reader.saw_truncation()) {
        server->queue().AddTruncatedRequest();
      }
      if (got.status().code() == pdgf::StatusCode::kParseError) {
        server->queue().AddMalformedRequest();
      }
      stream.WriteLocked(FormatErrorLine(got.status()));
      return;
    }
    if (!*got) return;  // clean EOF
    if (line.empty()) continue;

    auto request = ParseJobRequest(line);
    if (!request.ok()) {
      // A complete-but-bad line is recoverable: report and keep
      // serving this connection (the stream is still line-aligned).
      server->queue().AddMalformedRequest();
      if (!stream.WriteLocked(FormatErrorLine(request.status())).ok()) {
        return;
      }
      continue;
    }

    Status handled;
    if (request->op == "generate") {
      handled = HandleGenerate(server, &stream, *request);
    } else if (request->op == "metrics") {
      handled = stream.WriteLocked(server->MetricsJson() + "\n");
    } else if (request->op == "ping") {
      handled = stream.WriteLocked("{\"status\":\"ok\",\"op\":\"ping\"}\n");
    } else if (request->op == "cancel") {
      Status cancelled = server->queue().Cancel(request->job_id);
      handled = stream.WriteLocked(
          cancelled.ok()
              ? pdgf::StrPrintf("{\"status\":\"ok\",\"op\":\"cancel\","
                                "\"job\":%llu}\n",
                                static_cast<unsigned long long>(
                                    request->job_id))
              : FormatErrorLine(cancelled));
    } else if (request->op == "shutdown") {
      stream.WriteLocked("{\"status\":\"ok\",\"op\":\"shutdown\"}\n");
      server->RequestShutdown();
      return;
    } else {
      handled = stream.WriteLocked(FormatErrorLine(
          pdgf::InvalidArgumentError("unknown op \"" + request->op + "\"")));
    }
    if (!handled.ok()) return;
  }
}

}  // namespace serve
