#include "serve/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>

#include <chrono>
#include <thread>

#include "core/cursor.h"
#include "core/engine.h"
#include "core/output/formatter.h"
#include "core/output/sink.h"
#include "core/stream.h"
#include "serve/job_queue.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/hash.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace serve {
namespace {

using pdgf::Status;
using pdgf::StatusOr;

// A request line (one flat JSON object) comfortably fits in a fraction
// of this; anything longer is a broken or hostile client.
constexpr size_t kMaxRequestBytes = 64 * 1024;

// Buffered reader returning one '\n'-terminated line at a time. Relies
// on the fd's SO_RCVTIMEO for the idle limit: a blocked recv() fails
// with EAGAIN when the peer goes silent.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // true = `line` holds a request line (terminator stripped);
  // false = clean EOF. Timeouts, resets and truncated trailing data
  // (bytes then EOF with no '\n') are errors; when the failure struck
  // with a partial line buffered, saw_truncation() reports it so the
  // caller can distinguish a half-sent request from a clean idle close.
  StatusOr<bool> ReadLine(std::string* line) {
    while (true) {
      size_t newline = buffer_.find('\n', scanned_);
      if (newline != std::string::npos) {
        line->assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        scanned_ = 0;
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      scanned_ = buffer_.size();
      if (buffer_.size() > kMaxRequestBytes) {
        return pdgf::ParseError("request line exceeds 64 KiB");
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == ENOTSOCK) {
        n = ::read(fd_, chunk, sizeof(chunk));
      }
      if (n == 0) {
        if (!buffer_.empty()) {
          saw_truncation_ = true;
          return pdgf::ParseError("connection closed mid-request");
        }
        return false;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        saw_truncation_ = !buffer_.empty();
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return pdgf::IoError("timed out waiting for a request line");
        }
        return pdgf::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // True if the last ReadLine failure (idle timeout, EOF, reset) left a
  // partial request line buffered. Oversized lines are not truncation —
  // those bytes all arrived; the client sent garbage.
  bool saw_truncation() const { return saw_truncation_; }

 private:
  int fd_;
  std::string buffer_;
  size_t scanned_ = 0;
  bool saw_truncation_ = false;
};

// The connection's shared output stream. Every table sink of a job plus
// the control-frame writer go through here, so one mutex both
// serializes frame emission (a chunk header and its payload must be
// adjacent on the wire) and makes the byte accounting exact.
struct ConnectionStream {
  int fd;
  std::mutex mu;
  JobQueue* queue;

  Status WriteLocked(std::string_view data) {
    std::lock_guard<std::mutex> lock(mu);
    PDGF_RETURN_IF_ERROR(pdgf::WriteAllToFd(fd, data));
    queue->AddBytesStreamed(data.size());
    return Status::Ok();
  }
};

// Socket-backed per-table sink: frames every engine write as a chunk
// header line plus raw payload bytes, and aborts the job's engine run
// when the job has been cancelled or the peer is gone. Writer threads
// of the same job write concurrently; the stream mutex keeps frames
// intact.
class ChunkedStreamSink final : public pdgf::Sink {
 public:
  ChunkedStreamSink(ConnectionStream* stream, std::shared_ptr<Job> job,
                    std::string table)
      : stream_(stream), job_(std::move(job)), table_(std::move(table)) {}

  Status Write(std::string_view data) override {
    if (data.empty()) return Status::Ok();
    if (job_->IsCancelled()) {
      return pdgf::CancelledError("job " + std::to_string(job_->id) +
                                  " cancelled");
    }
    std::lock_guard<std::mutex> lock(stream_->mu);
    std::string header = FormatChunkHeader(table_, data.size());
    PDGF_RETURN_IF_ERROR(pdgf::WriteAllToFd(stream_->fd, header));
    PDGF_RETURN_IF_ERROR(pdgf::WriteAllToFd(stream_->fd, data));
    stream_->queue->AddBytesStreamed(header.size() + data.size());
    AddBytes(data.size());
    return Status::Ok();
  }

 private:
  ConnectionStream* stream_;
  std::shared_ptr<Job> job_;
  std::string table_;
};

// Runs one generate request end to end. Connection-level failures (the
// peer is unreachable) come back as an error status so the caller drops
// the connection; job-level failures are reported to the peer in-band
// and return OK here.
Status HandleGenerate(Server* server, ConnectionStream* stream,
                      const JobRequest& request) {
  auto model = server->GetModel(request.model, request.scale_factor);
  if (!model.ok()) return stream->WriteLocked(FormatErrorLine(model.status()));
  auto formatter = pdgf::MakeFormatter(request.format);
  if (!formatter.ok()) {
    return stream->WriteLocked(FormatErrorLine(formatter.status()));
  }

  auto admitted = server->queue().Admit(request.model);
  if (!admitted.ok()) {
    return stream->WriteLocked(FormatErrorLine(admitted.status()));
  }
  std::shared_ptr<Job> job = *admitted;

  Status sent = stream->WriteLocked(FormatStreamingHeader(job->id));
  if (!sent.ok()) {
    server->queue().FinishFailed(job);
    return sent;
  }

  pdgf::GenerationOptions options;
  options.worker_count =
      std::min(request.workers, server->options().max_workers_per_job);
  options.work_package_rows = server->options().work_package_rows;
  options.node_count = request.node_count;
  options.node_id = request.node_id;
  options.update = request.update;
  options.sorted_output = true;
  options.compute_digests = request.digests;
  // Always collected: the metrics endpoint exposes the last job's engine
  // report, and the failure tests assert buffer-pool health through it.
  options.metrics_enabled = true;
  options.writer_threads = server->options().writer_threads;

  pdgf::GenerationEngine engine(
      (*model)->session.get(), formatter->get(),
      [stream, job](const pdgf::TableDef& table)
          -> StatusOr<std::unique_ptr<pdgf::Sink>> {
        return std::unique_ptr<pdgf::Sink>(
            std::make_unique<ChunkedStreamSink>(stream, job, table.name));
      },
      options);

  Status run = engine.Run();
  const pdgf::GenerationEngine::Stats& stats = engine.stats();

  if (!run.ok()) {
    if (run.code() == pdgf::StatusCode::kCancelled) {
      server->queue().FinishCancelled(job);
    } else {
      server->queue().FinishFailed(job);
    }
    // Best-effort: after a disconnect this write fails too, which is
    // fine — the connection is being torn down either way.
    return stream->WriteLocked(FormatErrorLine(run));
  }

  server->queue().FinishOk(job);
  server->queue().SetLastJobMetricsJson(stats.metrics.ToJson(false));

  std::string tail;
  if (request.digests) {
    const pdgf::SchemaDef& schema = (*model)->schema;
    for (size_t t = 0; t < stats.table_digests.size(); ++t) {
      const pdgf::TableDigest& digest = stats.table_digests[t];
      tail += FormatTableDigestLine(schema.tables[t].name, digest.rows(),
                                    digest.bytes(), digest.Hex(),
                                    digest.SerializeState());
    }
  }
  tail += FormatOkTrailer(job->id, stats.rows, stats.bytes, stats.seconds);
  return stream->WriteLocked(tail);
}

// Streams one arbitrary row window [first_row, first_row + row_count) of
// one table — the serve face of the RowRangeCursor. Framing is identical
// to a one-table generate job (chunk headers under the table's name, an
// optional table_digest line, the ok trailer), so the generate-path
// client consumes it without changes.
Status HandleRange(Server* server, ConnectionStream* stream,
                   const JobRequest& request) {
  auto model = server->GetModel(request.model, request.scale_factor);
  if (!model.ok()) return stream->WriteLocked(FormatErrorLine(model.status()));
  auto formatter = pdgf::MakeFormatter(request.format);
  if (!formatter.ok()) {
    return stream->WriteLocked(FormatErrorLine(formatter.status()));
  }
  const pdgf::SchemaDef& schema = (*model)->schema;
  const int table_index = schema.FindTableIndex(request.table);
  if (table_index < 0) {
    return stream->WriteLocked(FormatErrorLine(pdgf::NotFoundError(
        "model '" + request.model + "' has no table '" + request.table +
        "'")));
  }
  const pdgf::GenerationSession& session = *(*model)->session;
  const pdgf::TableDef& table =
      schema.tables[static_cast<size_t>(table_index)];

  auto admitted = server->queue().Admit(request.model);
  if (!admitted.ok()) {
    return stream->WriteLocked(FormatErrorLine(admitted.status()));
  }
  std::shared_ptr<Job> job = *admitted;
  Status sent = stream->WriteLocked(FormatStreamingHeader(job->id));
  if (!sent.ok()) {
    server->queue().FinishFailed(job);
    return sent;
  }

  const uint64_t rows = session.TableRows(table_index);
  const uint64_t first = std::min(request.first_row, rows);
  const uint64_t last =
      std::min(first + std::min(request.row_count, rows - first), rows);

  pdgf::Stopwatch stopwatch;
  ChunkedStreamSink sink(stream, job, table.name);
  pdgf::RowRangeCursor cursor(&session, table_index, first, last,
                              request.update);
  pdgf::TableDigest digest;
  std::string buffer;
  std::vector<size_t> row_offsets;
  uint64_t rows_shipped = 0;
  uint64_t bytes_shipped = 0;
  Status run = Status::Ok();
  while (cursor.Next()) {
    buffer.clear();
    formatter->get()->AppendBatch(table, cursor.batch(), &buffer,
                                  request.digests ? &row_offsets : nullptr);
    if (request.digests) {
      FoldBatchIntoDigest(cursor.batch(), buffer, row_offsets, &digest);
    }
    run = sink.Write(buffer);
    if (!run.ok()) break;
    rows_shipped += cursor.batch().row_count();
    bytes_shipped += buffer.size();
  }

  if (!run.ok()) {
    if (run.code() == pdgf::StatusCode::kCancelled) {
      server->queue().FinishCancelled(job);
    } else {
      server->queue().FinishFailed(job);
    }
    return stream->WriteLocked(FormatErrorLine(run));
  }

  server->queue().FinishOk(job);
  server->queue().AddRowsStreamed(rows_shipped);
  std::string tail;
  if (request.digests) {
    tail += FormatTableDigestLine(table.name, digest.rows(), digest.bytes(),
                                  digest.Hex(), digest.SerializeState());
  }
  tail += FormatOkTrailer(job->id, rows_shipped, bytes_shipped,
                          stopwatch.ElapsedMillis() / 1000.0);
  return stream->WriteLocked(tail);
}

// Plays a table's CDC update stream (core/stream.h) over the chunked
// framing: each chunk carries whole '\n'-terminated event lines. The
// stream digest keys every event line by its sequence number, so two
// replays of the same request compare exactly — order included.
Status HandleStream(Server* server, ConnectionStream* stream,
                    const JobRequest& request) {
  auto model = server->GetModel(request.model, request.scale_factor);
  if (!model.ok()) return stream->WriteLocked(FormatErrorLine(model.status()));
  auto formatter = pdgf::MakeFormatter(request.format);
  if (!formatter.ok()) {
    return stream->WriteLocked(FormatErrorLine(formatter.status()));
  }
  const pdgf::SchemaDef& schema = (*model)->schema;
  const int table_index = schema.FindTableIndex(request.table);
  if (table_index < 0) {
    return stream->WriteLocked(FormatErrorLine(pdgf::NotFoundError(
        "model '" + request.model + "' has no table '" + request.table +
        "'")));
  }

  auto admitted = server->queue().Admit(request.model);
  if (!admitted.ok()) {
    return stream->WriteLocked(FormatErrorLine(admitted.status()));
  }
  std::shared_ptr<Job> job = *admitted;
  Status sent = stream->WriteLocked(FormatStreamingHeader(job->id));
  if (!sent.ok()) {
    server->queue().FinishFailed(job);
    return sent;
  }

  pdgf::UpdateStreamOptions options;
  options.snapshot = request.snapshot;
  options.last_update = request.update;
  pdgf::UpdateStreamGenerator generator(
      (*model)->session.get(), table_index, formatter->get(), options);

  server->queue().StreamStarted();
  pdgf::Stopwatch stopwatch;
  ChunkedStreamSink sink(stream, job, request.table);
  pdgf::TableDigest digest;
  std::string buffer;
  uint64_t events_shipped = 0;
  uint64_t bytes_shipped = 0;
  constexpr size_t kEventsPerChunk = 256;
  Status run = Status::Ok();
  while (true) {
    size_t want = kEventsPerChunk;
    if (request.events > 0) {
      if (events_shipped >= request.events) break;
      want = std::min<uint64_t>(want, request.events - events_shipped);
    }
    buffer.clear();
    const size_t got = generator.NextEvents(&buffer, want);
    if (got == 0) break;
    if (request.digests) {
      // Key each event line by its sequence number: replays must agree
      // on content AND order.
      size_t start = 0;
      for (size_t i = 0; i < got; ++i) {
        size_t end = buffer.find('\n', start) + 1;
        digest.AddRowBytes(events_shipped + i,
                           std::string_view(buffer).substr(start, end - start));
        start = end;
      }
    }
    run = sink.Write(buffer);
    if (!run.ok()) break;
    events_shipped += got;
    bytes_shipped += buffer.size();
    server->queue().AddStreamEvents(got);
    if (request.rate > 0) {
      // Hold the requested events/second, sleeping in short slices so a
      // cancel (or shutdown) interrupts the pacing promptly.
      const double target_seconds =
          static_cast<double>(events_shipped) /
          static_cast<double>(request.rate);
      while (stopwatch.ElapsedMillis() / 1000.0 < target_seconds) {
        if (job->IsCancelled()) break;
        const double behind_ms =
            target_seconds * 1000.0 - stopwatch.ElapsedMillis();
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<int64_t>(50, std::max<int64_t>(
                                      1, static_cast<int64_t>(behind_ms)))));
      }
      if (job->IsCancelled()) {
        run = pdgf::CancelledError("job " + std::to_string(job->id) +
                                   " cancelled");
        break;
      }
    }
  }
  server->queue().StreamFinished();

  if (!run.ok()) {
    if (run.code() == pdgf::StatusCode::kCancelled) {
      server->queue().FinishCancelled(job);
    } else {
      server->queue().FinishFailed(job);
    }
    return stream->WriteLocked(FormatErrorLine(run));
  }

  server->queue().FinishOk(job);
  std::string tail;
  if (request.digests) {
    tail += FormatTableDigestLine(request.table, events_shipped,
                                  bytes_shipped, digest.Hex(),
                                  digest.SerializeState());
  }
  tail += FormatOkTrailer(job->id, events_shipped, bytes_shipped,
                          stopwatch.ElapsedMillis() / 1000.0);
  return stream->WriteLocked(tail);
}

}  // namespace

void RunConnection(Server* server, int fd) {
  LineReader reader(fd);
  ConnectionStream stream{fd, {}, &server->queue()};
  std::string line;
  while (!server->shutting_down()) {
    auto got = reader.ReadLine(&line);
    if (!got.ok()) {
      // Truncated or oversized requests count as malformed; a clean
      // error line is attempted but the connection is done either way.
      // A failure with a partial line buffered (the SO_RCVTIMEO idle
      // drop mid-request, EOF, reset) additionally counts as truncated —
      // otherwise it is indistinguishable from a clean idle close.
      if (reader.saw_truncation()) {
        server->queue().AddTruncatedRequest();
      }
      if (got.status().code() == pdgf::StatusCode::kParseError) {
        server->queue().AddMalformedRequest();
      }
      stream.WriteLocked(FormatErrorLine(got.status()));
      return;
    }
    if (!*got) return;  // clean EOF
    if (line.empty()) continue;

    auto request = ParseJobRequest(line);
    if (!request.ok()) {
      // A complete-but-bad line is recoverable: report and keep
      // serving this connection (the stream is still line-aligned).
      server->queue().AddMalformedRequest();
      if (!stream.WriteLocked(FormatErrorLine(request.status())).ok()) {
        return;
      }
      continue;
    }

    Status handled;
    if (request->op == "generate") {
      handled = HandleGenerate(server, &stream, *request);
    } else if (request->op == "range") {
      handled = HandleRange(server, &stream, *request);
    } else if (request->op == "stream") {
      handled = HandleStream(server, &stream, *request);
    } else if (request->op == "metrics") {
      handled = stream.WriteLocked(server->MetricsJson() + "\n");
    } else if (request->op == "ping") {
      handled = stream.WriteLocked("{\"status\":\"ok\",\"op\":\"ping\"}\n");
    } else if (request->op == "cancel") {
      Status cancelled = server->queue().Cancel(request->job_id);
      handled = stream.WriteLocked(
          cancelled.ok()
              ? pdgf::StrPrintf("{\"status\":\"ok\",\"op\":\"cancel\","
                                "\"job\":%llu}\n",
                                static_cast<unsigned long long>(
                                    request->job_id))
              : FormatErrorLine(cancelled));
    } else if (request->op == "shutdown") {
      stream.WriteLocked("{\"status\":\"ok\",\"op\":\"shutdown\"}\n");
      server->RequestShutdown();
      return;
    } else {
      handled = stream.WriteLocked(FormatErrorLine(
          pdgf::InvalidArgumentError("unknown op \"" + request->op + "\"")));
    }
    if (!handled.ok()) return;
  }
}

}  // namespace serve
