#ifndef DBSYNTHPP_DBSYNTH_VIRTUAL_QUERY_H_
#define DBSYNTHPP_DBSYNTH_VIRTUAL_QUERY_H_

#include <string_view>

#include "common/status.h"
#include "core/session.h"
#include "minidb/sql.h"

namespace dbsynth {

// Query execution without data generation — the paper's future-work
// feature (§6: "Given the deterministic approach of data generation, our
// tool will then also be able to directly execute the query without ever
// generating the data, which can be used to verify results for
// correctness").
//
// A GeneratedTableSource streams a model table's rows straight out of
// the generators into the SQL executor: nothing is written, nothing is
// stored; memory use is one row. Because generation is deterministic,
// the result is identical to loading the generated data into a database
// and querying it there (tested in tests/dbsynth/virtual_query_test.cc).
class GeneratedTableSource final : public minidb::RowSource {
 public:
  // `session` must outlive the source. `table_index` selects the model
  // table to expose; `update` > 0 streams that time unit's update rows
  // instead of the base data.
  GeneratedTableSource(const pdgf::GenerationSession* session,
                       int table_index, uint64_t update = 0);

  const minidb::TableSchema& schema() const override { return schema_; }
  void Scan(const std::function<bool(const minidb::Row&)>& visitor)
      const override;

  // Rows this source will stream.
  uint64_t row_count() const;

 private:
  const pdgf::GenerationSession* session_;
  int table_index_;
  uint64_t update_;
  minidb::TableSchema schema_;
};

// Parses a SELECT whose FROM names a table of the session's model and
// executes it over generated rows. With `update` > 0 the query runs over
// that time unit's update stream instead of the base data.
pdgf::StatusOr<minidb::ResultSet> ExecuteQueryWithoutData(
    const pdgf::GenerationSession& session, std::string_view sql,
    uint64_t update = 0);

}  // namespace dbsynth

#endif  // DBSYNTHPP_DBSYNTH_VIRTUAL_QUERY_H_
