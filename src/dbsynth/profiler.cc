#include "dbsynth/profiler.h"

#include <unordered_set>

#include "util/stopwatch.h"
#include "util/strings.h"

namespace dbsynth {

using pdgf::Status;
using pdgf::StatusOr;
using pdgf::Value;

const TableProfile* DatabaseProfile::FindTable(std::string_view name) const {
  for (const TableProfile& table : tables) {
    if (pdgf::EqualsIgnoreCase(table.schema.name, name)) return &table;
  }
  return nullptr;
}

StatusOr<DatabaseProfile> ProfileDatabase(SourceConnection* connection,
                                          const ExtractionOptions& options) {
  DatabaseProfile profile;
  pdgf::Stopwatch stopwatch;

  // Phase 1: schema information.
  stopwatch.Restart();
  for (const std::string& name : connection->ListTables()) {
    TableProfile table;
    PDGF_ASSIGN_OR_RETURN(table.schema, connection->GetTableSchema(name));
    table.columns.resize(table.schema.columns.size());
    profile.tables.push_back(std::move(table));
  }
  profile.timings.schema_seconds = stopwatch.ElapsedSeconds();

  // Phase 2: table sizes.
  if (options.extract_sizes) {
    stopwatch.Restart();
    for (TableProfile& table : profile.tables) {
      PDGF_ASSIGN_OR_RETURN(table.row_count,
                            connection->GetRowCount(table.schema.name));
      for (ColumnProfile& column : table.columns) {
        column.row_count = table.row_count;
      }
    }
    profile.timings.sizes_seconds = stopwatch.ElapsedSeconds();
  }

  // Phase 3: NULL probabilities (only for nullable columns; NOT NULL is
  // already known from the schema).
  if (options.extract_null_probabilities) {
    stopwatch.Restart();
    for (TableProfile& table : profile.tables) {
      for (size_t c = 0; c < table.schema.columns.size(); ++c) {
        if (!table.schema.columns[c].nullable) continue;
        PDGF_ASSIGN_OR_RETURN(
            table.columns[c].null_count,
            connection->GetNullCount(table.schema.name,
                                     table.schema.columns[c].name));
      }
    }
    profile.timings.null_seconds = stopwatch.ElapsedSeconds();
  }

  // Phase 4: min/max constraints.
  if (options.extract_min_max) {
    stopwatch.Restart();
    for (TableProfile& table : profile.tables) {
      for (size_t c = 0; c < table.schema.columns.size(); ++c) {
        PDGF_ASSIGN_OR_RETURN(
            auto min_max,
            connection->GetMinMax(table.schema.name,
                                  table.schema.columns[c].name));
        table.columns[c].min = std::move(min_max.first);
        table.columns[c].max = std::move(min_max.second);
      }
    }
    profile.timings.minmax_seconds = stopwatch.ElapsedSeconds();
  }

  // Phase 4b: histograms (optional; one scan per numeric/date column).
  if (options.extract_histograms) {
    stopwatch.Restart();
    for (TableProfile& table : profile.tables) {
      for (size_t c = 0; c < table.schema.columns.size(); ++c) {
        const minidb::ColumnDef& column = table.schema.columns[c];
        if (!pdgf::IsNumericType(column.type) &&
            column.type != pdgf::DataType::kDate) {
          continue;
        }
        PDGF_ASSIGN_OR_RETURN(
            minidb::Histogram histogram,
            connection->GetHistogram(table.schema.name, column.name,
                                     options.histogram_buckets));
        if (!histogram.buckets.empty() && histogram.total > 0) {
          table.columns[c].histogram = std::move(histogram);
          table.columns[c].has_histogram = true;
        }
      }
    }
    profile.timings.histogram_seconds = stopwatch.ElapsedSeconds();
  }

  // Phase 5: data sampling for dictionaries and Markov chains.
  if (options.sample_data) {
    stopwatch.Restart();
    for (TableProfile& table : profile.tables) {
      const size_t column_count = table.schema.columns.size();
      std::vector<bool> is_text(column_count);
      std::vector<std::unordered_set<uint64_t>> distinct(column_count);
      std::vector<uint64_t> length_sums(column_count, 0);
      std::vector<uint64_t> word_sums(column_count, 0);
      std::vector<uint64_t> non_null(column_count, 0);
      for (size_t c = 0; c < column_count; ++c) {
        is_text[c] = pdgf::IsTextType(table.schema.columns[c].type);
      }
      uint64_t visited = 0;
      Status sample_status = connection->SampleRows(
          table.schema.name, options.sampling,
          [&](const minidb::Row& row) {
            ++visited;
            for (size_t c = 0; c < column_count && c < row.size(); ++c) {
              if (!is_text[c] || row[c].is_null()) continue;
              const std::string& text = row[c].string_value();
              ColumnProfile& column = table.columns[c];
              ++non_null[c];
              distinct[c].insert(row[c].Hash());
              length_sums[c] += text.size();
              uint64_t words = 0;
              bool in_word = false;
              for (char ch : text) {
                if (ch == ' ' || ch == '\t') {
                  in_word = false;
                } else if (!in_word) {
                  in_word = true;
                  ++words;
                }
              }
              word_sums[c] += words;
              if (words > column.max_word_count) {
                column.max_word_count = words;
              }
              if (column.samples.size() < options.max_samples_per_column) {
                column.samples.push_back(text);
              }
            }
            return;
          });
      PDGF_RETURN_IF_ERROR(sample_status);
      for (size_t c = 0; c < column_count; ++c) {
        ColumnProfile& column = table.columns[c];
        column.sampled_rows = visited;
        column.sample_distinct = distinct[c].size();
        if (non_null[c] > 0) {
          column.avg_length = static_cast<double>(length_sums[c]) /
                              static_cast<double>(non_null[c]);
          column.avg_word_count = static_cast<double>(word_sums[c]) /
                                  static_cast<double>(non_null[c]);
        }
      }
    }
    profile.timings.sampling_seconds = stopwatch.ElapsedSeconds();
  }

  return profile;
}

}  // namespace dbsynth
