#ifndef DBSYNTHPP_DBSYNTH_SYNTHESIZER_H_
#define DBSYNTHPP_DBSYNTH_SYNTHESIZER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/schema.h"
#include "dbsynth/connection.h"
#include "dbsynth/model_builder.h"
#include "dbsynth/profiler.h"
#include "minidb/database.h"

namespace dbsynth {

// The end-to-end DBSynth workflow of Figure 3, as one call:
//
//   source DB --(profile)--> metadata + samples
//             --(build)----> PDGF model (+ dictionaries, Markov chains)
//             --(generate)-> synthetic rows, scaled by `scale_factor`
//             --(translate/load)--> target DB
//
// Individual stages remain available through profiler.h, model_builder.h
// and schema_translator.h for custom pipelines.

struct SynthesizeOptions {
  ExtractionOptions extraction;
  ModelBuildOptions model;
  // Scale applied when regenerating: 1.0 reproduces the original sizes,
  // 10.0 a ten-fold data set, etc.
  double scale_factor = 1.0;
  // Load path: bulk (fast) or SQL INSERT statements.
  bool use_sql_load = false;
};

struct SynthesizeReport {
  pdgf::SchemaDef schema;
  std::vector<ModelDecision> decisions;
  ExtractionTimings timings;
  uint64_t rows_loaded = 0;
  double generate_seconds = 0;
};

// Profiles `source`, builds a model, generates data at
// `options.scale_factor` and loads it into `target`. `target` may be the
// same Database as the source's backing store only if table names do not
// collide.
pdgf::StatusOr<SynthesizeReport> SynthesizeDatabase(
    SourceConnection* source, minidb::Database* target,
    const SynthesizeOptions& options);

}  // namespace dbsynth

#endif  // DBSYNTHPP_DBSYNTH_SYNTHESIZER_H_
