#include "dbsynth/synthesizer.h"

#include "core/session.h"
#include "dbsynth/schema_translator.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace dbsynth {

pdgf::StatusOr<SynthesizeReport> SynthesizeDatabase(
    SourceConnection* source, minidb::Database* target,
    const SynthesizeOptions& options) {
  SynthesizeReport report;

  // Extract (Figure 3: model creation + data extraction).
  PDGF_ASSIGN_OR_RETURN(DatabaseProfile profile,
                        ProfileDatabase(source, options.extraction));
  report.timings = profile.timings;

  // Build the PDGF model.
  PDGF_ASSIGN_OR_RETURN(ModelBuildResult model,
                        BuildModel(profile, options.model));
  report.decisions = std::move(model.decisions);
  report.schema = std::move(model.schema);

  // Resolve at the requested scale factor.
  std::map<std::string, std::string> overrides;
  overrides[options.model.scale_property] =
      pdgf::StrPrintf("%.17g", options.scale_factor);
  PDGF_ASSIGN_OR_RETURN(
      std::unique_ptr<pdgf::GenerationSession> session,
      pdgf::GenerationSession::Create(&report.schema, overrides));

  // Translate the schema into the target database and load.
  PDGF_RETURN_IF_ERROR(
      CreateTargetSchema(report.schema, target, /*replace=*/true));
  pdgf::Stopwatch stopwatch;
  if (options.use_sql_load) {
    PDGF_ASSIGN_OR_RETURN(report.rows_loaded,
                          SqlLoadGeneratedData(*session, target));
  } else {
    PDGF_ASSIGN_OR_RETURN(report.rows_loaded,
                          BulkLoadGeneratedData(*session, target));
  }
  report.generate_seconds = stopwatch.ElapsedSeconds();
  return report;
}

}  // namespace dbsynth
