#ifndef DBSYNTHPP_DBSYNTH_MODEL_BUILDER_H_
#define DBSYNTHPP_DBSYNTH_MODEL_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/schema.h"
#include "dbsynth/profiler.h"

namespace dbsynth {

// Controls the profile -> PDGF-model translation (Figure 3 "Model
// Creation" + "Data Extraction" outputs).
struct ModelBuildOptions {
  // Project seed of the generated model.
  uint64_t seed = 123456789;
  // The scale-factor property; every table size becomes
  // "<original rows> * ${SF}" so the data set scales linearly, matching
  // the paper's generated TPC-H configuration (Listing 1).
  std::string scale_property = "SF";

  // Directory for extracted artifacts (Markov models, dictionaries).
  // When empty, dictionaries are embedded inline in the model XML and
  // Markov models are kept in memory (the model then regenerates its
  // chains from the builtin corpus if re-loaded from XML).
  std::string artifact_dir;

  // Text-column modeling thresholds.
  // A sampled text column becomes a dictionary when its distinct-value
  // ratio is at most this (clearly categorical data)...
  double dictionary_distinct_ratio = 0.5;
  // ...and it has at most this many distinct sampled values.
  uint64_t dictionary_max_entries = 5000;
  // Multi-word text (avg words >= this) becomes a Markov chain.
  double markov_min_avg_words = 1.5;
  // Word-count bounds for Markov generators when the profile lacks them.
  int markov_fallback_max_words = 10;
};

// One human-readable generator decision, for the demo's "explain the
// generated model" step.
struct ModelDecision {
  std::string table;
  std::string column;
  std::string generator;
  std::string reason;
};

struct ModelBuildResult {
  pdgf::SchemaDef schema;
  std::vector<ModelDecision> decisions;
};

// Translates an extraction profile into a PDGF generation model,
// applying DBSynth's rules: referential-integrity constraints first,
// then data types, then column-name keywords, then sampled-data models
// (paper §3).
pdgf::StatusOr<ModelBuildResult> BuildModel(const DatabaseProfile& profile,
                                            const ModelBuildOptions& options);

}  // namespace dbsynth

#endif  // DBSYNTHPP_DBSYNTH_MODEL_BUILDER_H_
