#include "dbsynth/rules.h"

#include "util/strings.h"

namespace dbsynth {
namespace {

bool HasWord(const std::string& lower, std::string_view word) {
  return lower.find(word) != std::string::npos;
}

bool EndsWithWord(const std::string& lower, std::string_view word) {
  return pdgf::EndsWith(lower, word);
}

}  // namespace

NameCategory ClassifyColumnName(std::string_view column_name) {
  std::string lower = pdgf::AsciiLower(column_name);
  // Key/id columns: the paper's canonical example. Match suffixes so that
  // "l_orderkey", "cust_id", "order_no" hit but "idea" does not.
  if (EndsWithWord(lower, "key") || EndsWithWord(lower, "_id") ||
      lower == "id" || EndsWithWord(lower, "_no") ||
      EndsWithWord(lower, "number") || EndsWithWord(lower, "_sk")) {
    return NameCategory::kKey;
  }
  if (HasWord(lower, "email") || HasWord(lower, "e_mail")) {
    return NameCategory::kEmail;
  }
  if (HasWord(lower, "url") || HasWord(lower, "link") ||
      HasWord(lower, "website") || HasWord(lower, "homepage")) {
    return NameCategory::kUrl;
  }
  if (HasWord(lower, "phone") || HasWord(lower, "fax") ||
      HasWord(lower, "mobile")) {
    return NameCategory::kPhone;
  }
  if (HasWord(lower, "zip") || HasWord(lower, "postal")) {
    return NameCategory::kZip;
  }
  if (HasWord(lower, "address") || EndsWithWord(lower, "addr") ||
      HasWord(lower, "street")) {
    return NameCategory::kAddress;
  }
  if (HasWord(lower, "city") || HasWord(lower, "town")) {
    return NameCategory::kCity;
  }
  if (HasWord(lower, "state") || HasWord(lower, "province")) {
    return NameCategory::kState;
  }
  if (HasWord(lower, "country") || HasWord(lower, "nation")) {
    return NameCategory::kCountry;
  }
  if (HasWord(lower, "comment") || HasWord(lower, "description") ||
      HasWord(lower, "remark") || HasWord(lower, "note") ||
      HasWord(lower, "review") || EndsWithWord(lower, "text") ||
      HasWord(lower, "summary")) {
    return NameCategory::kComment;
  }
  if (HasWord(lower, "name") || HasWord(lower, "title")) {
    return NameCategory::kName;
  }
  if (HasWord(lower, "date") || HasWord(lower, "_dt") ||
      EndsWithWord(lower, "time")) {
    return NameCategory::kDate;
  }
  if (HasWord(lower, "price") || HasWord(lower, "cost") ||
      HasWord(lower, "amount") || HasWord(lower, "total") ||
      HasWord(lower, "charge") || HasWord(lower, "balance") ||
      HasWord(lower, "tax") || HasWord(lower, "discount") ||
      HasWord(lower, "salary") || HasWord(lower, "revenue")) {
    return NameCategory::kPrice;
  }
  if (HasWord(lower, "quantity") || EndsWithWord(lower, "qty") ||
      EndsWithWord(lower, "count") || EndsWithWord(lower, "cnt")) {
    return NameCategory::kQuantity;
  }
  if (HasWord(lower, "flag") || pdgf::StartsWith(lower, "is_") ||
      pdgf::StartsWith(lower, "has_")) {
    return NameCategory::kFlag;
  }
  return NameCategory::kNone;
}

const char* NameCategoryLabel(NameCategory category) {
  switch (category) {
    case NameCategory::kNone:
      return "none";
    case NameCategory::kKey:
      return "key";
    case NameCategory::kName:
      return "name";
    case NameCategory::kAddress:
      return "address";
    case NameCategory::kCity:
      return "city";
    case NameCategory::kState:
      return "state";
    case NameCategory::kCountry:
      return "country";
    case NameCategory::kZip:
      return "zip";
    case NameCategory::kPhone:
      return "phone";
    case NameCategory::kEmail:
      return "email";
    case NameCategory::kUrl:
      return "url";
    case NameCategory::kComment:
      return "comment";
    case NameCategory::kDate:
      return "date";
    case NameCategory::kPrice:
      return "price";
    case NameCategory::kQuantity:
      return "quantity";
    case NameCategory::kFlag:
      return "flag";
  }
  return "none";
}

}  // namespace dbsynth
