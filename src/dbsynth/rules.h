#ifndef DBSYNTHPP_DBSYNTH_RULES_H_
#define DBSYNTHPP_DBSYNTH_RULES_H_

#include <string>
#include <string_view>

namespace dbsynth {

// DBSynth's rule-based system "searches for key words in the schema
// information and adds predefined generation rules to the data model"
// (paper §3: e.g. "numeric columns with name key or id will be generated
// with an ID generator"). This is the keyword classifier those rules
// share.
enum class NameCategory {
  kNone,
  kKey,       // *key, *id, *_no, *number (numeric surrogate keys)
  kName,      // *name
  kAddress,   // *address, *addr, *street
  kCity,
  kState,
  kCountry,   // country / nation
  kZip,       // *zip*, *postal*
  kPhone,
  kEmail,
  kUrl,       // *url*, *link*, *website*
  kComment,   // *comment*, *description*, *remark*, *note*, *text*, *review*
  kDate,
  kPrice,     // *price*, *cost*, *amount*, *total*, *charge*, *balance*
  kQuantity,  // *qty*, *quantity*, *count*
  kFlag,      // *flag*, is_*
};

// Classifies a column name (case-insensitive, matches common naming
// conventions like l_orderkey, c_name, CUST_ADDRESS).
NameCategory ClassifyColumnName(std::string_view column_name);

// Human-readable category name (for explain/debug output).
const char* NameCategoryLabel(NameCategory category);

}  // namespace dbsynth

#endif  // DBSYNTHPP_DBSYNTH_RULES_H_
