#include "dbsynth/schema_translator.h"

#include <vector>

#include "core/generators/generators.h"
#include "core/output/formatter.h"
#include "minidb/sql.h"

namespace dbsynth {

using pdgf::Status;
using pdgf::StatusOr;

namespace {

// Unwraps NullGenerator layers to find a reference generator, if any.
const pdgf::DefaultReferenceGenerator* FindReference(
    const pdgf::Generator* generator) {
  while (generator != nullptr) {
    if (const auto* reference =
            dynamic_cast<const pdgf::DefaultReferenceGenerator*>(generator)) {
      return reference;
    }
    if (const auto* null_wrapper =
            dynamic_cast<const pdgf::NullGenerator*>(generator)) {
      generator = null_wrapper->inner();
      continue;
    }
    return nullptr;
  }
  return nullptr;
}

}  // namespace

minidb::TableSchema TranslateTable(const pdgf::SchemaDef& schema,
                                   const pdgf::TableDef& table) {
  (void)schema;
  minidb::TableSchema target;
  target.name = table.name;
  for (const pdgf::FieldDef& field : table.fields) {
    minidb::ColumnDef column;
    column.name = field.name;
    column.type = field.type;
    column.size = field.size;
    column.scale = field.scale;
    column.nullable = field.nullable && !field.primary;
    column.primary_key = field.primary;
    const pdgf::DefaultReferenceGenerator* reference =
        FindReference(field.generator.get());
    if (reference != nullptr) {
      column.ref_table = reference->table();
      column.ref_column = reference->field();
    }
    target.columns.push_back(std::move(column));
  }
  return target;
}

std::string TranslateToSqlDdl(const pdgf::SchemaDef& schema) {
  std::string ddl;
  for (const pdgf::TableDef& table : schema.tables) {
    ddl += minidb::BuildCreateTableSql(TranslateTable(schema, table));
    ddl += ";\n";
  }
  return ddl;
}

Status CreateTargetSchema(const pdgf::SchemaDef& schema,
                          minidb::Database* target, bool replace) {
  if (replace) {
    for (const pdgf::TableDef& table : schema.tables) {
      if (target->GetTable(table.name) != nullptr) {
        PDGF_RETURN_IF_ERROR(target->DropTable(table.name));
      }
    }
  }
  // Create in dependency order (FK targets first).
  std::vector<minidb::TableSchema> pending;
  pending.reserve(schema.tables.size());
  for (const pdgf::TableDef& table : schema.tables) {
    pending.push_back(TranslateTable(schema, table));
  }
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      bool ready = true;
      for (const minidb::ColumnDef& column : pending[i].columns) {
        if (column.is_foreign_key() &&
            target->GetTable(column.ref_table) == nullptr &&
            column.ref_table != pending[i].name) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      PDGF_RETURN_IF_ERROR(target->CreateTable(std::move(pending[i])));
      pending.erase(pending.begin() + static_cast<long>(i));
      progressed = true;
      break;
    }
    if (!progressed) {
      return pdgf::FailedPreconditionError(
          "cyclic foreign-key dependencies between tables");
    }
  }
  return Status::Ok();
}

StatusOr<uint64_t> BulkLoadGeneratedData(
    const pdgf::GenerationSession& session, minidb::Database* target) {
  uint64_t loaded = 0;
  const pdgf::SchemaDef& schema = session.schema();
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    minidb::Table* table = target->GetTable(schema.tables[t].name);
    if (table == nullptr) {
      return pdgf::NotFoundError("target table '" + schema.tables[t].name +
                                 "' does not exist");
    }
    uint64_t rows = session.TableRows(static_cast<int>(t));
    table->Reserve(table->row_count() + rows);
    std::vector<pdgf::Value> row;
    for (uint64_t r = 0; r < rows; ++r) {
      session.GenerateRow(static_cast<int>(t), r, 0, &row);
      PDGF_RETURN_IF_ERROR(table->Insert(row));
      ++loaded;
    }
  }
  return loaded;
}

StatusOr<uint64_t> FastLoadGeneratedData(
    const pdgf::GenerationSession& session, minidb::Database* target) {
  uint64_t loaded = 0;
  const pdgf::SchemaDef& schema = session.schema();
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    minidb::Table* table = target->GetTable(schema.tables[t].name);
    if (table == nullptr) {
      return pdgf::NotFoundError("target table '" + schema.tables[t].name +
                                 "' does not exist");
    }
    const std::vector<minidb::ColumnDef>& columns = table->schema().columns;
    uint64_t rows = session.TableRows(static_cast<int>(t));
    table->Reserve(table->row_count() + rows);
    PDGF_RETURN_IF_ERROR(table->BulkLoadBegin());
    std::vector<pdgf::Value> generated;
    for (uint64_t r = 0; r < rows; ++r) {
      session.GenerateRow(static_cast<int>(t), r, 0, &generated);
      if (generated.size() != columns.size()) {
        return pdgf::InvalidArgumentError(
            "generated row arity " + std::to_string(generated.size()) +
            " != column count for table '" + schema.tables[t].name + "'");
      }
      // Coerce once here; the bulk path below skips re-validation.
      minidb::Row coerced;
      coerced.reserve(generated.size());
      for (size_t c = 0; c < generated.size(); ++c) {
        PDGF_ASSIGN_OR_RETURN(pdgf::Value value,
                              minidb::CoerceValue(columns[c], generated[c]));
        coerced.push_back(std::move(value));
      }
      PDGF_RETURN_IF_ERROR(table->BulkLoadAppend(std::move(coerced)));
      ++loaded;
    }
    PDGF_RETURN_IF_ERROR(table->BulkLoadFinish());
  }
  return loaded;
}

StatusOr<uint64_t> SqlLoadGeneratedData(const pdgf::GenerationSession& session,
                                        minidb::Database* target,
                                        int batch_rows) {
  if (batch_rows < 1) batch_rows = 1;
  uint64_t loaded = 0;
  const pdgf::SchemaDef& schema = session.schema();
  pdgf::SqlInsertFormatter formatter(batch_rows);
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    const pdgf::TableDef& table = schema.tables[t];
    uint64_t rows = session.TableRows(static_cast<int>(t));
    std::vector<std::vector<pdgf::Value>> batch;
    batch.reserve(static_cast<size_t>(batch_rows));
    std::vector<pdgf::Value> row;
    for (uint64_t r = 0; r < rows; ++r) {
      session.GenerateRow(static_cast<int>(t), r, 0, &row);
      batch.push_back(row);
      if (batch.size() == static_cast<size_t>(batch_rows) || r + 1 == rows) {
        std::string sql;
        formatter.AppendBatch(table, batch, &sql);
        PDGF_ASSIGN_OR_RETURN(auto results,
                              minidb::ExecuteSqlScript(target, sql));
        for (const minidb::ResultSet& result : results) {
          loaded += result.affected_rows;
        }
        batch.clear();
      }
    }
  }
  return loaded;
}

StatusOr<uint64_t> ApplyUpdateStream(const pdgf::GenerationSession& session,
                                     minidb::Database* target,
                                     uint64_t update) {
  if (update == 0) {
    return pdgf::InvalidArgumentError(
        "update 0 is the base load; use BulkLoadGeneratedData");
  }
  uint64_t rewritten = 0;
  const pdgf::SchemaDef& schema = session.schema();
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    int table_index = static_cast<int>(t);
    if (session.TableUpdates(table_index) <= 1) {
      continue;  // static table: no update stream
    }
    minidb::Table* table = target->GetTable(schema.tables[t].name);
    if (table == nullptr) {
      return pdgf::NotFoundError("target table '" + schema.tables[t].name +
                                 "' does not exist");
    }
    uint64_t rows = session.TableRows(table_index);
    if (table->row_count() < rows) {
      return pdgf::FailedPreconditionError(
          "target table '" + schema.tables[t].name +
          "' is smaller than the base data; load it first");
    }
    std::vector<pdgf::Value> generated;
    minidb::Row row;
    for (uint64_t r = 0; r < rows; ++r) {
      if (!session.RowChangesInUpdate(table_index, r, update)) continue;
      session.GenerateRow(table_index, r, update, &generated);
      PDGF_RETURN_IF_ERROR(
          table->ReadRow(static_cast<size_t>(r), &row));
      for (size_t c = 0; c < row.size() && c < generated.size(); ++c) {
        PDGF_ASSIGN_OR_RETURN(
            row[c],
            minidb::CoerceValue(table->schema().columns[c], generated[c]));
      }
      PDGF_RETURN_IF_ERROR(table->WriteRow(static_cast<size_t>(r), row));
      ++rewritten;
    }
  }
  return rewritten;
}

}  // namespace dbsynth
