#include "dbsynth/virtual_table.h"

#include <algorithm>
#include <charconv>
#include <map>
#include <utility>
#include <vector>

#include "core/batch.h"
#include "core/config.h"
#include "core/cursor.h"
#include "core/generators/generators.h"
#include "dbsynth/schema_translator.h"
#include "minidb/sql_parser.h"
#include "minidb/table.h"

namespace dbsynth {

namespace {

// Floor division for the key inversion: C++ `/` truncates toward zero,
// which is wrong for negative numerators.
__int128 FloorDiv(__int128 a, __int128 b) {
  __int128 q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

__int128 CeilDiv(__int128 a, __int128 b) { return -FloorDiv(-a, b); }

pdgf::StatusOr<uint64_t> ParseModuleUint(const std::string& what,
                                         const std::string& text) {
  uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return pdgf::InvalidArgumentError("dbsynth module argument " + what +
                                      " must be a non-negative integer, got '" +
                                      text + "'");
  }
  return value;
}

}  // namespace

GeneratedVirtualTable::GeneratedVirtualTable(
    const pdgf::GenerationSession* session, int table_index, uint64_t update)
    : session_(session),
      table_index_(table_index),
      update_(update),
      schema_(TranslateTable(
          session->schema(),
          session->schema().tables[static_cast<size_t>(table_index)])) {
  // Prove (or refuse) the key inversion once. TranslateTable maps model
  // fields to columns 1:1, so the indexable column's index is also the
  // field index whose generator we inspect. Mutable PKs never qualify:
  // the inversion must hold at every time unit.
  const int pk_column = minidb::Table::IndexableKeyColumn(schema_);
  if (pk_column < 0) return;
  const pdgf::FieldDef& field =
      session_->schema().tables[static_cast<size_t>(table_index_)]
          .fields[static_cast<size_t>(pk_column)];
  if (field.mutable_across_updates) return;
  const auto* id =
      dynamic_cast<const pdgf::IdGenerator*>(field.generator.get());
  if (id == nullptr || id->step() <= 0) return;
  key_linear_ = true;
  key_start_ = id->start();
  key_step_ = id->step();
}

GeneratedVirtualTable::GeneratedVirtualTable(
    std::shared_ptr<const VirtualModel> model, int table_index,
    uint64_t update)
    : GeneratedVirtualTable(model->session.get(), table_index, update) {
  owner_ = std::move(model);
}

uint64_t GeneratedVirtualTable::row_count() const {
  return session_->TableRows(table_index_);
}

void GeneratedVirtualTable::ScanRange(
    uint64_t first_row, uint64_t last_row,
    const std::function<bool(const minidb::Row&)>& visitor) const {
  last_row = std::min(last_row, row_count());
  if (first_row >= last_row) return;
  pdgf::RowRangeCursor cursor(session_, table_index_, first_row, last_row,
                              update_);
  std::vector<pdgf::Value> row;
  minidb::Row coerced(schema_.columns.size());
  while (cursor.Next()) {
    const pdgf::RowBatch& batch = cursor.batch();
    for (size_t i = 0; i < batch.row_count(); ++i) {
      batch.CopyRowTo(i, &row);
      // Coerce to the column storage types so results are identical to
      // querying a database the generated data was loaded into.
      for (size_t c = 0; c < coerced.size() && c < row.size(); ++c) {
        auto value = minidb::CoerceValue(schema_.columns[c], row[c]);
        coerced[c] = value.ok() ? std::move(*value) : row[c];
      }
      if (!visitor(coerced)) return;
    }
  }
}

bool GeneratedVirtualTable::KeyRangeToRows(int64_t min_key, int64_t max_key,
                                           uint64_t* first,
                                           uint64_t* last) const {
  if (!key_linear_) return false;
  // key(row) = start + row * step, step > 0: the rows with key inside
  // [min_key, max_key] are exactly [ceil((min-start)/step),
  // floor((max-start)/step)] before clamping to the table.
  const __int128 lo =
      CeilDiv(static_cast<__int128>(min_key) - key_start_, key_step_);
  const __int128 hi =
      FloorDiv(static_cast<__int128>(max_key) - key_start_, key_step_);
  const __int128 rows = static_cast<__int128>(row_count());
  __int128 begin = lo < 0 ? 0 : lo;
  __int128 end = hi + 1 > rows ? rows : hi + 1;
  if (end < begin) end = begin;
  *first = static_cast<uint64_t>(begin > rows ? rows : begin);
  *last = static_cast<uint64_t>(end < 0 ? 0 : end);
  return true;
}

void RegisterDbsynthModule(minidb::Database* database,
                           ModelResolver resolver) {
  if (!resolver) {
    resolver = [](const std::string& model) {
      return pdgf::LoadSchemaFromFile(model);
    };
  }
  // One session per (model, sf), shared by every virtual table the
  // database creates through this module.
  auto cache = std::make_shared<
      std::map<std::string, std::shared_ptr<const VirtualModel>>>();
  database->RegisterVirtualModule(
      "dbsynth",
      [resolver = std::move(resolver), cache](
          const std::string& table_name, const std::vector<std::string>& args)
          -> pdgf::StatusOr<std::unique_ptr<minidb::VirtualTable>> {
        (void)table_name;
        if (args.size() < 2 || args.size() > 4) {
          return pdgf::InvalidArgumentError(
              "usage: USING dbsynth(model, table[, sf[, update]])");
        }
        const std::string& model = args[0];
        const std::string& table = args[1];
        const std::string sf = args.size() >= 3 ? args[2] : "";
        uint64_t update = 0;
        if (args.size() >= 4) {
          PDGF_ASSIGN_OR_RETURN(update, ParseModuleUint("update", args[3]));
        }
        const std::string cache_key = model + "@" + sf;
        std::shared_ptr<const VirtualModel> shared;
        auto it = cache->find(cache_key);
        if (it != cache->end()) {
          shared = it->second;
        } else {
          auto owned = std::make_shared<VirtualModel>();
          PDGF_ASSIGN_OR_RETURN(owned->schema, resolver(model));
          std::map<std::string, std::string> overrides;
          if (!sf.empty()) overrides["SF"] = sf;
          PDGF_ASSIGN_OR_RETURN(
              owned->session,
              pdgf::GenerationSession::Create(&owned->schema, overrides));
          shared = owned;
          (*cache)[cache_key] = shared;
        }
        const int table_index = shared->schema.FindTableIndex(table);
        if (table_index < 0) {
          return pdgf::NotFoundError("model has no table '" + table + "'");
        }
        if (update > shared->session->TableUpdates(table_index)) {
          return pdgf::InvalidArgumentError(
              "update " + std::to_string(update) + " is out of range (table '" +
              table + "' has " +
              std::to_string(shared->session->TableUpdates(table_index)) +
              " time units)");
        }
        return std::unique_ptr<minidb::VirtualTable>(
            std::make_unique<GeneratedVirtualTable>(std::move(shared),
                                                    table_index, update));
      });
}

pdgf::StatusOr<minidb::ResultSet> ExecuteQueryWithoutData(
    const pdgf::GenerationSession& session, std::string_view sql,
    uint64_t update) {
  PDGF_ASSIGN_OR_RETURN(minidb::Statement statement, minidb::ParseSql(sql));
  const auto* select = std::get_if<minidb::SelectStatement>(&statement);
  if (select == nullptr) {
    return pdgf::InvalidArgumentError(
        "queries without data must be SELECT statements");
  }
  int table_index = session.schema().FindTableIndex(select->table);
  if (table_index < 0) {
    return pdgf::NotFoundError("model has no table '" + select->table + "'");
  }
  GeneratedVirtualTable table(&session, table_index, update);
  return minidb::ExecuteSelectOnVirtualTable(table, *select);
}

}  // namespace dbsynth
