#ifndef DBSYNTHPP_DBSYNTH_PROFILER_H_
#define DBSYNTHPP_DBSYNTH_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "dbsynth/connection.h"
#include "minidb/catalog.h"

namespace dbsynth {

// What to extract, and how (paper §3: "a configurable level of
// additional information of the data model").
struct ExtractionOptions {
  bool extract_sizes = true;
  bool extract_null_probabilities = true;
  bool extract_min_max = true;
  // Equi-width histograms over numeric/date columns (opt-in: they cost a
  // full scan per column, like min/max).
  bool extract_histograms = false;
  int histogram_buckets = 24;
  // Sampling feeds dictionaries and Markov chains; requires permission to
  // read data, not just metadata.
  bool sample_data = true;
  SamplingSpec sampling;
  // Text values retained per column during sampling (memory bound).
  uint64_t max_samples_per_column = 200000;
};

// Wall-clock seconds of each extraction phase — the quantities the
// paper's final experiment reports (§4: schema 600ms, sizes 1.3s, NULL
// 600ms, min/max 10s, Markov samples 0.8s-200s).
struct ExtractionTimings {
  double schema_seconds = 0;
  double sizes_seconds = 0;
  double null_seconds = 0;
  double minmax_seconds = 0;
  double histogram_seconds = 0;
  double sampling_seconds = 0;

  double total() const {
    return schema_seconds + sizes_seconds + null_seconds + minmax_seconds +
           histogram_seconds + sampling_seconds;
  }
};

// Everything learned about one column.
struct ColumnProfile {
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  pdgf::Value min;
  pdgf::Value max;
  // Equi-width histogram (numeric/date columns, when extracted).
  bool has_histogram = false;
  minidb::Histogram histogram;
  // Sampled non-NULL values, rendered as text (text columns only).
  std::vector<std::string> samples;
  uint64_t sampled_rows = 0;     // rows visited while sampling
  uint64_t sample_distinct = 0;  // distinct sampled values
  double avg_word_count = 0;
  uint64_t max_word_count = 0;
  double avg_length = 0;

  double null_probability() const {
    return row_count == 0 ? 0
                          : static_cast<double>(null_count) /
                                static_cast<double>(row_count);
  }
};

// Everything learned about one table.
struct TableProfile {
  minidb::TableSchema schema;
  uint64_t row_count = 0;
  std::vector<ColumnProfile> columns;  // parallel to schema.columns
};

// The full extraction result (the input to model building, Figure 3's
// "Meta Data" plus samples).
struct DatabaseProfile {
  std::vector<TableProfile> tables;
  ExtractionTimings timings;

  const TableProfile* FindTable(std::string_view name) const;
};

// Runs the metadata/data extraction phases against a source connection,
// timing each phase separately.
pdgf::StatusOr<DatabaseProfile> ProfileDatabase(
    SourceConnection* connection, const ExtractionOptions& options);

}  // namespace dbsynth

#endif  // DBSYNTHPP_DBSYNTH_PROFILER_H_
