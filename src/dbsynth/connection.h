#ifndef DBSYNTHPP_DBSYNTH_CONNECTION_H_
#define DBSYNTHPP_DBSYNTH_CONNECTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "minidb/database.h"
#include "minidb/stats.h"

namespace dbsynth {

// How DBSynth samples the source data (paper §3: "Users can specify the
// amount of data sampled and the sampling strategy").
struct SamplingSpec {
  enum class Strategy {
    kFull,       // every row
    kFraction,   // Bernoulli sample with probability `fraction`
    kFirstN,     // the first `limit` rows
    kReservoir,  // uniform `limit`-row reservoir sample
  };

  Strategy strategy = Strategy::kFraction;
  double fraction = 0.01;
  uint64_t limit = 10000;
  uint64_t seed = 42;  // randomized strategies are deterministic per seed
};

// The database-access surface DBSynth needs — the role JDBC plays in the
// paper (Figure 3). Each method corresponds to one metadata/data query
// against the source system; the profiler times them per phase.
class SourceConnection {
 public:
  virtual ~SourceConnection() = default;

  SourceConnection(const SourceConnection&) = delete;
  SourceConnection& operator=(const SourceConnection&) = delete;

  // Schema phase.
  virtual std::vector<std::string> ListTables() = 0;
  virtual pdgf::StatusOr<minidb::TableSchema> GetTableSchema(
      const std::string& table) = 0;

  // Size phase.
  virtual pdgf::StatusOr<uint64_t> GetRowCount(const std::string& table) = 0;

  // NULL-probability phase.
  virtual pdgf::StatusOr<uint64_t> GetNullCount(const std::string& table,
                                                const std::string& column) = 0;

  // Min/max phase. Returns (min, max); both NULL for an all-NULL column.
  virtual pdgf::StatusOr<std::pair<pdgf::Value, pdgf::Value>> GetMinMax(
      const std::string& table, const std::string& column) = 0;

  // Histogram phase: an equi-width histogram over a numeric/date column
  // (paper §3 lists histograms among the extractable statistics). An
  // empty histogram (no buckets) signals a non-histogrammable column.
  virtual pdgf::StatusOr<minidb::Histogram> GetHistogram(
      const std::string& table, const std::string& column,
      int bucket_count) = 0;

  // Sampling phase: invokes `visitor` for each sampled row.
  virtual pdgf::Status SampleRows(
      const std::string& table, const SamplingSpec& spec,
      const std::function<void(const minidb::Row&)>& visitor) = 0;

 protected:
  SourceConnection() = default;
};

// SourceConnection over an embedded MiniDB instance. Metadata probes are
// issued as real SQL (SELECT COUNT/MIN/MAX...) so the access pattern —
// and its cost profile — mirrors profiling a live DBMS through JDBC.
class MiniDbConnection final : public SourceConnection {
 public:
  // `database` must outlive the connection.
  explicit MiniDbConnection(minidb::Database* database)
      : database_(database) {}

  std::vector<std::string> ListTables() override;
  pdgf::StatusOr<minidb::TableSchema> GetTableSchema(
      const std::string& table) override;
  pdgf::StatusOr<uint64_t> GetRowCount(const std::string& table) override;
  pdgf::StatusOr<uint64_t> GetNullCount(const std::string& table,
                                        const std::string& column) override;
  pdgf::StatusOr<std::pair<pdgf::Value, pdgf::Value>> GetMinMax(
      const std::string& table, const std::string& column) override;
  pdgf::StatusOr<minidb::Histogram> GetHistogram(
      const std::string& table, const std::string& column,
      int bucket_count) override;
  pdgf::Status SampleRows(
      const std::string& table, const SamplingSpec& spec,
      const std::function<void(const minidb::Row&)>& visitor) override;

 private:
  minidb::Database* database_;
};

}  // namespace dbsynth

#endif  // DBSYNTHPP_DBSYNTH_CONNECTION_H_
