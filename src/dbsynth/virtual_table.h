#ifndef DBSYNTHPP_DBSYNTH_VIRTUAL_TABLE_H_
#define DBSYNTHPP_DBSYNTH_VIRTUAL_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/session.h"
#include "minidb/database.h"
#include "minidb/sql.h"
#include "minidb/virtual_table.h"

namespace dbsynth {

// Query execution without data generation — the paper's future-work
// feature (§6: "Given the deterministic approach of data generation, our
// tool will then also be able to directly execute the query without ever
// generating the data, which can be used to verify results for
// correctness").
//
// A GeneratedVirtualTable streams a model table's rows straight out of
// the generators (via a core RowRangeCursor) into the SQL executor:
// nothing is written, nothing is stored; memory use is one batch.
// Because generation is deterministic, the result is identical to
// loading the generated data into a database and querying it there
// (tested in tests/dbsynth/virtual_table_test.cc).

// Resolves a model argument to a schema. The default resolver loads a
// model file from disk; the CLI installs one that also knows the bundled
// workload names (tpch, ssb, imdb).
using ModelResolver =
    std::function<pdgf::StatusOr<pdgf::SchemaDef>(const std::string& model)>;

// A schema plus its resolved generation session, shared by every virtual
// table created from the same (model, sf) pair. The session points into
// the schema, so the two must live and die together.
struct VirtualModel {
  pdgf::SchemaDef schema;
  std::unique_ptr<pdgf::GenerationSession> session;
};

class GeneratedVirtualTable final : public minidb::VirtualTable {
 public:
  // Non-owning view: `session` must outlive the table. `table_index`
  // selects the model table to expose; `update` > 0 exposes that time
  // unit's update rows instead of the base data.
  GeneratedVirtualTable(const pdgf::GenerationSession* session,
                        int table_index, uint64_t update = 0);

  // Owning form used by the catalog module: keeps the model (and thus
  // the session) alive for the table's lifetime.
  GeneratedVirtualTable(std::shared_ptr<const VirtualModel> model,
                        int table_index, uint64_t update);

  const minidb::TableSchema& schema() const override { return schema_; }
  uint64_t row_count() const override;
  void ScanRange(uint64_t first_row, uint64_t last_row,
                 const std::function<bool(const minidb::Row&)>& visitor)
      const override;

  // PK pushdown: when the primary key field is an IdGenerator (value =
  // start + row * step with step > 0) the key interval inverts to a row
  // window exactly; proven at construction, never guessed.
  bool KeyRangeToRows(int64_t min_key, int64_t max_key, uint64_t* first,
                      uint64_t* last) const override;

 private:
  std::shared_ptr<const VirtualModel> owner_;  // null for non-owning views
  const pdgf::GenerationSession* session_;
  int table_index_;
  uint64_t update_;
  minidb::TableSchema schema_;
  bool key_linear_ = false;
  int64_t key_start_ = 0;
  int64_t key_step_ = 1;
};

// Registers the `dbsynth` virtual table module on `database`:
//
//   CREATE VIRTUAL TABLE t USING dbsynth(model, table[, sf[, update]])
//
// `model` is resolved through `resolver` (file path by default), `sf`
// overrides the SF property, `update` > 0 exposes that time unit's
// update rows. Sessions are cached per (model, sf) and shared across the
// database's virtual tables.
void RegisterDbsynthModule(minidb::Database* database,
                           ModelResolver resolver = {});

// Parses a SELECT whose FROM names a table of the session's model and
// executes it over generated rows — with row-window and PK-predicate
// pushdown, so point queries touch a handful of rows regardless of SF.
// With `update` > 0 the query runs over that time unit's update stream
// instead of the base data.
pdgf::StatusOr<minidb::ResultSet> ExecuteQueryWithoutData(
    const pdgf::GenerationSession& session, std::string_view sql,
    uint64_t update = 0);

}  // namespace dbsynth

#endif  // DBSYNTHPP_DBSYNTH_VIRTUAL_TABLE_H_
