#include "dbsynth/query_generator.h"

#include <algorithm>

#include "util/rng.h"
#include "util/strings.h"

namespace dbsynth {
namespace {

using pdgf::FieldDef;
using pdgf::TableDef;
using pdgf::Value;
using pdgf::Xorshift64;

// Renders a value as a SQL literal of its column.
std::string SqlLiteral(const Value& value) {
  if (value.is_null()) return "NULL";
  switch (value.kind()) {
    case Value::Kind::kString: {
      std::string out = "'";
      for (char c : value.string_value()) {
        if (c == '\'') out.push_back('\'');
        out.push_back(c);
      }
      out.push_back('\'');
      return out;
    }
    case Value::Kind::kDate:
      return "DATE '" + value.ToText() + "'";
    case Value::Kind::kBool:
      return value.bool_value() ? "TRUE" : "FALSE";
    default:
      return value.ToText();
  }
}

bool IsCategorical(const FieldDef& field) {
  // GROUP BY targets: short text columns (dictionary-like).
  return pdgf::IsTextType(field.type) &&
         (field.size == 0 || field.size <= 30);
}

bool IsAggregatable(const FieldDef& field) {
  return pdgf::IsNumericType(field.type);
}

bool IsComparable(const FieldDef& field) {
  return pdgf::IsNumericType(field.type) ||
         field.type == pdgf::DataType::kDate;
}

}  // namespace

QueryGenerator::QueryGenerator(const pdgf::GenerationSession* session,
                               QueryWorkloadOptions options)
    : session_(session), options_(options) {}

std::string QueryGenerator::Query(uint64_t index) const {
  const pdgf::SchemaDef& schema = session_->schema();
  Xorshift64 rng(pdgf::DeriveSeed(schema.seed ^ options_.seed, index));

  // Pick a non-empty table.
  int table_index = 0;
  for (int attempt = 0; attempt < 16; ++attempt) {
    table_index =
        static_cast<int>(rng.NextBounded(schema.tables.size()));
    if (session_->TableRows(table_index) > 0) break;
  }
  const TableDef& table =
      schema.tables[static_cast<size_t>(table_index)];
  uint64_t rows = session_->TableRows(table_index);

  // An in-domain constant: run the column's generator at a random row.
  auto constant_for = [&](int field_index) {
    Value value;
    uint64_t probe_row = rng.NextBounded(rows == 0 ? 1 : rows);
    session_->GenerateField(table_index, field_index, probe_row, 0,
                            &value);
    return value;
  };

  // WHERE clause: conjunctive predicates over comparable/text columns.
  std::vector<int> predicate_fields;
  for (size_t f = 0; f < table.fields.size(); ++f) {
    if (IsComparable(table.fields[f]) ||
        pdgf::IsTextType(table.fields[f].type)) {
      predicate_fields.push_back(static_cast<int>(f));
    }
  }
  std::string where;
  int predicate_count = static_cast<int>(
      rng.NextBounded(static_cast<uint64_t>(options_.max_predicates) + 1));
  for (int p = 0;
       p < predicate_count && !predicate_fields.empty(); ++p) {
    int field_index = predicate_fields[rng.NextBounded(
        predicate_fields.size())];
    const FieldDef& field =
        table.fields[static_cast<size_t>(field_index)];
    Value constant = constant_for(field_index);
    std::string predicate;
    if (constant.is_null()) {
      predicate = field.name + " IS NOT NULL";
    } else if (IsComparable(field)) {
      switch (rng.NextBounded(3)) {
        case 0:
          predicate = field.name + " <= " + SqlLiteral(constant);
          break;
        case 1:
          predicate = field.name + " >= " + SqlLiteral(constant);
          break;
        default: {
          Value other = constant_for(field_index);
          if (other.is_null()) other = constant;
          const Value& lo =
              constant.Compare(other) <= 0 ? constant : other;
          const Value& hi =
              constant.Compare(other) <= 0 ? other : constant;
          predicate = field.name + " BETWEEN " + SqlLiteral(lo) +
                      " AND " + SqlLiteral(hi);
        }
      }
    } else {
      // Text: equality against a generated value, or a LIKE prefix.
      if (rng.NextDouble() < 0.5 ||
          constant.string_value().size() < 2) {
        predicate = field.name + " = " + SqlLiteral(constant);
      } else {
        std::string prefix = constant.string_value().substr(
            0, 1 + rng.NextBounded(3));
        Value like_value = Value::String(prefix + "%");
        predicate = field.name + " LIKE " + SqlLiteral(like_value);
      }
    }
    where += (where.empty() ? " WHERE " : " AND ") + predicate;
  }

  // Shape: aggregate or projection.
  if (rng.NextDouble() < options_.aggregate_probability) {
    std::vector<int> aggregate_fields;
    for (size_t f = 0; f < table.fields.size(); ++f) {
      if (IsAggregatable(table.fields[f])) {
        aggregate_fields.push_back(static_cast<int>(f));
      }
    }
    std::string select_list = "COUNT(*)";
    if (!aggregate_fields.empty()) {
      const FieldDef& field = table.fields[static_cast<size_t>(
          aggregate_fields[rng.NextBounded(aggregate_fields.size())])];
      static constexpr const char* kFunctions[] = {"SUM", "AVG", "MIN",
                                                   "MAX"};
      select_list += pdgf::StrPrintf(
          ", %s(%s)", kFunctions[rng.NextBounded(4)], field.name.c_str());
    }
    // Optional GROUP BY over a categorical column.
    std::vector<int> group_fields;
    for (size_t f = 0; f < table.fields.size(); ++f) {
      if (IsCategorical(table.fields[f])) {
        group_fields.push_back(static_cast<int>(f));
      }
    }
    if (!group_fields.empty() &&
        rng.NextDouble() < options_.group_by_probability) {
      const FieldDef& field = table.fields[static_cast<size_t>(
          group_fields[rng.NextBounded(group_fields.size())])];
      return "SELECT " + field.name + ", " + select_list + " FROM " +
             table.name + where + " GROUP BY " + field.name +
             " ORDER BY " + field.name;
    }
    return "SELECT " + select_list + " FROM " + table.name + where;
  }

  // Projection: 1..3 columns, optional ORDER BY + LIMIT.
  size_t column_count = 1 + rng.NextBounded(
      std::min<size_t>(3, table.fields.size()));
  std::vector<std::string> columns;
  for (size_t c = 0; c < column_count; ++c) {
    columns.push_back(
        table.fields[rng.NextBounded(table.fields.size())].name);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()),
                columns.end());
  std::string sql =
      "SELECT " + pdgf::Join(columns, ", ") + " FROM " + table.name + where;
  if (rng.NextDouble() < options_.order_by_probability) {
    sql += " ORDER BY " + columns[rng.NextBounded(columns.size())];
    if (rng.NextDouble() < 0.5) sql += " DESC";
  }
  sql += pdgf::StrPrintf(
      " LIMIT %d",
      1 + static_cast<int>(
              rng.NextBounded(static_cast<uint64_t>(options_.limit_max))));
  return sql;
}

std::vector<std::string> QueryGenerator::Workload(uint64_t count) const {
  std::vector<std::string> queries;
  queries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    queries.push_back(Query(i));
  }
  return queries;
}

}  // namespace dbsynth
