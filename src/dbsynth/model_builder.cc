#include "dbsynth/model_builder.h"

#include <algorithm>
#include <map>

#include "core/generators/generators.h"
#include "core/text/builtin_dictionaries.h"
#include "dbsynth/rules.h"
#include "util/files.h"
#include "util/strings.h"

namespace dbsynth {

using pdgf::DataType;
using pdgf::GeneratorPtr;
using pdgf::Status;
using pdgf::StatusOr;
using pdgf::Value;

namespace {

// Defaults when min/max extraction was off or the column was all NULL.
int64_t MinIntOr(const ColumnProfile& column, int64_t fallback) {
  return column.min.is_null() ? fallback : column.min.AsInt();
}
int64_t MaxIntOr(const ColumnProfile& column, int64_t fallback) {
  return column.max.is_null() ? fallback : column.max.AsInt();
}
double MinDoubleOr(const ColumnProfile& column, double fallback) {
  return column.min.is_null() ? fallback : column.min.AsDouble();
}
double MaxDoubleOr(const ColumnProfile& column, double fallback) {
  return column.max.is_null() ? fallback : column.max.AsDouble();
}

// Builds a weighted dictionary from sampled values.
pdgf::Dictionary BuildSampleDictionary(
    const std::vector<std::string>& samples) {
  std::map<std::string, uint64_t> counts;
  for (const std::string& sample : samples) {
    ++counts[sample];
  }
  pdgf::Dictionary dictionary;
  for (const auto& [value, count] : counts) {
    dictionary.Add(value, static_cast<double>(count));
  }
  dictionary.Finalize();
  return dictionary;
}

// Builds a HistogramGenerator from an extracted profile, or null when no
// usable histogram is available.
GeneratorPtr HistogramGeneratorFor(const ColumnProfile& profile,
                                   pdgf::HistogramGenerator::Output output,
                                   int places) {
  if (!profile.has_histogram || profile.histogram.total == 0 ||
      profile.histogram.buckets.size() < 2) {
    return nullptr;
  }
  std::vector<double> weights;
  weights.reserve(profile.histogram.buckets.size());
  for (uint64_t count : profile.histogram.buckets) {
    weights.push_back(static_cast<double>(count));
  }
  return GeneratorPtr(new pdgf::HistogramGenerator(
      profile.histogram.min, profile.histogram.max, std::move(weights),
      output, places));
}

// The builtin-dictionary generator for a name category, or null.
GeneratorPtr BuiltinCategoryGenerator(NameCategory category) {
  switch (category) {
    case NameCategory::kName:
      return GeneratorPtr(new pdgf::NameGenerator());
    case NameCategory::kAddress:
      return GeneratorPtr(new pdgf::AddressGenerator());
    case NameCategory::kEmail:
      return GeneratorPtr(new pdgf::EmailGenerator());
    case NameCategory::kUrl:
      return GeneratorPtr(new pdgf::UrlGenerator());
    case NameCategory::kPhone:
      return GeneratorPtr(new pdgf::PatternStringGenerator("##-###-###-####"));
    case NameCategory::kZip:
      return GeneratorPtr(new pdgf::PatternStringGenerator("#####"));
    case NameCategory::kCity: {
      const pdgf::Dictionary* cities =
          pdgf::FindBuiltinDictionary("cities");
      return GeneratorPtr(new pdgf::DictListGenerator(cities, "cities"));
    }
    case NameCategory::kState: {
      const pdgf::Dictionary* states =
          pdgf::FindBuiltinDictionary("states");
      return GeneratorPtr(new pdgf::DictListGenerator(states, "states"));
    }
    case NameCategory::kCountry: {
      const pdgf::Dictionary* nations =
          pdgf::FindBuiltinDictionary("nations");
      return GeneratorPtr(new pdgf::DictListGenerator(nations, "nations"));
    }
    default:
      return nullptr;
  }
}

// Context shared by the per-column generator choice.
struct BuildContext {
  const ModelBuildOptions* options;
  std::vector<ModelDecision>* decisions;

  void Explain(const std::string& table, const std::string& column,
               const std::string& generator, const std::string& reason) {
    decisions->push_back(ModelDecision{table, column, generator, reason});
  }
};

StatusOr<GeneratorPtr> ChooseTextGenerator(BuildContext* context,
                                           const TableProfile& table,
                                           const minidb::ColumnDef& column,
                                           const ColumnProfile& profile) {
  const ModelBuildOptions& options = *context->options;
  // Sampled data beats heuristics (paper §3: dictionaries and Markov
  // chains are built "if sampling the database is permissible").
  if (!profile.samples.empty()) {
    bool multi_word = profile.avg_word_count >= options.markov_min_avg_words;
    if (multi_word) {
      auto model = std::make_shared<pdgf::MarkovModel>();
      for (const std::string& sample : profile.samples) {
        model->AddSample(sample);
      }
      model->Finalize();
      int max_words = profile.max_word_count > 0
                          ? static_cast<int>(profile.max_word_count)
                          : options.markov_fallback_max_words;
      std::string model_file;
      if (!options.artifact_dir.empty()) {
        std::string file_name =
            table.schema.name + "_" + column.name + "_markovSamples.bin";
        std::string path =
            pdgf::JoinPath(options.artifact_dir, file_name);
        PDGF_RETURN_IF_ERROR(model->Save(path));
        model_file = file_name;
      }
      context->Explain(
          table.schema.name, column.name, "gen_MarkovChainGenerator",
          pdgf::StrPrintf(
              "multi-word text (avg %.1f words); Markov model with %zu "
              "words, %zu start states",
              profile.avg_word_count, model->word_count(),
              model->start_state_count()));
      return GeneratorPtr(new pdgf::MarkovChainGenerator(
          std::move(model), 1, max_words, std::move(model_file)));
    }
    double distinct_ratio =
        profile.samples.empty()
            ? 1.0
            : static_cast<double>(profile.sample_distinct) /
                  static_cast<double>(profile.samples.size());
    if (profile.sample_distinct <= options.dictionary_max_entries &&
        distinct_ratio <= options.dictionary_distinct_ratio) {
      pdgf::Dictionary dictionary = BuildSampleDictionary(profile.samples);
      context->Explain(
          table.schema.name, column.name, "gen_DictListGenerator",
          pdgf::StrPrintf(
              "categorical text: %zu distinct values in %zu samples "
              "(ratio %.2f)",
              static_cast<size_t>(profile.sample_distinct),
              profile.samples.size(), distinct_ratio));
      if (!options.artifact_dir.empty()) {
        std::string file_name =
            table.schema.name + "_" + column.name + ".dict";
        std::string path = pdgf::JoinPath(options.artifact_dir, file_name);
        PDGF_RETURN_IF_ERROR(dictionary.SaveToFile(path));
        return GeneratorPtr(new pdgf::DictListGenerator(
            std::make_shared<pdgf::Dictionary>(std::move(dictionary)),
            file_name, pdgf::DictListGenerator::Method::kCumulative, 0));
      }
      return GeneratorPtr(new pdgf::DictListGenerator(
          std::make_shared<pdgf::Dictionary>(std::move(dictionary)),
          std::string(), pdgf::DictListGenerator::Method::kCumulative, 0));
    }
    // High-cardinality single-word text: random strings sized like the
    // samples.
    int min_length = 1;
    int max_length = std::max(
        1, static_cast<int>(profile.avg_length * 2 + 1));
    if (column.size > 0) max_length = std::min(max_length, column.size);
    context->Explain(table.schema.name, column.name,
                     "gen_RandomStringGenerator",
                     pdgf::StrPrintf(
                         "high-cardinality text (%zu distinct); random "
                         "strings of %d..%d chars",
                         static_cast<size_t>(profile.sample_distinct),
                         min_length, max_length));
    return GeneratorPtr(
        new pdgf::RandomStringGenerator(min_length, max_length));
  }

  // No samples: keyword-based high-level generators (paper §3: "the
  // column name is parsed to determine whether a matching high level
  // generator construct exists, e.g., names, addresses, comment").
  NameCategory category = ClassifyColumnName(column.name);
  if (category == NameCategory::kComment) {
    StatusOr<GeneratorPtr> markov = pdgf::MarkovChainGenerator::FromCorpus(
        pdgf::BuiltinCommentCorpus(), 1,
        context->options->markov_fallback_max_words);
    if (markov.ok()) {
      context->Explain(table.schema.name, column.name,
                       "gen_MarkovChainGenerator",
                       "name matches 'comment'; builtin corpus");
      return std::move(*markov);
    }
  }
  GeneratorPtr builtin = BuiltinCategoryGenerator(category);
  if (builtin != nullptr) {
    context->Explain(table.schema.name, column.name, builtin->ConfigName(),
                     std::string("name matches '") +
                         NameCategoryLabel(category) + "'");
    return builtin;
  }
  int max_length = column.size > 0 ? column.size : 20;
  context->Explain(table.schema.name, column.name,
                   "gen_RandomStringGenerator",
                   "no rule matched; random string fallback");
  return GeneratorPtr(new pdgf::RandomStringGenerator(1, max_length));
}

StatusOr<GeneratorPtr> ChooseGenerator(BuildContext* context,
                                       const TableProfile& table,
                                       size_t column_index) {
  const minidb::ColumnDef& column = table.schema.columns[column_index];
  const ColumnProfile& profile = table.columns[column_index];

  // Rule 1: referential integrity wins over everything — "a reference
  // will always be generated by a reference generator independent of its
  // type" (paper §3).
  if (column.is_foreign_key()) {
    context->Explain(table.schema.name, column.name,
                     "gen_DefaultReferenceGenerator",
                     "foreign key to " + column.ref_table + "." +
                         column.ref_column);
    return GeneratorPtr(new pdgf::DefaultReferenceGenerator(
        column.ref_table, column.ref_column));
  }

  NameCategory category = ClassifyColumnName(column.name);

  // Rule 2: numeric key/id columns get an ID generator.
  if (pdgf::IsIntegerType(column.type) &&
      (category == NameCategory::kKey || column.primary_key)) {
    context->Explain(table.schema.name, column.name, "gen_IdGenerator",
                     column.primary_key ? "primary key column"
                                        : "column name matches key/id");
    return GeneratorPtr(new pdgf::IdGenerator(1, 1));
  }

  // Rule 3: data-type driven generators, parameterized by extracted
  // statistics.
  switch (column.type) {
    case DataType::kBoolean:
      context->Explain(table.schema.name, column.name,
                       "gen_BooleanGenerator", "boolean column");
      return GeneratorPtr(new pdgf::BooleanGenerator(0.5));
    case DataType::kSmallInt:
    case DataType::kInteger:
    case DataType::kBigInt: {
      if (GeneratorPtr histogram = HistogramGeneratorFor(
              profile, pdgf::HistogramGenerator::Output::kLong, 0)) {
        context->Explain(table.schema.name, column.name,
                         "gen_HistogramGenerator",
                         pdgf::StrPrintf(
                             "integer with %zu-bucket extracted histogram",
                             profile.histogram.buckets.size()));
        return histogram;
      }
      int64_t min = MinIntOr(profile, 0);
      int64_t max = MaxIntOr(profile, 1000000);
      context->Explain(table.schema.name, column.name, "gen_LongGenerator",
                       pdgf::StrPrintf("integer in [%lld, %lld]",
                                       static_cast<long long>(min),
                                       static_cast<long long>(max)));
      return GeneratorPtr(new pdgf::LongGenerator(min, max));
    }
    case DataType::kFloat:
    case DataType::kDouble: {
      if (GeneratorPtr histogram = HistogramGeneratorFor(
              profile, pdgf::HistogramGenerator::Output::kDouble, 0)) {
        context->Explain(table.schema.name, column.name,
                         "gen_HistogramGenerator",
                         pdgf::StrPrintf(
                             "double with %zu-bucket extracted histogram",
                             profile.histogram.buckets.size()));
        return histogram;
      }
      double min = MinDoubleOr(profile, 0);
      double max = MaxDoubleOr(profile, 1);
      context->Explain(table.schema.name, column.name,
                       "gen_DoubleGenerator",
                       pdgf::StrPrintf("double in [%g, %g]", min, max));
      return GeneratorPtr(new pdgf::DoubleGenerator(min, max));
    }
    case DataType::kDecimal: {
      if (GeneratorPtr histogram = HistogramGeneratorFor(
              profile, pdgf::HistogramGenerator::Output::kDecimal,
              column.scale)) {
        context->Explain(table.schema.name, column.name,
                         "gen_HistogramGenerator",
                         pdgf::StrPrintf(
                             "decimal with %zu-bucket extracted histogram",
                             profile.histogram.buckets.size()));
        return histogram;
      }
      double min = MinDoubleOr(profile, 0);
      double max = MaxDoubleOr(profile, 10000);
      context->Explain(
          table.schema.name, column.name, "gen_DoubleGenerator",
          pdgf::StrPrintf("decimal(%d) in [%g, %g]", column.scale, min, max));
      return GeneratorPtr(
          new pdgf::DoubleGenerator(min, max, column.scale));
    }
    case DataType::kDate: {
      if (GeneratorPtr histogram = HistogramGeneratorFor(
              profile, pdgf::HistogramGenerator::Output::kDate, 0)) {
        context->Explain(table.schema.name, column.name,
                         "gen_HistogramGenerator",
                         pdgf::StrPrintf(
                             "date with %zu-bucket extracted histogram",
                             profile.histogram.buckets.size()));
        return histogram;
      }
      pdgf::Date min = profile.min.kind() == Value::Kind::kDate
                           ? profile.min.date_value()
                           : pdgf::Date::FromCivil(1992, 1, 1);
      pdgf::Date max = profile.max.kind() == Value::Kind::kDate
                           ? profile.max.date_value()
                           : pdgf::Date::FromCivil(1998, 12, 31);
      context->Explain(table.schema.name, column.name, "gen_DateGenerator",
                       "date in [" + min.ToString() + ", " + max.ToString() +
                           "]");
      return GeneratorPtr(new pdgf::DateGenerator(min, max));
    }
    case DataType::kChar:
    case DataType::kVarchar:
      return ChooseTextGenerator(context, table, column, profile);
  }
  return pdgf::InternalError("unhandled column type");
}

}  // namespace

StatusOr<ModelBuildResult> BuildModel(const DatabaseProfile& profile,
                                      const ModelBuildOptions& options) {
  ModelBuildResult result;
  pdgf::SchemaDef& schema = result.schema;
  schema.name = "dbsynth_model";
  schema.seed = options.seed;

  if (!options.artifact_dir.empty()) {
    PDGF_RETURN_IF_ERROR(pdgf::MakeDirectories(options.artifact_dir));
  }

  // The scale factor property, then one size property per table — the
  // "centralized point in the model" for scaling (paper §3).
  pdgf::PropertyDef scale;
  scale.name = options.scale_property;
  scale.type = "double";
  scale.expression = "1";
  schema.properties.push_back(std::move(scale));

  BuildContext context{&options, &result.decisions};

  for (const TableProfile& table : profile.tables) {
    pdgf::PropertyDef size_property;
    size_property.name = table.schema.name + "_size";
    size_property.type = "double";
    size_property.expression =
        pdgf::StrPrintf("%llu * ${%s}",
                        static_cast<unsigned long long>(table.row_count),
                        options.scale_property.c_str());
    schema.properties.push_back(std::move(size_property));

    pdgf::TableDef table_def;
    table_def.name = table.schema.name;
    table_def.size_expression = "${" + table.schema.name + "_size}";
    for (size_t c = 0; c < table.schema.columns.size(); ++c) {
      const minidb::ColumnDef& column = table.schema.columns[c];
      const ColumnProfile& column_profile = table.columns[c];
      pdgf::FieldDef field;
      field.name = column.name;
      field.type = column.type;
      field.size = column.size;
      field.scale = column.scale;
      field.primary = column.primary_key;
      field.nullable = column.nullable;
      PDGF_ASSIGN_OR_RETURN(field.generator,
                            ChooseGenerator(&context, table, c));
      // Rule 4: observed NULLs wrap the generator in a NullGenerator with
      // the extracted probability (Listing 1's l_comment pattern).
      double null_probability = column_profile.null_probability();
      if (null_probability > 0) {
        field.generator = GeneratorPtr(new pdgf::NullGenerator(
            null_probability, std::move(field.generator)));
        context.Explain(table.schema.name, column.name, "gen_NullGenerator",
                        pdgf::StrPrintf("NULL probability %.4f",
                                        null_probability));
      }
      table_def.fields.push_back(std::move(field));
    }
    schema.tables.push_back(std::move(table_def));
  }
  return result;
}

}  // namespace dbsynth
