#include "dbsynth/connection.h"

#include "minidb/sql.h"
#include "util/rng.h"

namespace dbsynth {

using pdgf::Status;
using pdgf::StatusOr;
using pdgf::Value;

std::vector<std::string> MiniDbConnection::ListTables() {
  return database_->TableNames();
}

StatusOr<minidb::TableSchema> MiniDbConnection::GetTableSchema(
    const std::string& table) {
  const minidb::Table* t = database_->GetTable(table);
  if (t == nullptr) {
    return pdgf::NotFoundError("table '" + table + "' does not exist");
  }
  return t->schema();
}

StatusOr<uint64_t> MiniDbConnection::GetRowCount(const std::string& table) {
  PDGF_ASSIGN_OR_RETURN(
      minidb::ResultSet result,
      minidb::ExecuteSql(database_, "SELECT COUNT(*) FROM " + table));
  return static_cast<uint64_t>(result.At(0, "count").AsInt());
}

StatusOr<uint64_t> MiniDbConnection::GetNullCount(const std::string& table,
                                                  const std::string& column) {
  PDGF_ASSIGN_OR_RETURN(
      minidb::ResultSet result,
      minidb::ExecuteSql(database_, "SELECT COUNT(*) FROM " + table +
                                        " WHERE " + column + " IS NULL"));
  return static_cast<uint64_t>(result.At(0, "count").AsInt());
}

StatusOr<std::pair<Value, Value>> MiniDbConnection::GetMinMax(
    const std::string& table, const std::string& column) {
  PDGF_ASSIGN_OR_RETURN(
      minidb::ResultSet result,
      minidb::ExecuteSql(database_, "SELECT MIN(" + column + "), MAX(" +
                                        column + ") FROM " + table));
  return std::make_pair(result.At(0, "min_" + column),
                        result.At(0, "max_" + column));
}

StatusOr<minidb::Histogram> MiniDbConnection::GetHistogram(
    const std::string& table, const std::string& column,
    int bucket_count) {
  const minidb::Table* t = database_->GetTable(table);
  if (t == nullptr) {
    return pdgf::NotFoundError("table '" + table + "' does not exist");
  }
  int index = t->schema().FindColumn(column);
  if (index < 0) {
    return pdgf::NotFoundError("column '" + column + "' does not exist");
  }
  minidb::Histogram histogram;
  const minidb::ColumnDef& def =
      t->schema().columns[static_cast<size_t>(index)];
  if (bucket_count < 1 ||
      (!pdgf::IsNumericType(def.type) &&
       def.type != pdgf::DataType::kDate)) {
    return histogram;  // empty: not histogrammable
  }
  PDGF_ASSIGN_OR_RETURN(auto min_max, GetMinMax(table, column));
  if (min_max.first.is_null() ||
      min_max.second.AsDouble() <= min_max.first.AsDouble()) {
    return histogram;  // empty or degenerate range
  }
  histogram.min = min_max.first.AsDouble();
  histogram.max = min_max.second.AsDouble();
  histogram.buckets.assign(static_cast<size_t>(bucket_count), 0);
  t->Scan([&histogram, index](const minidb::Row& row) {
    const pdgf::Value& value = row[static_cast<size_t>(index)];
    if (value.is_null()) return true;
    double fraction = (value.AsDouble() - histogram.min) /
                      (histogram.max - histogram.min);
    size_t bucket = static_cast<size_t>(
        fraction * static_cast<double>(histogram.buckets.size()));
    if (bucket >= histogram.buckets.size()) {
      bucket = histogram.buckets.size() - 1;
    }
    ++histogram.buckets[bucket];
    ++histogram.total;
    return true;
  });
  return histogram;
}

Status MiniDbConnection::SampleRows(
    const std::string& table, const SamplingSpec& spec,
    const std::function<void(const minidb::Row&)>& visitor) {
  const minidb::Table* t = database_->GetTable(table);
  if (t == nullptr) {
    return pdgf::NotFoundError("table '" + table + "' does not exist");
  }
  switch (spec.strategy) {
    case SamplingSpec::Strategy::kFull:
      t->Scan([&](const minidb::Row& row) {
        visitor(row);
        return true;
      });
      return Status::Ok();
    case SamplingSpec::Strategy::kFirstN: {
      uint64_t remaining = spec.limit;
      t->Scan([&](const minidb::Row& row) {
        if (remaining == 0) return false;
        visitor(row);
        --remaining;
        return true;
      });
      return Status::Ok();
    }
    case SamplingSpec::Strategy::kFraction: {
      pdgf::Xorshift64 rng(spec.seed ^ pdgf::HashName(table));
      double fraction = spec.fraction;
      t->Scan([&](const minidb::Row& row) {
        if (rng.NextDouble() < fraction) visitor(row);
        return true;
      });
      return Status::Ok();
    }
    case SamplingSpec::Strategy::kReservoir: {
      // Vitter's algorithm R; visitor runs over the final reservoir.
      pdgf::Xorshift64 rng(spec.seed ^ pdgf::HashName(table));
      std::vector<minidb::Row> reservoir;
      reservoir.reserve(spec.limit);
      uint64_t seen = 0;
      t->Scan([&](const minidb::Row& row) {
        ++seen;
        if (reservoir.size() < spec.limit) {
          reservoir.push_back(row);
        } else {
          uint64_t j = rng.NextBounded(seen);
          if (j < spec.limit) reservoir[j] = row;
        }
        return true;
      });
      for (const minidb::Row& row : reservoir) {
        visitor(row);
      }
      return Status::Ok();
    }
  }
  return pdgf::InternalError("unhandled sampling strategy");
}

}  // namespace dbsynth
