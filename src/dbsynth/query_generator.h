#ifndef DBSYNTHPP_DBSYNTH_QUERY_GENERATOR_H_
#define DBSYNTHPP_DBSYNTH_QUERY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.h"

namespace dbsynth {

// Deterministic query-workload generation from a data model — the
// paper's future-work direction of automating the complete benchmarking
// process (§7: "we will generate the queries consistently using PDGF").
//
// Queries are pure functions of (model, seed, query index), exactly like
// data values: predicate constants are obtained by *running the model's
// own generators* at pseudo-random rows, so every constant is in-domain
// and the whole workload regenerates identically on any machine. SELECT
// shapes cover projections, conjunctive range/equality predicates,
// global aggregates, GROUP BY over categorical columns, ORDER BY and
// LIMIT — the subset MiniDB executes.
struct QueryWorkloadOptions {
  uint64_t seed = 424243;
  // Probability that a query aggregates instead of projecting rows.
  double aggregate_probability = 0.5;
  // Probability that an aggregate query groups by a categorical column.
  double group_by_probability = 0.4;
  // Predicates per query are uniform in [0, max_predicates].
  int max_predicates = 2;
  // Probability of ORDER BY (projection queries).
  double order_by_probability = 0.4;
  // LIMIT drawn from [1, limit_max] for projection queries.
  int limit_max = 100;
};

class QueryGenerator {
 public:
  // `session` must outlive the generator.
  QueryGenerator(const pdgf::GenerationSession* session,
                 QueryWorkloadOptions options = {});

  // The `index`-th query of the workload; deterministic per
  // (model seed, options.seed, index).
  std::string Query(uint64_t index) const;

  // Queries [0, count).
  std::vector<std::string> Workload(uint64_t count) const;

 private:
  const pdgf::GenerationSession* session_;
  QueryWorkloadOptions options_;
};

}  // namespace dbsynth

#endif  // DBSYNTHPP_DBSYNTH_QUERY_GENERATOR_H_
