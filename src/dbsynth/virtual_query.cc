#include "dbsynth/virtual_query.h"

#include "dbsynth/schema_translator.h"
#include "minidb/sql_parser.h"

namespace dbsynth {

GeneratedTableSource::GeneratedTableSource(
    const pdgf::GenerationSession* session, int table_index,
    uint64_t update)
    : session_(session),
      table_index_(table_index),
      update_(update),
      schema_(TranslateTable(
          session->schema(),
          session->schema().tables[static_cast<size_t>(table_index)])) {}

uint64_t GeneratedTableSource::row_count() const {
  return session_->TableRows(table_index_);
}

void GeneratedTableSource::Scan(
    const std::function<bool(const minidb::Row&)>& visitor) const {
  uint64_t rows = session_->TableRows(table_index_);
  std::vector<pdgf::Value> row;
  minidb::Row coerced(schema_.columns.size());
  for (uint64_t r = 0; r < rows; ++r) {
    if (update_ > 0 &&
        !session_->RowChangesInUpdate(table_index_, r, update_)) {
      continue;
    }
    session_->GenerateRow(table_index_, r, update_, &row);
    // Coerce to the column storage types so results are identical to
    // querying a database the generated data was loaded into.
    for (size_t c = 0; c < coerced.size() && c < row.size(); ++c) {
      auto value = minidb::CoerceValue(schema_.columns[c], row[c]);
      coerced[c] = value.ok() ? std::move(*value) : row[c];
    }
    if (!visitor(coerced)) return;
  }
}

pdgf::StatusOr<minidb::ResultSet> ExecuteQueryWithoutData(
    const pdgf::GenerationSession& session, std::string_view sql,
    uint64_t update) {
  PDGF_ASSIGN_OR_RETURN(minidb::Statement statement,
                        minidb::ParseSql(sql));
  const auto* select = std::get_if<minidb::SelectStatement>(&statement);
  if (select == nullptr) {
    return pdgf::InvalidArgumentError(
        "queries without data must be SELECT statements");
  }
  int table_index = session.schema().FindTableIndex(select->table);
  if (table_index < 0) {
    return pdgf::NotFoundError("model has no table '" + select->table +
                               "'");
  }
  GeneratedTableSource source(&session, table_index, update);
  return minidb::ExecuteSelectOnSource(source, *select);
}

}  // namespace dbsynth
